//! Sustained-write stress for the levelled `lsm[...]` tier: a writer floods
//! inserts (every batch spills runs and churns compaction levels) while
//! readers pin snapshots and hold them across the churn. Invariants:
//!
//! - a pinned snapshot re-scans byte-identically no matter how many levels
//!   compaction rewrote underneath it — vacated run extents must not be
//!   reused while any pinned generation can still read them;
//! - the retired set (including parked run extents) stays bounded during
//!   the flood and drains once pins are released;
//! - the flood never triggers a full re-render — absorbing is the point;
//! - on the durable variant, the tier survives checkpoint-under-churn and
//!   reopens byte-identically.

use rodentstore::{
    Condition, Database, DurabilityOptions, LayoutExpr, ReorgStrategy, ScanRequest, SyncPolicy,
    Value,
};
use rodentstore_algebra::{DataType, Field, Schema};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn events_schema() -> Schema {
    Schema::new(
        "Events",
        vec![
            Field::new("batch", DataType::Int),
            Field::new("k", DataType::Int),
            Field::new("payload", DataType::String),
        ],
    )
}

fn batch_rows(batch: i64, rows: usize) -> Vec<Vec<Value>> {
    (0..rows as i64)
        .map(|i| {
            vec![
                Value::Int(batch),
                Value::Int(batch * 1_000 + i),
                Value::Str(format!("b{batch}-r{i}")),
            ]
        })
        .collect()
}

fn batch_counts(rows: &[Vec<Value>]) -> BTreeMap<i64, usize> {
    let mut counts = BTreeMap::new();
    for row in rows {
        *counts.entry(row[0].as_i64().unwrap()).or_default() += 1;
    }
    counts
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rodentstore-lsm-stress-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn pinned_snapshots_survive_compaction_churn_and_retired_extents_drain() {
    const INITIAL: usize = 50;
    const BATCH: usize = 20;
    const BATCHES: i64 = 50;
    let db = Arc::new(Database::with_page_size(1024));
    // Cap 8 / fanout 2: every batch spills at least two runs and cascades,
    // so levels churn constantly under the readers.
    db.set_lsm_params(8, 2);
    db.create_table(events_schema()).unwrap();
    db.insert("Events", batch_rows(0, INITIAL)).unwrap();
    db.apply_layout(
        "Events",
        LayoutExpr::table("Events").lsm(["k"]),
        ReorgStrategy::Eager,
    )
    .unwrap();

    let committed = Arc::new(AtomicUsize::new(0));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let db = Arc::clone(&db);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                let mut pins = 0usize;
                while committed.load(Ordering::SeqCst) < BATCHES as usize || pins < 4 {
                    // Pin a snapshot and hold it across concurrent spills
                    // and compactions: every re-scan must be byte-identical.
                    let snap = db.snapshot("Events").unwrap();
                    let first = snap.scan(&ScanRequest::all()).unwrap();
                    for _ in 0..6 {
                        std::thread::yield_now();
                        assert_eq!(
                            snap.scan(&ScanRequest::all()).unwrap(),
                            first,
                            "pinned snapshot changed under compaction churn"
                        );
                    }
                    // Batch-prefix atomicity through the live read path,
                    // with and without key-range pushdown through the
                    // tier's run pruning.
                    let floor = committed.load(Ordering::SeqCst) as i64;
                    let rows = db.scan("Events", &ScanRequest::all()).unwrap();
                    let counts = batch_counts(&rows);
                    let max_batch = *counts.keys().max().unwrap();
                    assert_eq!(counts[&0], INITIAL, "initial load torn");
                    for b in 1..=max_batch {
                        assert_eq!(counts.get(&b), Some(&BATCH), "batch {b} torn");
                    }
                    assert!(max_batch >= floor, "missed committed batches");
                    if r == 0 && floor > 0 {
                        let probe = db
                            .scan(
                                "Events",
                                &ScanRequest::all().predicate(Condition::range(
                                    "k",
                                    (floor * 1_000) as f64,
                                    (floor * 1_000 + BATCH as i64 - 1) as f64,
                                )),
                            )
                            .unwrap();
                        assert_eq!(probe.len(), BATCH, "pruned probe tore batch {floor}");
                    }
                    pins += 1;
                }
                pins
            })
        })
        .collect();

    // The writer floods on the main thread and watches the retired set
    // (superseded states/renderings plus parked run extents) as it goes.
    let mut max_retired = 0usize;
    for b in 1..=BATCHES {
        db.insert("Events", batch_rows(b, BATCH)).unwrap();
        committed.store(b as usize, Ordering::SeqCst);
        max_retired = max_retired.max(db.retired_snapshots());
    }
    for reader in readers {
        assert!(reader.join().unwrap() >= 4);
    }

    // Bounded: deferral stays proportional to the writes raced — each batch
    // retires at most the superseded state, its rendering, and a few
    // compaction notes. Superlinear growth means tokens never drain.
    assert!(
        max_retired <= BATCHES as usize * 8 + 16,
        "retired set grew superlinearly: {max_retired} after {BATCHES} batches"
    );

    // Drained: with every pin released, a few more writes reap the backlog
    // down to what they themselves just retired.
    for b in 0..3 {
        db.insert("Events", batch_rows(900 + b, 1)).unwrap();
    }
    let after = db.retired_snapshots();
    assert!(
        after <= 8,
        "retired run extents must drain once pins are released; still {after}"
    );

    // Quiesced: totals add up, re-scans are byte-identical, and the whole
    // flood never re-rendered the base.
    let total = INITIAL + BATCHES as usize * BATCH + 3;
    let first = db.scan("Events", &ScanRequest::all()).unwrap();
    assert_eq!(first.len(), total);
    assert_eq!(db.scan("Events", &ScanRequest::all()).unwrap(), first);
    assert_eq!(db.layout_stats("Events").unwrap().full_renders, 1);
}

#[test]
fn checkpoint_under_churn_reclaims_extents_and_reopens_identically() {
    const BATCH: usize = 25;
    const BATCHES: i64 = 24;
    let dir = scratch_dir("churn");
    let expected = {
        let db = Arc::new(
            Database::create_with(
                &dir,
                DurabilityOptions {
                    page_size: 1024,
                    sync: SyncPolicy::GroupCommit(8),
                    ..DurabilityOptions::default()
                },
            )
            .unwrap(),
        );
        db.set_lsm_params(8, 2);
        db.create_table(events_schema()).unwrap();
        db.insert("Events", batch_rows(0, 40)).unwrap();
        db.apply_layout(
            "Events",
            LayoutExpr::table("Events").lsm(["k"]),
            ReorgStrategy::Eager,
        )
        .unwrap();

        let committed = Arc::new(AtomicUsize::new(0));
        let reader = {
            let db = Arc::clone(&db);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                while committed.load(Ordering::SeqCst) < BATCHES as usize {
                    let snap = db.snapshot("Events").unwrap();
                    let first = snap.scan(&ScanRequest::all()).unwrap();
                    std::thread::yield_now();
                    assert_eq!(
                        snap.scan(&ScanRequest::all()).unwrap(),
                        first,
                        "pinned snapshot changed under checkpoint churn"
                    );
                }
            })
        };
        for b in 1..=BATCHES {
            db.insert("Events", batch_rows(b, BATCH)).unwrap();
            committed.store(b as usize, Ordering::SeqCst);
            if b % 6 == 0 {
                db.checkpoint().unwrap();
            }
        }
        reader.join().unwrap();

        // Quiesce and checkpoint twice: the first parks and frees whatever
        // the drained tokens allow, the second reuses the freed tail — the
        // file must not keep growing with compaction garbage.
        let peak = db.pager().page_count();
        db.checkpoint().unwrap();
        db.checkpoint().unwrap();
        assert!(
            db.pager().page_count() <= peak,
            "checkpoint must never grow the file"
        );
        assert_eq!(db.layout_stats("Events").unwrap().full_renders, 1);
        db.scan("Events", &ScanRequest::all()).unwrap()
    };

    let db = Database::open(&dir).unwrap();
    assert_eq!(
        db.scan("Events", &ScanRequest::all()).unwrap(),
        expected,
        "reopened tier must scan byte-identically"
    );
    assert_eq!(db.layout_stats("Events").unwrap().full_renders, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
