//! Conservation and contract tests for the engine observability layer.
//!
//! The central property: the `scan.pages` / `scan.rows` counters the
//! registry accumulates are *the same numbers* the pager's `IoStats` and
//! the returned row sets report — whichever access path (canonical rows,
//! streaming layout scan, index probe, levelled-tier merge, pending-buffer
//! merge) served the query. And `explain` must predict with the cost
//! model's own `estimate_scan_pages` number, so its output is checkable
//! against both `scan_pages` and the post-hoc calibration metrics.

use proptest::prelude::*;
use rodentstore::{
    metric_names, AccessPath, AdaptivePolicy, Condition, Database, EventKind, ReorgStrategy,
    ScanRequest, Value,
};
use rodentstore_algebra::{DataType, Field, Schema};
use std::path::PathBuf;

fn points_schema() -> Schema {
    Schema::new(
        "Points",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
            Field::new("tag", DataType::Int),
        ],
    )
}

fn points(n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| {
            vec![
                Value::Float(i as f64),
                Value::Float((i * 7 % 100) as f64),
                Value::Int((i % 10) as i64),
            ]
        })
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rodentstore-observability-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Counter delta between two snapshots (absent counters read as 0).
fn delta(
    before: &rodentstore::MetricsSnapshot,
    after: &rodentstore::MetricsSnapshot,
    name: &str,
) -> u64 {
    after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0)
}

/// Every access path must report the same pages into `scan.pages` that the
/// pager's I/O accounting observed, and the same rows into `scan.rows`
/// that the caller received. Layouts *without* a declared index cover the
/// strict equality case (the calibration probe after the scan reads no
/// pages); the index layout is asserted separately below.
#[test]
fn scan_counters_conserve_io_across_access_paths() {
    let layouts: [Option<&str>; 4] = [
        None, // canonical rows
        Some("Points"),
        Some("vertical[x|y,tag](Points)"),
        Some("lsm[x](Points)"),
    ];
    for layout in layouts {
        let db = Database::in_memory();
        db.set_lsm_params(16, 2);
        db.create_table(points_schema()).unwrap();
        db.insert("Points", points(200)).unwrap();
        if let Some(expr) = layout {
            db.apply_layout_text("Points", expr).unwrap();
        }
        let requests = [
            ScanRequest::all(),
            ScanRequest::all().predicate(Condition::range("x", 20.0, 90.0)),
        ];
        for request in &requests {
            let before = db.metrics();
            let rows = db.scan("Points", request).unwrap();
            let after = db.metrics();
            assert_eq!(delta(&before, &after, "scan.count"), 1, "{layout:?}");
            assert_eq!(
                delta(&before, &after, "scan.rows"),
                rows.len() as u64,
                "scan.rows must equal the returned row count ({layout:?})"
            );
            assert_eq!(
                delta(&before, &after, "scan.pages"),
                delta(&before, &after, "io.pages_read"),
                "scan.pages must equal the pager's observed delta ({layout:?})"
            );
            let explain = db.explain("Points", request).unwrap();
            assert_eq!(
                explain.predicted_pages,
                db.scan_pages("Points", request).unwrap(),
                "explain must predict with the cost model's estimate ({layout:?})"
            );
        }
    }
}

/// Index layouts: the calibration probe after the scan reads index pages of
/// its own, so `scan.pages` is a lower bound on the raw pager delta — but
/// it must still be exactly the pages the *scan* read, which a second,
/// identical scan reproduces.
#[test]
fn index_probe_scans_attribute_only_their_own_pages() {
    let db = Database::in_memory();
    db.create_table(points_schema()).unwrap();
    db.insert("Points", points(400)).unwrap();
    db.apply_layout_text("Points", "index[x](Points)").unwrap();
    let request = ScanRequest::all().predicate(Condition::range("x", 50.0, 80.0));
    let explain = db.explain("Points", &request).unwrap();
    assert_eq!(explain.access_path, AccessPath::IndexProbe);
    let before = db.metrics();
    let rows = db.scan("Points", &request).unwrap();
    let mid = db.metrics();
    db.scan("Points", &request).unwrap();
    let after = db.metrics();
    assert!(!rows.is_empty());
    let first = delta(&before, &mid, "scan.pages");
    let second = delta(&mid, &after, "scan.pages");
    assert!(first > 0, "an index probe reads tree + heap pages");
    assert_eq!(first, second, "identical scans read identical pages");
    assert!(first <= delta(&before, &mid, "io.pages_read"));
    // Calibration folded one sample per scan, with the prediction matching
    // the estimate the explain reported.
    assert_eq!(delta(&before, &after, "scan.count"), 2);
    let metrics = db.metrics();
    assert_eq!(metrics.counter("calibration.Points.samples"), Some(2));
    assert!(metrics.counter("calibration.Points.predicted_pages").unwrap() > 0);
}

/// Per-operation attribution is *exact* under concurrency: scans run under a
/// thread-local `OpStatsScope`, so the `calibration.<table>.actual_pages`
/// total a table accumulates counts only the pages its own scans read, even
/// while neighbour threads hammer a different table on the same pager. A
/// global-counter diff around each scan would be polluted by the neighbours;
/// the scoped attribution must reproduce the solo per-scan page count to the
/// page, times the number of scans.
#[test]
fn calibration_attribution_is_exact_under_concurrent_neighbours() {
    let db = Database::in_memory();
    db.create_table(points_schema()).unwrap();
    db.insert("Points", points(400)).unwrap();
    db.apply_layout_text("Points", "vertical[x|y,tag](Points)")
        .unwrap();
    db.create_table(Schema::new(
        "Noise",
        vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
        ],
    ))
    .unwrap();
    db.insert(
        "Noise",
        (0..600i64)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64)])
            .collect(),
    )
    .unwrap();
    db.apply_layout_text("Noise", "Noise").unwrap();

    // Solo baseline: pages one projected scan of Points attributes to itself.
    let request = ScanRequest::all().fields(["x"]);
    let before = db.metrics();
    db.scan("Points", &request).unwrap();
    let after = db.metrics();
    let solo_pages = delta(&before, &after, "calibration.Points.actual_pages");
    assert!(solo_pages > 0, "the projected scan reads layout pages");

    // Each noise thread performs a fixed amount of work and is joined inside
    // the measurement window, so the window provably contains neighbour I/O.
    const SCANS: u64 = 16;
    let before = db.metrics();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(|| {
                    for _ in 0..24 {
                        let rows = db.scan("Noise", &ScanRequest::all()).unwrap();
                        assert_eq!(rows.len(), 600);
                    }
                })
            })
            .collect();
        for _ in 0..SCANS {
            let rows = db.scan("Points", &request).unwrap();
            assert_eq!(rows.len(), 400);
        }
        for handle in handles {
            handle.join().unwrap();
        }
    });
    let after = db.metrics();
    assert_eq!(
        delta(&before, &after, "calibration.Points.samples"),
        SCANS,
        "one calibration sample per scan of Points"
    );
    assert_eq!(
        delta(&before, &after, "calibration.Points.actual_pages"),
        SCANS * solo_pages,
        "scoped attribution must reproduce the solo page count exactly \
         despite concurrent Noise scans on the same pager"
    );
    // The neighbours really were running: the pager-wide delta over the
    // same window exceeds what Points alone accounts for.
    assert!(
        delta(&before, &after, "io.pages_read") > SCANS * solo_pages,
        "the noise threads must actually pollute the global counters"
    );
}

/// `explain` mirrors the dispatch the scan actually performs.
#[test]
fn explain_reports_the_dispatched_access_path() {
    let db = Database::in_memory();
    db.set_lsm_params(16, 2);
    db.create_table(points_schema()).unwrap();
    db.insert("Points", points(200)).unwrap();

    // No layout: canonical rows, zero predicted pages.
    let all = ScanRequest::all();
    let explain = db.explain("Points", &all).unwrap();
    assert_eq!(explain.access_path, AccessPath::Canonical);
    assert_eq!(explain.predicted_pages, 0);
    assert_eq!(explain.layout_expr, None);

    // Plain row layout streams.
    db.apply_layout_text("Points", "Points").unwrap();
    let explain = db.explain("Points", &all).unwrap();
    assert_eq!(explain.access_path, AccessPath::Streaming);
    assert!(explain.predicted_pages > 0);
    assert_eq!(explain.layout_expr.as_deref(), Some("Points"));

    // Vertical partitions materialize their stitched rows.
    db.apply_layout_text("Points", "vertical[x|y,tag](Points)")
        .unwrap();
    let explain = db.explain("Points", &all).unwrap();
    assert_eq!(explain.access_path, AccessPath::Materialized);

    // A request referencing a field the layout projected away falls back
    // to the canonical rows.
    db.apply_layout_text("Points", "project[x,y](Points)").unwrap();
    let tagged = ScanRequest::all().predicate(Condition::range("tag", 0.0, 5.0));
    let explain = db.explain("Points", &tagged).unwrap();
    assert_eq!(explain.access_path, AccessPath::Canonical);

    // The levelled tier: runs outside the predicate's key range are pruned.
    db.apply_layout_text("Points", "lsm[x](Points)").unwrap();
    db.insert("Points", points(200)).unwrap();
    let explain = db.explain("Points", &all).unwrap();
    assert!(explain.lsm_runs_total > 0, "small cap must have spilled");
    assert_eq!(explain.lsm_runs_pruned, 0, "full scans prune nothing");
    let far = ScanRequest::all().predicate(Condition::range("x", 10_000.0, 20_000.0));
    let explain = db.explain("Points", &far).unwrap();
    assert_eq!(
        explain.lsm_runs_pruned, explain.lsm_runs_total,
        "a range beyond every run's keys prunes them all"
    );

    // Pending rows under the new-data-only strategy are reported.
    let db = Database::in_memory();
    db.create_table(points_schema()).unwrap();
    db.insert("Points", points(50)).unwrap();
    db.apply_layout(
        "Points",
        rodentstore::parse("Points").unwrap(),
        ReorgStrategy::NewDataOnly,
    )
    .unwrap();
    db.insert("Points", points(7)).unwrap();
    let explain = db.explain("Points", &all).unwrap();
    assert_eq!(explain.pending_rows, 7);
    let json = explain.to_json();
    assert!(json.contains("\"access_path\":\"streaming\""));
    assert!(json.contains("\"pending_rows\":7"));
}

/// Spills, merges, and adaptation checks leave structured events behind.
#[test]
fn lsm_and_adaptation_events_are_traced() {
    let db = Database::in_memory();
    db.set_lsm_params(8, 2);
    db.create_table(points_schema()).unwrap();
    db.apply_layout_text("Points", "lsm[x](Points)").unwrap();
    db.insert("Points", points(128)).unwrap();
    let events = db.events();
    let spills = events
        .iter()
        .filter(|e| matches!(&e.kind, EventKind::LsmSpill { table, .. } if table == "Points"))
        .count();
    assert!(spills > 0, "inserts past the memtable cap must spill");
    assert!(
        events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::LsmMerge { .. })),
        "fanout 2 with 16 spills must compact"
    );
    let metrics = db.metrics();
    assert_eq!(metrics.counter("lsm.spills"), Some(spills as u64));
    assert!(metrics.histogram("lsm.absorb_micros").unwrap().count > 0);
    // The amortization invariant: no absorb ran more merges than spills.
    let absorbs = metrics.histogram("lsm.absorb.merges").unwrap();
    assert!(absorbs.max <= 16, "one merge per spill at most");

    // An explicit adaptation check with too little traffic still traces.
    db.set_adaptive_policy(AdaptivePolicy {
        min_queries: 4,
        ..AdaptivePolicy::default()
    });
    db.maybe_adapt("Points").unwrap();
    for _ in 0..8 {
        db.scan(
            "Points",
            &ScanRequest::all().predicate(Condition::range("x", 0.0, 10.0)),
        )
        .unwrap();
    }
    db.maybe_adapt("Points").unwrap();
    let events = db.events();
    let outcomes: Vec<&str> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::AdaptDecision { outcome, .. } => Some(outcome.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(outcomes.first(), Some(&"insufficient_data"));
    let last = events
        .iter()
        .rev()
        .find_map(|e| match &e.kind {
            EventKind::AdaptDecision {
                outcome,
                alternatives,
                current_expr,
                ..
            } => Some((outcome.clone(), alternatives.len(), current_expr.clone())),
            _ => None,
        })
        .expect("the completed check must trace");
    assert!(last.0 == "adapted" || last.0 == "kept_current");
    assert!(last.1 > 0, "a completed check lists costed alternatives");
    assert_eq!(last.2, "lsm[x](Points)");
    assert_eq!(db.metrics().counter("adapt.checks"), Some(2));
}

/// Durable databases: checkpoints report phase timings and the WAL
/// truncation they performed; commits and fsyncs feed the WAL histograms.
#[test]
fn checkpoint_and_wal_instrumentation() {
    let dir = scratch_dir("checkpoint");
    let db = Database::create(&dir).unwrap();
    db.create_table(points_schema()).unwrap();
    db.insert("Points", points(64)).unwrap();
    db.checkpoint().unwrap();
    let metrics = db.metrics();
    assert_eq!(metrics.counter("checkpoint.count"), Some(1));
    assert!(metrics.histogram("wal.commit_micros").unwrap().count > 0);
    assert!(metrics.histogram("checkpoint.micros").unwrap().count == 1);
    let events = db.events();
    let checkpoint = events
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::Checkpoint { phases, micros, .. } => Some((phases.clone(), *micros)),
            _ => None,
        })
        .expect("checkpoint event");
    let names: Vec<&str> = checkpoint.0.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        names,
        [
            "reap_retired",
            "flush_tails",
            "pager_sync",
            "write_manifest",
            "release_quarantine",
            "wal_truncate",
            "shrink_data_file"
        ]
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::WalTruncate { bytes_before, bytes_after }
                if bytes_after <= bytes_before)),
        "the checkpoint truncated the WAL"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Disabling recording freezes every counter but keeps queries (and
/// `explain`) fully functional; re-enabling resumes from the same values.
#[test]
fn disabling_metrics_freezes_counters() {
    let db = Database::in_memory();
    db.create_table(points_schema()).unwrap();
    db.insert("Points", points(50)).unwrap();
    db.scan("Points", &ScanRequest::all()).unwrap();
    let frozen = db.metrics();
    db.set_metrics_enabled(false);
    assert!(!db.metrics_enabled());
    db.insert("Points", points(10)).unwrap();
    let rows = db.scan("Points", &ScanRequest::all()).unwrap();
    assert_eq!(rows.len(), 60);
    db.explain("Points", &ScanRequest::all()).unwrap();
    let still = db.metrics();
    assert_eq!(frozen.counter("scan.count"), still.counter("scan.count"));
    assert_eq!(frozen.counter("insert.rows"), still.counter("insert.rows"));
    db.set_metrics_enabled(true);
    db.scan("Points", &ScanRequest::all()).unwrap();
    assert_eq!(
        db.metrics().counter("scan.count"),
        frozen.counter("scan.count").map(|c| c + 1)
    );
}

/// The registered instrument set is exactly the documented catalog, and
/// the JSON dump carries the reserved injected prefixes.
#[test]
fn metric_catalog_is_stable_and_json_complete() {
    let db = Database::in_memory();
    db.create_table(points_schema()).unwrap();
    db.insert("Points", points(10)).unwrap();
    db.scan("Points", &ScanRequest::all()).unwrap();
    let metrics = db.metrics();
    for name in metric_names() {
        assert!(
            metrics.counter(name).is_some() || metrics.histogram(name).is_some(),
            "catalog name {name} missing from the snapshot"
        );
    }
    let json = metrics.to_json();
    assert!(json.contains("\"io.pages_read\""));
    assert!(json.contains("\"scan.count\":1"));
    assert!(json.contains("\"insert.rows\":10"));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Property form of the conservation law over random data, layouts,
    /// and predicates: `scan.rows` equals the returned rows, `scan.pages`
    /// equals the pager delta (non-index layouts), and `explain` predicts
    /// exactly `scan_pages`.
    #[test]
    fn conservation_holds_for_random_requests(
        rows in proptest::collection::vec((0.0f64..500.0, 0.0f64..100.0, 0i64..8), 1..150),
        layout_pick in 0usize..4,
        lo in 0.0f64..400.0,
        width in 1.0f64..200.0,
    ) {
        let db = Database::in_memory();
        db.set_lsm_params(16, 2);
        db.create_table(points_schema()).unwrap();
        let records: Vec<Vec<Value>> = rows
            .iter()
            .map(|(x, y, t)| vec![Value::Float(*x), Value::Float(*y), Value::Int(*t)])
            .collect();
        db.insert("Points", records).unwrap();
        let layout = ["Points", "vertical[x|y,tag](Points)", "lsm[x](Points)", "orderby[x](Points)"][layout_pick];
        db.apply_layout_text("Points", layout).unwrap();
        let request = ScanRequest::all().predicate(Condition::range("x", lo, lo + width));
        let before = db.metrics();
        let returned = db.scan("Points", &request).unwrap();
        let after = db.metrics();
        prop_assert_eq!(delta(&before, &after, "scan.rows"), returned.len() as u64);
        prop_assert_eq!(
            delta(&before, &after, "scan.pages"),
            delta(&before, &after, "io.pages_read")
        );
        let explain = db.explain("Points", &request).unwrap();
        prop_assert_eq!(explain.predicted_pages, db.scan_pages("Points", &request).unwrap());
        let expected = rows.iter().filter(|(x, _, _)| (lo..=lo + width).contains(x)).count();
        prop_assert_eq!(returned.len(), expected);
    }
}
