//! Property-based integration tests: whatever layout the storage algebra
//! declares, the logical contents of the table must not change, and textual
//! expressions must round-trip through the parser.

use proptest::prelude::*;
use rodentstore::{Database, ScanRequest, Value};
use rodentstore_algebra::{parse, DataType, Field, LayoutExpr, Schema};

fn points_schema() -> Schema {
    Schema::new(
        "Points",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
            Field::new("tag", DataType::Int),
        ],
    )
}

fn record_strategy() -> impl Strategy<Value = Vec<Value>> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0i64..20,
    )
        .prop_map(|(x, y, tag)| vec![Value::Float(x), Value::Float(y), Value::Int(tag)])
}

fn layout_strategy() -> impl Strategy<Value = LayoutExpr> {
    prop_oneof![
        Just(LayoutExpr::table("Points")),
        Just(LayoutExpr::table("Points").columns(["x", "y", "tag"])),
        Just(LayoutExpr::table("Points").pax_with(64)),
        Just(LayoutExpr::table("Points").order_by(["tag"])),
        Just(LayoutExpr::table("Points").vertical([vec!["x", "y"], vec!["tag"]])),
        (0.5f64..50.0).prop_map(|stride| {
            LayoutExpr::table("Points")
                .project(["x", "y"])
                .grid([("x", stride), ("y", stride)])
                .zorder()
        }),
        Just(
            LayoutExpr::table("Points")
                .order_by(["tag"])
                .compress(["tag"], rodentstore_algebra::expr::CodecSpec::Rle)
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scanning through any generated layout returns exactly the logical
    /// tuples that were inserted (projected to the layout's fields), as a
    /// multiset.
    #[test]
    fn layouts_preserve_logical_contents(
        records in proptest::collection::vec(record_strategy(), 1..200),
        layout in layout_strategy(),
    ) {
        let mut db = Database::with_page_size(512);
        db.create_table(points_schema()).unwrap();
        db.insert("Points", records.clone()).unwrap();
        db.apply_layout("Points", layout.clone(), rodentstore::ReorgStrategy::Eager).unwrap();

        // Only compare the fields the layout exposes (a projection drops some).
        let derived = rodentstore_algebra::validate::check(&layout, &points_schema()).unwrap();
        let fields: Vec<String> = derived.fields().to_vec();
        let schema = points_schema();
        let mut expected: Vec<Vec<String>> = records
            .iter()
            .map(|r| {
                schema
                    .extract(r, &fields)
                    .unwrap()
                    .iter()
                    .map(|v| match v {
                        // Grid + delta layouts quantize floats; compare at 1e-5.
                        Value::Float(f) => format!("{:.5}", f),
                        other => other.to_string(),
                    })
                    .collect()
            })
            .collect();
        let mut actual: Vec<Vec<String>> = db
            .scan("Points", &ScanRequest::all().fields(fields.clone()))
            .unwrap()
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        Value::Float(f) => format!("{:.5}", f),
                        other => other.to_string(),
                    })
                    .collect()
            })
            .collect();
        expected.sort();
        actual.sort();
        prop_assert_eq!(actual, expected);
    }

    /// Predicate pushdown never changes results: filtering through the layout
    /// equals filtering the full scan in memory.
    #[test]
    fn predicate_scans_match_post_filtering(
        records in proptest::collection::vec(record_strategy(), 1..150),
        lo in -100.0f64..0.0,
        width in 1.0f64..80.0,
    ) {
        let mut db = Database::with_page_size(512);
        db.create_table(points_schema()).unwrap();
        db.insert("Points", records).unwrap();
        db.apply_layout_text(
            "Points",
            "zorder(grid[x,y;10,10](Points))",
        ).unwrap();

        let hi = lo + width;
        let pred = rodentstore::Condition::range("x", lo, hi);
        let filtered = db
            .scan("Points", &ScanRequest::all().predicate(pred))
            .unwrap();
        let all = db.scan("Points", &ScanRequest::all()).unwrap();
        let expected = all
            .iter()
            .filter(|r| {
                let x = r[0].as_f64().unwrap();
                x >= lo && x <= hi
            })
            .count();
        prop_assert_eq!(filtered.len(), expected);
    }

    /// Every generated layout expression round-trips through its textual form.
    #[test]
    fn textual_syntax_round_trips(layout in layout_strategy()) {
        let text = layout.to_string();
        let reparsed = parse(&text).unwrap();
        prop_assert_eq!(reparsed.to_string(), text);
    }
}
