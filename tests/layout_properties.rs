//! Property-based integration tests: whatever layout the storage algebra
//! declares, the logical contents of the table must not change, and textual
//! expressions must round-trip through the parser.

use proptest::prelude::*;
use rodentstore::{Database, ScanRequest, Value};
use rodentstore_algebra::comprehension::{CmpOp, Condition, ElemExpr};
use rodentstore_algebra::{parse, DataType, Field, LayoutExpr, Schema};
use rodentstore_layout::{render, MemTableProvider, RenderOptions};
use rodentstore_storage::pager::Pager;
use std::sync::Arc;

fn points_schema() -> Schema {
    Schema::new(
        "Points",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
            Field::new("tag", DataType::Int),
        ],
    )
}

fn record_strategy() -> impl Strategy<Value = Vec<Value>> {
    (
        -100.0f64..100.0,
        -100.0f64..100.0,
        0i64..20,
    )
        .prop_map(|(x, y, tag)| vec![Value::Float(x), Value::Float(y), Value::Int(tag)])
}

fn layout_strategy() -> impl Strategy<Value = LayoutExpr> {
    prop_oneof![
        Just(LayoutExpr::table("Points")),
        Just(LayoutExpr::table("Points").columns(["x", "y", "tag"])),
        Just(LayoutExpr::table("Points").pax_with(64)),
        Just(LayoutExpr::table("Points").order_by(["tag"])),
        Just(LayoutExpr::table("Points").vertical([vec!["x", "y"], vec!["tag"]])),
        (0.5f64..50.0).prop_map(|stride| {
            LayoutExpr::table("Points")
                .project(["x", "y"])
                .grid([("x", stride), ("y", stride)])
                .zorder()
        }),
        Just(
            LayoutExpr::table("Points")
                .order_by(["tag"])
                .compress(["tag"], rodentstore_algebra::expr::CodecSpec::Rle)
        ),
    ]
}

/// Layout shapes that retain every field of `Points`, as algebra text —
/// covering the plain heap, PAX, sort orders, column groups, compression,
/// the `index[...]` probe path, and the levelled `lsm[...]` tier.
fn full_field_layout_text() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("Points"),
        Just("pax[64](Points)"),
        Just("orderby[tag](Points)"),
        Just("vertical[x,y|tag](Points)"),
        Just("index[x](Points)"),
        Just("lsm[tag](Points)"),
        Just("lsm[tag](vertical[x|y,tag](Points))"),
        Just("rle[tag](orderby[tag](Points))"),
    ]
}

/// Predicates over the fields every generated layout retains (`x`, `y`).
fn predicate_strategy() -> impl Strategy<Value = Condition> {
    let range = |field: &'static str| {
        (-120.0f64..120.0, 0.0f64..100.0)
            .prop_map(move |(lo, w)| Condition::range(field, lo, lo + w))
    };
    prop_oneof![
        Just(Condition::True),
        range("x"),
        range("y"),
        (range("x"), range("y")).prop_map(|(a, b)| a.and(b)),
        (range("x"), range("x")).prop_map(|(a, b)| Condition::Or(vec![a, b])),
        range("y").prop_map(|c| Condition::Not(Box::new(c))),
        (-120.0f64..120.0).prop_map(|v| Condition::Cmp {
            left: ElemExpr::field("x"),
            op: CmpOp::Le,
            right: ElemExpr::lit(v),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Scanning through any generated layout returns exactly the logical
    /// tuples that were inserted (projected to the layout's fields), as a
    /// multiset.
    #[test]
    fn layouts_preserve_logical_contents(
        records in proptest::collection::vec(record_strategy(), 1..200),
        layout in layout_strategy(),
    ) {
        let db = Database::with_page_size(512);
        db.create_table(points_schema()).unwrap();
        db.insert("Points", records.clone()).unwrap();
        db.apply_layout("Points", layout.clone(), rodentstore::ReorgStrategy::Eager).unwrap();

        // Only compare the fields the layout exposes (a projection drops some).
        let derived = rodentstore_algebra::validate::check(&layout, &points_schema()).unwrap();
        let fields: Vec<String> = derived.fields().to_vec();
        let schema = points_schema();
        let mut expected: Vec<Vec<String>> = records
            .iter()
            .map(|r| {
                schema
                    .extract(r, &fields)
                    .unwrap()
                    .iter()
                    .map(|v| match v {
                        // Grid + delta layouts quantize floats; compare at 1e-5.
                        Value::Float(f) => format!("{:.5}", f),
                        other => other.to_string(),
                    })
                    .collect()
            })
            .collect();
        let mut actual: Vec<Vec<String>> = db
            .scan("Points", &ScanRequest::all().fields(fields.clone()))
            .unwrap()
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        Value::Float(f) => format!("{:.5}", f),
                        other => other.to_string(),
                    })
                    .collect()
            })
            .collect();
        expected.sort();
        actual.sort();
        prop_assert_eq!(actual, expected);
    }

    /// Predicate pushdown never changes results: filtering through the layout
    /// equals filtering the full scan in memory.
    #[test]
    fn predicate_scans_match_post_filtering(
        records in proptest::collection::vec(record_strategy(), 1..150),
        lo in -100.0f64..0.0,
        width in 1.0f64..80.0,
    ) {
        let db = Database::with_page_size(512);
        db.create_table(points_schema()).unwrap();
        db.insert("Points", records).unwrap();
        db.apply_layout_text(
            "Points",
            "zorder(grid[x,y;10,10](Points))",
        ).unwrap();

        let hi = lo + width;
        let pred = rodentstore::Condition::range("x", lo, hi);
        let filtered = db
            .scan("Points", &ScanRequest::all().predicate(pred))
            .unwrap();
        let all = db.scan("Points", &ScanRequest::all()).unwrap();
        let expected = all
            .iter()
            .filter(|r| {
                let x = r[0].as_f64().unwrap();
                x >= lo && x <= hi
            })
            .count();
        prop_assert_eq!(filtered.len(), expected);
    }

    /// The streaming read path is a drop-in for the eager one: for every
    /// generated layout and random projection/predicate, `ScanIter` yields
    /// exactly the rows — and the order — that decoding everything and
    /// filtering/projecting in memory produces, and `get_element(i)` equals
    /// `scan()[i]`.
    #[test]
    fn scan_iter_matches_eager_reference(
        records in proptest::collection::vec(record_strategy(), 1..150),
        layout in layout_strategy(),
        field_mask in 1u8..16,
        predicate in predicate_strategy(),
    ) {
        let provider = MemTableProvider::single(points_schema(), records);
        let pager = Arc::new(Pager::in_memory_with_page_size(512));
        let rendered = render(&layout, &provider, pager, RenderOptions::default()).unwrap();

        // Reference result: decode every field of every row, then filter with
        // the interpreted `Condition::eval` and project by schema position.
        let full = rendered.scan(None, None).unwrap();
        let schema = &rendered.schema;
        let mut fields: Vec<String> = schema
            .field_names()
            .into_iter()
            .enumerate()
            .filter(|(i, _)| field_mask & (1 << (i % 3)) != 0)
            .map(|(_, f)| f)
            .collect();
        if fields.is_empty() {
            fields = schema.field_names();
        }
        if field_mask & 8 != 0 {
            fields.reverse();
        }
        let indices = schema.indices_of(&fields).unwrap();
        let mut expected: Vec<Vec<Value>> = Vec::new();
        for row in &full {
            if predicate.eval(schema, row).unwrap() {
                expected.push(indices.iter().map(|&i| row[i].clone()).collect());
            }
        }

        // Streaming result, decoded on demand.
        let streamed: Vec<Vec<Value>> = rendered
            .scan_iter(Some(&fields), Some(&predicate))
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(&streamed, &expected, "layout {}", layout);

        // Positional access decodes only the containing row/block but must
        // agree with the full scan everywhere.
        let step = (full.len() / 7).max(1);
        for i in (0..full.len()).step_by(step) {
            prop_assert_eq!(&rendered.get_element(i, None).unwrap(), &full[i]);
            prop_assert_eq!(
                rendered.get_element(i, Some(&fields)).unwrap(),
                indices.iter().map(|&j| full[i][j].clone()).collect::<Vec<_>>()
            );
        }
        prop_assert!(rendered.get_element(full.len(), None).is_err());
    }

    /// The zero-copy read path is invisible to results: for every layout
    /// shape (including `index[...]` probes and the levelled `lsm[...]`
    /// tier), a projected + filtered scan and a windowed-aggregate pushdown
    /// on the borrowed-frame path return exactly what the forced-copy
    /// fallback returns, and both match an owned decode-everything reference
    /// computed from the full scan in memory.
    #[test]
    fn borrowed_frame_path_matches_forced_copy_reference(
        records in proptest::collection::vec(record_strategy(), 1..150),
        layout in full_field_layout_text(),
        predicate in predicate_strategy(),
        width in 1.0f64..8.0,
    ) {
        use rodentstore::{WindowAccumulator, WindowedAggregate};

        let db = Database::with_page_size(512);
        db.create_table(points_schema()).unwrap();
        db.insert("Points", records).unwrap();
        db.apply_layout_text("Points", layout).unwrap();

        // Owned decode-everything reference, read through the copy fallback.
        db.set_copy_reads(true);
        let full = db.scan("Points", &ScanRequest::all()).unwrap();
        let schema = points_schema();
        let spec = WindowedAggregate::new("tag", width, "x");
        let mut acc = WindowAccumulator::new(&spec);
        let mut expected: Vec<String> = Vec::new();
        for row in &full {
            if predicate.eval(&schema, row).unwrap() {
                expected.push(format!("{:?}", [&row[0], &row[2]]));
                acc.fold(row[2].as_f64().unwrap(), row[0].as_f64().unwrap());
            }
        }
        let reference_windows = acc.finish();
        let request = ScanRequest::all().fields(["x", "tag"]).predicate(predicate);
        let copied = db.scan("Points", &request).unwrap();
        let copied_windows = db.scan_aggregate("Points", &spec, Some(&request.predicate.clone().unwrap())).unwrap();

        // The borrowed-frame path must be byte-for-byte the same answer.
        db.set_copy_reads(false);
        let borrowed = db.scan("Points", &request).unwrap();
        let borrowed_windows = db.scan_aggregate("Points", &spec, Some(&request.predicate.clone().unwrap())).unwrap();
        prop_assert_eq!(&borrowed, &copied, "scan rows diverge on layout {}", layout);
        prop_assert_eq!(&borrowed_windows, &copied_windows, "aggregate diverges on layout {}", layout);

        // Both match the in-memory reference as a multiset (index probes may
        // emit rows in key order rather than heap order).
        let mut got: Vec<String> = borrowed.iter().map(|r| format!("{:?}", [&r[0], &r[1]])).collect();
        got.sort();
        expected.sort();
        prop_assert_eq!(got, expected, "layout {}", layout);
        // Float sums may differ in the last ulp when the access path folds in
        // a different row order than the reference; everything else is exact.
        prop_assert_eq!(borrowed_windows.len(), reference_windows.len(), "layout {}", layout);
        for (b, r) in borrowed_windows.iter().zip(&reference_windows) {
            prop_assert_eq!(b.bucket_start, r.bucket_start, "layout {}", layout);
            prop_assert_eq!(b.count, r.count, "layout {}", layout);
            prop_assert_eq!(b.min, r.min, "layout {}", layout);
            prop_assert_eq!(b.max, r.max, "layout {}", layout);
            prop_assert!(
                (b.sum - r.sum).abs() <= 1e-9 * b.sum.abs().max(1.0),
                "bucket sum diverges on layout {}: {} vs {}", layout, b.sum, r.sum
            );
        }
    }

    /// Every generated layout expression round-trips through its textual form.
    #[test]
    fn textual_syntax_round_trips(layout in layout_strategy()) {
        let text = layout.to_string();
        let reparsed = parse(&text).unwrap();
        prop_assert_eq!(reparsed.to_string(), text);
    }
}
