//! Property tests for the `lsm[...]` levelled write tier: whatever shape the
//! tier is in — memtable only, freshly spilled L0 runs, multi-level cascades
//! mid-compaction — a scan must return exactly what a *streaming reference*
//! returns, in rows AND order, under every reorganization strategy. A final
//! racing-appends test checks the same equivalence when writers and readers
//! overlap (order asserted via scan idempotence, contents as batch prefixes).
//!
//! The reference re-implements the tier's contract over plain `Vec`s — no
//! pager, no heaps, no forks — so any divergence points at the storage
//! machinery (row codec, sealed runs, page reattachment, snapshot
//! publication), not at the model.

use proptest::prelude::*;
use rodentstore::{Condition, Database, ReorgStrategy, ScanRequest, Value};
use rodentstore_algebra::{validate, DataType, Field, LayoutExpr, Record, Schema, SortKey};
use rodentstore_layout::pipeline::sort_records;

fn events_schema() -> Schema {
    Schema::new(
        "Events",
        vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Float),
            Field::new("tag", DataType::Int),
        ],
    )
}

/// The streaming reference: the tier's contract over plain vectors. Spill
/// and compaction thresholds mirror [`rodentstore_layout::lsm::LsmState`];
/// rows live in `Vec`s the whole time.
struct RefTier {
    schema: Schema,
    key: Vec<SortKey>,
    cap: usize,
    fanout: usize,
    memtable: Vec<Record>,
    /// `(level, seq, key-sorted rows)`, kept in scan order: deepest level
    /// first, then ascending sequence number.
    runs: Vec<(u32, u64, Vec<Record>)>,
    next_seq: u64,
}

impl RefTier {
    fn new(schema: Schema, key: &[&str], cap: usize, fanout: usize) -> RefTier {
        RefTier {
            schema,
            key: key.iter().map(|f| SortKey::asc(*f)).collect(),
            cap: cap.max(1),
            fanout: fanout.max(2),
            memtable: Vec::new(),
            runs: Vec::new(),
            next_seq: 0,
        }
    }

    /// Mirrors the ordered memtable: rows buffer in key order (stable
    /// within equal keys), a spill removes the first `cap` rows *in key
    /// order*, and each spill triggers at most one level merge.
    fn absorb(&mut self, rows: Vec<Record>) {
        self.memtable.extend(rows);
        while self.memtable.len() >= self.cap {
            let mut sorted = std::mem::take(&mut self.memtable);
            sort_records(&self.schema, &mut sorted, &self.key).unwrap();
            self.memtable = sorted.split_off(self.cap);
            self.seal(sorted, 0);
            self.compact_one();
        }
    }

    fn seal(&mut self, mut rows: Vec<Record>, level: u32) {
        sort_records(&self.schema, &mut rows, &self.key).unwrap();
        self.runs.push((level, self.next_seq, rows));
        self.next_seq += 1;
        self.runs
            .sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    }

    /// Merges the shallowest overflowing level once — no cascade, matching
    /// the amortized `compact_one` the write path runs per spill.
    fn compact_one(&mut self) {
        let mut counts = std::collections::HashMap::new();
        for (level, _, _) in &self.runs {
            *counts.entry(*level).or_insert(0usize) += 1;
        }
        let Some(&level) = counts
            .iter()
            .filter(|(_, &n)| n >= self.fanout)
            .map(|(l, _)| l)
            .min()
        else {
            return;
        };
        let mut merged: Vec<(u32, u64, Vec<Record>)> = Vec::new();
        let mut keep = Vec::new();
        for run in self.runs.drain(..) {
            if run.0 == level {
                merged.push(run);
            } else {
                keep.push(run);
            }
        }
        self.runs = keep;
        merged.sort_by_key(|r| r.1); // oldest first: stable merge
        let rows: Vec<Record> = merged.into_iter().flat_map(|r| r.2).collect();
        self.seal(rows, level + 1);
    }

    /// Scan order of the tier alone: runs deepest-first (oldest first within
    /// a level), each in key order, then the memtable in key order (stable
    /// within equal keys — the ordered memtable's iteration order).
    fn scan(&self) -> Vec<Record> {
        let mut out: Vec<Record> = self.runs.iter().flat_map(|r| r.2.clone()).collect();
        let mut mem = self.memtable.clone();
        sort_records(&self.schema, &mut mem, &self.key).unwrap();
        out.extend(mem);
        out
    }
}

/// Inner expressions whose tuple pipeline preserves per-batch row order, so
/// the full-scan order is exactly `base ++ tier` with no reordering to model.
fn inner_exprs() -> Vec<LayoutExpr> {
    vec![
        LayoutExpr::table("Events"),
        LayoutExpr::table("Events").project(["k", "v"]),
        LayoutExpr::table("Events").columns(["k", "v", "tag"]),
        LayoutExpr::table("Events").vertical([vec!["k", "v"], vec!["tag"]]),
        LayoutExpr::table("Events").pax_with(64),
    ]
}

fn project(rows: &[Record], fields: &[String]) -> Vec<Record> {
    let schema = events_schema();
    rows.iter()
        .map(|r| schema.extract(r, fields).unwrap())
        .collect()
}

/// Keep values exact (small ints, halves) so rows survive every codec
/// byte-for-byte and `assert_eq!` on `Value` is meaningful.
fn record_strategy() -> impl Strategy<Value = Record> {
    (0i64..12, -40i64..40, 0i64..5).prop_map(|(k, v, tag)| {
        vec![Value::Int(k), Value::Float(v as f64 / 2.0), Value::Int(tag)]
    })
}

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<Record>>> {
    proptest::collection::vec(
        proptest::collection::vec(record_strategy(), 1..12),
        1..8,
    )
}

/// Drives one database through the insert/scan protocol and checks every
/// scan against the reference. Returns nothing; panics on divergence.
fn check_protocol(
    strategy: ReorgStrategy,
    inner: &LayoutExpr,
    cap: usize,
    fanout: usize,
    initial: &[Record],
    batches: &[Vec<Record>],
) {
    let db = Database::with_page_size(1024);
    db.set_lsm_params(cap, fanout);
    db.create_table(events_schema()).unwrap();
    if !initial.is_empty() {
        db.insert("Events", initial.to_vec()).unwrap();
    }
    let expr = inner.clone().lsm(["k"]);
    let fields: Vec<String> = validate::check(&expr, &events_schema())
        .unwrap()
        .fields()
        .to_vec();
    db.apply_layout("Events", expr, strategy).unwrap();
    // First access renders the base for the non-eager strategies; from here
    // on the base is frozen at `initial` and every batch goes to the tier
    // (Eager, Lazy) or the pending buffer (NewDataOnly).
    let base = project(initial, &fields);
    assert_eq!(db.scan("Events", &ScanRequest::all()).unwrap(), base);

    let mut tier = RefTier::new(events_schema(), &["k"], cap, fanout);
    let mut pending: Vec<Record> = Vec::new();
    for batch in batches {
        db.insert("Events", batch.clone()).unwrap();
        match strategy {
            // Eager absorbs at insert; Lazy absorbs the accumulated pending
            // batch at the next access — which is this scan, so both see the
            // batch absorbed as one unit.
            ReorgStrategy::Eager | ReorgStrategy::Lazy => {
                tier.absorb(project(batch, &fields));
            }
            // New rows stay in the pending buffer, merged after the layout.
            ReorgStrategy::NewDataOnly => pending.extend(project(batch, &fields)),
        }
        let mut expected = base.clone();
        expected.extend(tier.scan());
        expected.extend(pending.iter().cloned());
        let got = db.scan("Events", &ScanRequest::all()).unwrap();
        assert_eq!(
            got, expected,
            "scan diverged from streaming reference \
             ({strategy:?}, cap {cap}, fanout {fanout}, inner {inner})"
        );

        // Key-range scans must be the same sequence filtered — run pruning
        // may skip extents but never rows, and never reorders survivors.
        let kpos = fields.iter().position(|f| f == "k").unwrap();
        for (lo, hi) in [(0.0, 5.0), (3.0, 3.0), (100.0, 200.0)] {
            let filtered: Vec<Record> = expected
                .iter()
                .filter(|r| {
                    let k = r[kpos].as_f64().unwrap();
                    k >= lo && k <= hi
                })
                .cloned()
                .collect();
            let got = db
                .scan(
                    "Events",
                    &ScanRequest::all().predicate(Condition::range("k", lo, hi)),
                )
                .unwrap();
            assert_eq!(got, filtered, "pruned range [{lo},{hi}] diverged ({strategy:?})");
        }
    }

    // Write-optimization invariant: the whole flood was absorbed without a
    // single re-render of the base.
    let stats = db.layout_stats("Events").unwrap();
    assert_eq!(stats.full_renders, 1, "lsm absorb must never rebuild ({strategy:?})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Scans over any memtable/L0/levels state equal the streaming reference
    /// in rows and order, for every reorganization strategy, including
    /// key-range scans through run pruning.
    #[test]
    fn lsm_scans_match_streaming_reference(
        initial in proptest::collection::vec(record_strategy(), 0..40),
        batches in batches_strategy(),
        cap in 1usize..6,
        fanout in 2usize..5,
        inner_idx in 0usize..5,
    ) {
        let inner = inner_exprs().swap_remove(inner_idx);
        for strategy in [
            ReorgStrategy::Eager,
            ReorgStrategy::Lazy,
            ReorgStrategy::NewDataOnly,
        ] {
            check_protocol(strategy, &inner, cap, fanout, &initial, &batches);
        }
    }
}

/// Deterministic multi-level shape: enough monotonic batches to cascade two
/// levels deep, asserting the exact run topology the reference predicts.
#[test]
fn cascaded_levels_match_reference_exactly() {
    let rows: Vec<Record> = (0..200)
        .map(|i| vec![Value::Int(i % 16), Value::Float(i as f64), Value::Int(0)])
        .collect();
    let batches: Vec<Vec<Record>> = rows.chunks(7).map(<[Record]>::to_vec).collect();
    check_protocol(
        ReorgStrategy::Eager,
        &LayoutExpr::table("Events"),
        3,
        2,
        &rows[..0],
        &batches,
    );
}

/// Racing appends: writers flood batches while readers scan. Under races the
/// exact interleaving is unknowable, so the invariants weaken to (a) every
/// scan observes an exact batch prefix — never a torn batch, (b) a quiesced
/// scan equals the reference as a multiset and re-scans are byte-identical,
/// (c) the flood still never triggered a rebuild.
#[test]
fn racing_appends_observe_batch_prefixes_and_never_rebuild() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    const BATCH: usize = 9;
    const BATCHES: i64 = 40;
    let db = Arc::new(Database::with_page_size(1024));
    db.set_lsm_params(8, 2);
    db.create_table(events_schema()).unwrap();
    let mk_batch = |b: i64| -> Vec<Record> {
        (0..BATCH as i64)
            .map(|i| vec![Value::Int(b), Value::Float(i as f64), Value::Int((b * 31 + i) % 7)])
            .collect()
    };
    db.insert("Events", mk_batch(0)).unwrap();
    db.apply_layout(
        "Events",
        LayoutExpr::table("Events").lsm(["k"]),
        ReorgStrategy::Eager,
    )
    .unwrap();

    let committed = Arc::new(AtomicUsize::new(0));
    let writer = {
        let db = Arc::clone(&db);
        let committed = Arc::clone(&committed);
        std::thread::spawn(move || {
            for b in 1..=BATCHES {
                db.insert("Events", mk_batch(b)).unwrap();
                committed.store(b as usize, Ordering::SeqCst);
                std::thread::yield_now();
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                let mut scans = 0usize;
                while committed.load(Ordering::SeqCst) < BATCHES as usize || scans < 5 {
                    let floor = committed.load(Ordering::SeqCst);
                    let rows = db.scan("Events", &ScanRequest::all()).unwrap();
                    let mut counts = std::collections::BTreeMap::new();
                    for row in &rows {
                        *counts.entry(row[0].as_i64().unwrap()).or_insert(0usize) += 1;
                    }
                    let max_batch = *counts.keys().max().unwrap();
                    for b in 0..=max_batch {
                        assert_eq!(
                            counts.get(&b),
                            Some(&BATCH),
                            "batch {b} torn (counts {counts:?})"
                        );
                    }
                    assert!(max_batch >= floor as i64, "missed committed batch");
                    scans += 1;
                }
                scans
            })
        })
        .collect();
    writer.join().unwrap();
    for reader in readers {
        assert!(reader.join().unwrap() >= 5);
    }

    // Quiesced: exact reference equivalence, and scans are deterministic.
    let mut tier = RefTier::new(events_schema(), &["k"], 8, 2);
    for b in 1..=BATCHES {
        tier.absorb(mk_batch(b));
    }
    let mut expected = mk_batch(0);
    expected.extend(tier.scan());
    let first = db.scan("Events", &ScanRequest::all()).unwrap();
    let mut got_sorted = first.clone();
    let mut want_sorted = expected.clone();
    got_sorted.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    want_sorted.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    assert_eq!(got_sorted, want_sorted, "quiesced contents diverge from reference");
    assert_eq!(
        db.scan("Events", &ScanRequest::all()).unwrap(),
        first,
        "re-scan must be byte-identical"
    );
    assert_eq!(
        db.layout_stats("Events").unwrap().full_renders,
        1,
        "the flood must never rebuild the base"
    );
}
