//! End-to-end integration test of the paper's case study through the public
//! `Database` API: the layouts N1–N4 all answer the same spatial queries with
//! the same results, while reading progressively fewer pages.

use rodentstore::{Database, ReorgStrategy, ScanRequest};
use rodentstore_algebra::LayoutExpr;
use rodentstore_workload::{figure2_queries, generate_traces, traces_schema, CartelConfig};

fn cartel() -> (CartelConfig, Vec<Vec<rodentstore::Value>>) {
    let config = CartelConfig {
        observations: 12_000,
        vehicles: 30,
        ..CartelConfig::default()
    };
    let records = generate_traces(&config);
    (config, records)
}

fn db_with_layout(records: &[Vec<rodentstore::Value>], layout: &str) -> Database {
    let db = Database::with_page_size(1024);
    db.create_table(traces_schema()).unwrap();
    db.insert("Traces", records.to_vec()).unwrap();
    db.apply_layout_text("Traces", layout).unwrap();
    db
}

#[test]
fn all_case_study_layouts_agree_and_grid_reads_fewer_pages() {
    let (config, records) = cartel();
    let queries: Vec<_> = figure2_queries(&config.bbox, 5).into_iter().take(5).collect();

    let layouts = [
        "rows(Traces)",
        "project[lat,lon](groupby[id](orderby[t](Traces)))",
        "grid[lat,lon;0.012,0.015](project[lat,lon](groupby[id](orderby[t](Traces))))",
        "delta[lat,lon](zorder(grid[lat,lon;0.012,0.015](project[lat,lon](groupby[id](orderby[t](Traces))))))",
    ];

    let mut total_pages = Vec::new();
    let mut match_counts: Vec<Vec<usize>> = Vec::new();
    for layout in layouts {
        let db = db_with_layout(&records, layout);
        let mut pages = 0u64;
        let mut counts = Vec::new();
        for q in &queries {
            let request = ScanRequest::all()
                .fields(["lat", "lon"])
                .predicate(q.to_condition());
            pages += db.scan_pages("Traces", &request).unwrap();
            counts.push(db.scan("Traces", &request).unwrap().len());
        }
        total_pages.push(pages);
        match_counts.push(counts);
    }

    // Every layout returns the same number of matching points per query.
    // (N4 quantizes coordinates to 1e-6 degrees, far below the query size, so
    // counts are identical.)
    for counts in &match_counts {
        assert_eq!(counts, &match_counts[0]);
    }
    // N1 (full rows, no pruning) reads the most; dropping columns helps;
    // gridding helps by a large factor; delta helps further or at least never
    // hurts.
    assert!(total_pages[0] > total_pages[1], "{total_pages:?}");
    assert!(total_pages[1] > total_pages[2] * 5, "{total_pages:?}");
    assert!(total_pages[3] <= total_pages[2], "{total_pages:?}");
}

#[test]
fn layout_changes_are_transparent_to_queries() {
    let (_, records) = cartel();
    let db = db_with_layout(&records, "rows(Traces)");
    let request = ScanRequest::all().fields(["id", "lat"]).order(["id"]);
    let before = db.scan("Traces", &request).unwrap();

    for layout in [
        "columns(Traces)",
        "pax[256](Traces)",
        "orderby[t](Traces)",
        "partition[id](Traces)",
    ] {
        db.apply_layout_text("Traces", layout).unwrap();
        let mut after = db.scan("Traces", &request).unwrap();
        let mut expected = before.clone();
        // Storage order may differ between layouts; compare as sorted sets.
        after.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        expected.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(after, expected, "layout {layout} changed query results");
    }
}

#[test]
fn lazy_and_new_data_only_strategies_work_through_the_api() {
    let (_, records) = cartel();
    let db = Database::with_page_size(1024);
    db.create_table(traces_schema()).unwrap();
    db.insert("Traces", records.clone()).unwrap();

    db.apply_layout(
        "Traces",
        LayoutExpr::table("Traces").project(["lat", "lon"]),
        ReorgStrategy::Lazy,
    )
    .unwrap();
    assert!(db.catalog().get("Traces").unwrap().access.is_none());
    assert_eq!(
        db.scan("Traces", &ScanRequest::all()).unwrap().len(),
        records.len()
    );

    db.apply_layout(
        "Traces",
        LayoutExpr::table("Traces").project(["lat", "lon"]),
        ReorgStrategy::NewDataOnly,
    )
    .unwrap();
    db.insert("Traces", records[..50].to_vec()).unwrap();
    assert_eq!(
        db.scan("Traces", &ScanRequest::all()).unwrap().len(),
        records.len() + 50
    );
}
