//! End-to-end durability and crash-recovery tests.
//!
//! The heart of this suite is an exhaustive crash-point sweep: a database
//! performs a checkpoint and then a run of committed transactions, and the
//! test simulates a kill at **every byte truncation point** of the WAL tail.
//! For each cut it reopens the database and asserts that the reopened scan
//! is exactly the canonical rows of the transactions whose commit record
//! fully survived the cut — committed transactions win, torn tails lose,
//! nothing in between.

use rodentstore::{
    AdaptOutcome, AdaptivePolicy, AdvisorOptions, CostParams, DataType, Database,
    DurabilityOptions, Field, LayoutExpr, ReorgStrategy, ScanRequest, Schema, SyncPolicy, Value,
};
use rodentstore_optimizer::CostModel;
use rodentstore_workload::{generate_traces, traces_schema, CartelConfig};
use std::path::{Path, PathBuf};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rodentstore-durability-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_db(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for file in ["data.rodent", "wal.rodent", "manifest.rodent"] {
        std::fs::copy(from.join(file), to.join(file)).unwrap();
    }
}

fn small_policy() -> AdaptivePolicy {
    AdaptivePolicy {
        auto: false,
        min_queries: 8,
        hysteresis: 0.1,
        advisor: AdvisorOptions {
            cost_model: CostModel {
                sample_size: 1_000,
                page_size: 1024,
                cost_params: CostParams {
                    seek_ms: 1.0,
                    transfer_mb_per_s: 2.0,
                },
            },
            anneal_iterations: 2,
            seed: 11,
        },
        ..AdaptivePolicy::default()
    }
}

#[test]
fn create_checkpoint_reopen_round_trips_rows_and_layout() {
    let dir = scratch_dir("roundtrip");
    let expected = {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::GroupCommit(8),
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 600,
                vehicles: 6,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.checkpoint().unwrap();
        db.scan("Traces", &ScanRequest::all()).unwrap()
    }; // drop = process exit; checkpointed state must be self-contained

    let db = Database::open(&dir).unwrap();
    assert!(db.is_durable());
    assert_eq!(db.row_count("Traces").unwrap(), 600);
    assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap(), expected);
    // The layout came back from the manifest, not from a re-render.
    let stats = db.layout_stats("Traces").unwrap();
    assert_eq!(stats.full_renders, 1, "open must not re-render");
    // The reopened database keeps working: insert absorbs incrementally.
    db.insert(
        "Traces",
        vec![vec![
            Value::Timestamp(99_999),
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Str("car-post-open".into()),
        ]],
    )
    .unwrap();
    assert_eq!(db.row_count("Traces").unwrap(), 601);
    let stats = db.layout_stats("Traces").unwrap();
    assert_eq!(stats.full_renders, 1);
    assert_eq!(stats.incremental_appends, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_replay_recovers_unchekpointed_mutations() {
    let dir = scratch_dir("replay");
    {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::EveryCommit,
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 200,
                vehicles: 4,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db.apply_layout_text("Traces", "project[t,lat](Traces)").unwrap();
        // No checkpoint: everything must come back from the log alone.
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.row_count("Traces").unwrap(), 200);
    let rows = db
        .scan("Traces", &ScanRequest::all().fields(["lat"]))
        .unwrap();
    assert_eq!(rows.len(), 200);
    assert_eq!(
        db.catalog().get("Traces").unwrap().layout_expr.as_ref().unwrap().to_string(),
        "project[t,lat](Traces)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash-point sweep. Every committed transaction records the WAL file
/// length right after its commit returned; a simulated kill at byte `cut`
/// must recover exactly the transactions whose recorded length is `<= cut`.
#[test]
fn kill_at_every_wal_byte_truncation_point_recovers_committed_prefix() {
    let dir = scratch_dir("crashpoints");
    let schema = rodentstore::Schema::new(
        "Ledger",
        vec![
            rodentstore::Field::new("id", rodentstore::DataType::Int),
            rodentstore::Field::new("amount", rodentstore::DataType::Float),
        ],
    );
    // Commit boundaries: (WAL file length after the commit, rows so far).
    let mut boundaries: Vec<(u64, usize)> = Vec::new();
    let base_rows = 40usize;
    {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::EveryCommit,
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        db.create_table(schema.clone()).unwrap();
        let base: Vec<Vec<Value>> = (0..base_rows as i64)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64 / 2.0)])
            .collect();
        db.insert("Ledger", base).unwrap();
        // A rendered layout, so replayed inserts exercise the append path.
        db.apply_layout("Ledger", LayoutExpr::table("Ledger"), ReorgStrategy::Eager)
            .unwrap();
        db.checkpoint().unwrap();
        let header = std::fs::metadata(dir.join("wal.rodent")).unwrap().len();
        boundaries.push((header, base_rows));
        for tx in 0..12i64 {
            let rows: Vec<Vec<Value>> = (0..3)
                .map(|j| {
                    vec![
                        Value::Int(1_000 + tx * 3 + j),
                        Value::Float((tx * 3 + j) as f64),
                    ]
                })
                .collect();
            db.insert("Ledger", rows).unwrap();
            let len = std::fs::metadata(dir.join("wal.rodent")).unwrap().len();
            boundaries.push((len, base_rows + ((tx as usize) + 1) * 3));
        }
    }
    let pristine_wal = std::fs::read(dir.join("wal.rodent")).unwrap();
    let checkpoint_len = boundaries[0].0;
    let crash = scratch_dir("crashpoints-cut");

    for cut in checkpoint_len..=pristine_wal.len() as u64 {
        copy_db(&dir, &crash);
        std::fs::write(crash.join("wal.rodent"), &pristine_wal[..cut as usize]).unwrap();
        let db = Database::open(&crash)
            .unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        let expected_rows = boundaries
            .iter()
            .filter(|(len, _)| *len <= cut)
            .map(|(_, rows)| *rows)
            .max()
            .expect("checkpoint boundary always qualifies");
        assert_eq!(
            db.row_count("Ledger").unwrap(),
            expected_rows,
            "wrong recovered row count at cut {cut}"
        );
        let rows = db.scan("Ledger", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), expected_rows, "scan mismatch at cut {cut}");
        // Scans must equal the canonical rows: ids are dense 0..base then
        // 1000+k in commit order, so the recovered prefix is exactly the
        // committed transactions.
        for (i, row) in rows.iter().enumerate() {
            let expected_id = if i < base_rows {
                i as i64
            } else {
                1_000 + (i - base_rows) as i64
            };
            assert_eq!(
                row[0],
                Value::Int(expected_id),
                "row {i} wrong at cut {cut}"
            );
        }
        // The recovered database accepts new writes.
        if cut == pristine_wal.len() as u64 || cut == checkpoint_len {
            db.insert(
                "Ledger",
                vec![vec![Value::Int(9_999_999), Value::Float(0.0)]],
            )
            .unwrap();
            assert_eq!(db.row_count("Ledger").unwrap(), expected_rows + 1);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash);
}

#[test]
fn adapted_layout_and_profile_survive_restart_without_rerender() {
    let dir = scratch_dir("adapted");
    let (expr_before, stats_before, observed_before, templates_before, rows_before) = {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::GroupCommit(16),
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        db.set_adaptive_policy(small_policy());
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 1_500,
                vehicles: 10,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        // A projection-heavy workload drives the advisor off the row layout.
        for _ in 0..12 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        let outcome = db.maybe_adapt("Traces").unwrap();
        assert!(
            matches!(outcome, AdaptOutcome::Adapted { .. }),
            "expected adaptation, got {outcome:?}"
        );
        db.checkpoint().unwrap();
        let expr = {
            let catalog = db.catalog();
            catalog.get("Traces").unwrap().layout_expr.clone().unwrap()
        };
        (
            expr,
            db.layout_stats("Traces").unwrap(),
            db.workload_profile("Traces").unwrap().queries_observed,
            db.workload_profile("Traces").unwrap().templates().len(),
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap(),
        )
    };
    assert!(stats_before.adaptations >= 1);

    let db = Database::open(&dir).unwrap();
    // Zero writes during open: the layout was reattached, not re-rendered.
    assert_eq!(db.io_snapshot().pages_written, 0, "open must not write pages");
    {
        let catalog = db.catalog();
        let entry = catalog.get("Traces").unwrap();
        assert_eq!(entry.layout_expr.as_ref().unwrap(), &expr_before);
        assert!(entry.access.is_some(), "rendered layout reattached from manifest");
    }
    assert_eq!(db.layout_stats("Traces").unwrap(), stats_before);

    // The workload profile resumed where it left off.
    let profile = db.workload_profile("Traces").unwrap();
    assert_eq!(profile.queries_observed, observed_before);
    assert_eq!(profile.templates().len(), templates_before);
    assert!(profile
        .templates()
        .iter()
        .any(|t| t.fingerprint.starts_with("lat|")));

    // Scans serve from the restored representation byte-for-byte...
    let rows = db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
    assert_eq!(rows, rows_before);
    // ...without a single full re-render.
    assert_eq!(
        db.layout_stats("Traces").unwrap().full_renders,
        stats_before.full_renders,
        "scanning after open must not re-render"
    );
    // Auto-adaptation resumes from the restored profile: the same workload
    // keeps the current (already adapted) design.
    db.set_adaptive_policy(small_policy());
    for _ in 0..4 {
        db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
    }
    assert!(matches!(
        db.maybe_adapt("Traces").unwrap(),
        AdaptOutcome::KeptCurrent { .. }
    ));
    assert_eq!(
        db.workload_profile("Traces").unwrap().queries_observed,
        observed_before + 5
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pending_buffer_and_strategy_survive_restart() {
    let dir = scratch_dir("pending");
    let expected = {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::EveryCommit,
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 300,
                vehicles: 4,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["t", "lat"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(-5),
                Value::Float(42.0),
                Value::Float(-71.0),
                Value::Str("car-early".into()),
            ]],
        )
        .unwrap();
        db.checkpoint().unwrap();
        db.scan("Traces", &ScanRequest::all().order(["t"])).unwrap()
    };
    let db = Database::open(&dir).unwrap();
    {
        let catalog = db.catalog();
        let entry = catalog.get("Traces").unwrap();
        assert_eq!(entry.strategy, ReorgStrategy::NewDataOnly);
        assert_eq!(entry.pending.len(), 1, "pending buffer restored");
    }
    let rows = db.scan("Traces", &ScanRequest::all().order(["t"])).unwrap();
    assert_eq!(rows, expected);
    assert_eq!(rows[0][0], Value::Timestamp(-5), "merge still order-aware");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drop_table_and_multiple_tables_replay_correctly() {
    let dir = scratch_dir("multi");
    {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::EveryCommit,
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        let mk = |name: &str| {
            rodentstore::Schema::new(
                name,
                vec![rodentstore::Field::new("x", rodentstore::DataType::Int)],
            )
        };
        db.create_table(mk("A")).unwrap();
        db.create_table(mk("B")).unwrap();
        db.insert("A", vec![vec![Value::Int(1)]]).unwrap();
        db.insert("B", vec![vec![Value::Int(2)]]).unwrap();
        db.checkpoint().unwrap();
        db.drop_table("A").unwrap();
        db.create_table(mk("C")).unwrap();
        db.insert("C", vec![vec![Value::Int(3)]]).unwrap();
        // crash without checkpoint
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.catalog().table_names(), vec!["B", "C"]);
    assert_eq!(db.scan("C", &ScanRequest::all()).unwrap(), vec![vec![Value::Int(3)]]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_mutations_do_not_poison_recovery() {
    // A mutation can fail *after* its op record hit the WAL (here: a record
    // too large for the page size fails during eager rendering, past schema
    // validation). The op must be recorded as aborted, not committed —
    // otherwise every future `open` would replay it, re-fail, and the
    // database would be unrecoverable forever.
    let dir = scratch_dir("poison");
    {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::EveryCommit,
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        db.create_table(Schema::new(
            "Notes",
            vec![
                Field::new("id", DataType::Int),
                Field::new("body", DataType::String),
            ],
        ))
        .unwrap();
        db.insert("Notes", vec![vec![Value::Int(1), Value::Str("ok".into())]])
            .unwrap();
        db.apply_layout("Notes", LayoutExpr::table("Notes"), ReorgStrategy::Eager)
            .unwrap();
        // 5000-byte string: passes schema validation, fails in the heap.
        let err = db.insert(
            "Notes",
            vec![vec![Value::Int(2), Value::Str("x".repeat(5_000))]],
        );
        assert!(err.is_err(), "oversized record must fail the insert");
        // The database keeps working in-process after the failure.
        db.insert("Notes", vec![vec![Value::Int(3), Value::Str("fine".into())]])
            .unwrap();
    }
    let db = Database::open(&dir).unwrap_or_else(|e| {
        panic!("a failed mutation must not make the database unopenable: {e}")
    });
    let rows = db.scan("Notes", &ScanRequest::all().fields(["id"])).unwrap();
    let ids: Vec<&Value> = rows.iter().map(|r| &r[0]).collect();
    assert_eq!(ids, vec![&Value::Int(1), &Value::Int(3)]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_apply_layout_keeps_the_previous_layout_live_and_recovered() {
    let dir = scratch_dir("badlayout");
    {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::EveryCommit,
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 400,
                vehicles: 2, // 200 rows/vehicle: folded groups exceed a page
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        // A fold whose groups cannot fit a 1 KiB page fails to render.
        let err = db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").fold(["id"], ["t", "lat", "lon"]),
            ReorgStrategy::Eager,
        );
        assert!(err.is_err(), "oversized fold groups must fail the render");
        // The previous layout stays live, not a half-applied broken one.
        let catalog = db.catalog();
        let entry = catalog.get("Traces").unwrap();
        assert_eq!(
            entry.layout_expr.as_ref().unwrap().to_string(),
            "project[lat,lon](Traces)"
        );
        assert!(entry.access.is_some(), "previous rendering still attached");
        drop(catalog);
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 400);
    }
    // Recovery agrees with what the caller observed: the failed op was
    // logged as aborted, so replay restores the working layout.
    let db = Database::open(&dir).unwrap();
    assert_eq!(
        db.catalog()
            .get("Traces")
            .unwrap()
            .layout_expr
            .as_ref()
            .unwrap()
            .to_string(),
        "project[lat,lon](Traces)"
    );
    assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 400);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recreating_over_an_existing_database_resets_it() {
    let dir = scratch_dir("recreate");
    {
        let db = Database::create(&dir).unwrap();
        db.create_table(Schema::new(
            "Old",
            vec![Field::new("x", DataType::Int)],
        ))
        .unwrap();
        db.insert("Old", vec![vec![Value::Int(1)]]).unwrap();
        db.checkpoint().unwrap();
    }
    {
        let db = Database::create(&dir).unwrap();
        assert!(db.catalog().table_names().is_empty(), "create resets the dir");
        db.create_table(Schema::new(
            "New",
            vec![Field::new("y", DataType::Int)],
        ))
        .unwrap();
        db.insert("New", vec![vec![Value::Int(2)]]).unwrap();
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.catalog().table_names(), vec!["New"]);
    assert_eq!(db.scan("New", &ScanRequest::all()).unwrap(), vec![vec![Value::Int(2)]]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash sweep for *indexed* tables. The checkpointed manifest carries
/// the B-tree's page extents, but post-checkpoint inserts mutate tree nodes
/// in place — so the persisted tree is trustworthy only at the checkpoint
/// boundary itself. At every byte truncation point of the WAL tail the
/// reopened database must either reattach the checkpointed index (no replay)
/// or rebuild it from the recovered heaps (any replay), and an index-assisted
/// scan must return exactly the canonical committed rows either way.
#[test]
fn kill_at_every_wal_byte_recovers_indexed_scans() {
    use rodentstore::Condition;
    let dir = scratch_dir("crashpoints-index");
    let schema = rodentstore::Schema::new(
        "Ledger",
        vec![
            rodentstore::Field::new("id", rodentstore::DataType::Int),
            rodentstore::Field::new("amount", rodentstore::DataType::Float),
        ],
    );
    let mut boundaries: Vec<(u64, usize)> = Vec::new();
    let base_rows = 40usize;
    let checkpoint_pages;
    {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::EveryCommit,
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        db.create_table(schema.clone()).unwrap();
        let base: Vec<Vec<Value>> = (0..base_rows as i64)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64 / 2.0)])
            .collect();
        db.insert("Ledger", base).unwrap();
        // Declare the index *before* the checkpoint so the manifest persists
        // its page extents, then keep inserting so replayed appends exercise
        // the post-crash rebuild path.
        db.apply_layout(
            "Ledger",
            LayoutExpr::table("Ledger").index(["id"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.checkpoint().unwrap();
        checkpoint_pages = db.pager().page_count();
        let header = std::fs::metadata(dir.join("wal.rodent")).unwrap().len();
        boundaries.push((header, base_rows));
        for tx in 0..10i64 {
            let rows: Vec<Vec<Value>> = (0..3)
                .map(|j| {
                    vec![
                        Value::Int(1_000 + tx * 3 + j),
                        Value::Float((tx * 3 + j) as f64),
                    ]
                })
                .collect();
            db.insert("Ledger", rows).unwrap();
            let len = std::fs::metadata(dir.join("wal.rodent")).unwrap().len();
            boundaries.push((len, base_rows + ((tx as usize) + 1) * 3));
        }
    }
    let pristine_wal = std::fs::read(dir.join("wal.rodent")).unwrap();
    let checkpoint_len = boundaries[0].0;
    let crash = scratch_dir("crashpoints-index-cut");

    for cut in checkpoint_len..=pristine_wal.len() as u64 {
        copy_db(&dir, &crash);
        std::fs::write(crash.join("wal.rodent"), &pristine_wal[..cut as usize]).unwrap();
        let db = Database::open(&crash)
            .unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        let expected_rows = boundaries
            .iter()
            .filter(|(len, _)| *len <= cut)
            .map(|(_, rows)| *rows)
            .max()
            .expect("checkpoint boundary always qualifies");

        // The recovered table carries a live index — reattached from the
        // manifest when no WAL ops replayed, rebuilt from the heaps
        // otherwise.
        db.ensure_rendered("Ledger").unwrap();
        let snapshot = db.snapshot("Ledger").unwrap();
        let layout = snapshot.layout().expect("declared layout must render");
        assert!(
            layout.index.is_some(),
            "no live index after recovery at cut {cut}"
        );
        if cut == checkpoint_len {
            // Clean boundary: the checkpointed tree is reattached verbatim,
            // never rebuilt into fresh pages.
            assert_eq!(
                db.pager().page_count(),
                checkpoint_pages,
                "attach-at-checkpoint must not allocate pages"
            );
        }
        drop(snapshot);

        // Index-assisted scans equal the canonical committed rows.
        let replayed = db
            .scan(
                "Ledger",
                &ScanRequest::all().predicate(Condition::range("id", 1_000.0, 1e12)),
            )
            .unwrap_or_else(|e| panic!("indexed scan failed at cut {cut}: {e}"));
        assert_eq!(replayed.len(), expected_rows - base_rows, "at cut {cut}");
        for (i, row) in replayed.iter().enumerate() {
            assert_eq!(row[0], Value::Int(1_000 + i as i64), "row {i} at cut {cut}");
        }
        let point = db
            .scan(
                "Ledger",
                &ScanRequest::all().predicate(Condition::range("id", 7.0, 7.0)),
            )
            .unwrap();
        assert_eq!(point, vec![vec![Value::Int(7), Value::Float(3.5)]]);
        assert_eq!(db.row_count("Ledger").unwrap(), expected_rows);

        // The recovered database keeps maintaining the index on new writes.
        if cut == checkpoint_len || cut == pristine_wal.len() as u64 {
            db.insert(
                "Ledger",
                vec![vec![Value::Int(5_000_000), Value::Float(0.5)]],
            )
            .unwrap();
            let probed = db
                .scan(
                    "Ledger",
                    &ScanRequest::all()
                        .predicate(Condition::range("id", 5_000_000.0, 5_000_000.0)),
                )
                .unwrap();
            assert_eq!(probed.len(), 1, "post-recovery append missing from index");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash);
}

#[test]
fn foreign_or_corrupt_files_are_typed_errors() {
    let dir = scratch_dir("foreign");
    {
        let db = Database::create(&dir).unwrap();
        db.create_table(rodentstore::Schema::new(
            "T",
            vec![rodentstore::Field::new("x", rodentstore::DataType::Int)],
        ))
        .unwrap();
        db.checkpoint().unwrap();
    }
    // A corrupted manifest byte is detected by the CRC.
    let manifest_path = dir.join("manifest.rodent");
    let pristine = std::fs::read(&manifest_path).unwrap();
    let mut corrupt = pristine.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x55;
    std::fs::write(&manifest_path, &corrupt).unwrap();
    assert!(Database::open(&dir).is_err(), "corrupt manifest must not open");
    std::fs::write(&manifest_path, &pristine).unwrap();
    // A data file that is not a RodentStore file is rejected by the
    // superblock check.
    std::fs::write(dir.join("data.rodent"), b"junk that is no page file").unwrap();
    assert!(Database::open(&dir).is_err(), "foreign data file must not open");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crash sweep for tables carrying a levelled `lsm[...]` tier. The
/// checkpointed manifest records every sealed run's page extent, sequence,
/// level, and key bounds plus the memtable rows — runs are immutable, so at
/// the checkpoint boundary the reopened database must reattach the whole
/// tier verbatim: zero page writes, zero page allocation, zero re-renders,
/// identical run topology. At every later byte truncation point, replayed
/// inserts re-absorb through the tier (spilling and compacting exactly as
/// the live path did — mid-spill and mid-compaction kills included) and the
/// scan must return the canonical committed rows in tier order.
#[test]
fn kill_at_every_wal_byte_recovers_lsm_tier() {
    let dir = scratch_dir("crashpoints-lsm");
    let schema = rodentstore::Schema::new(
        "Ledger",
        vec![
            rodentstore::Field::new("id", rodentstore::DataType::Int),
            rodentstore::Field::new("amount", rodentstore::DataType::Float),
        ],
    );
    let mut boundaries: Vec<(u64, Vec<i64>)> = Vec::new();
    let checkpoint_pages;
    let checkpoint_runs: Vec<(u32, u64, usize)>;
    let checkpoint_memtable;
    {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::EveryCommit,
                ..DurabilityOptions::default()
            },
        )
        .unwrap();
        // Tiny tier parameters so a handful of rows exercises multi-level
        // shapes: cap 4 spills every fourth row, fanout 2 cascades L0→L1→L2.
        db.set_lsm_params(4, 2);
        db.create_table(schema.clone()).unwrap();
        let base: Vec<Vec<Value>> = (0..40i64)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64 / 2.0)])
            .collect();
        db.insert("Ledger", base).unwrap();
        db.apply_layout(
            "Ledger",
            LayoutExpr::table("Ledger").lsm(["id"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        // Pre-checkpoint tier activity: 24 rows through cap 4 / fanout 2 is
        // six spills and three cascading compactions, so the manifest below
        // must describe a genuinely levelled tier, not just a memtable.
        for batch in 0..3i64 {
            let rows: Vec<Vec<Value>> = (0..8)
                .map(|j| {
                    let id = 100 + batch * 8 + j;
                    vec![Value::Int(id), Value::Float(id as f64)]
                })
                .collect();
            db.insert("Ledger", rows).unwrap();
        }
        db.checkpoint().unwrap();
        checkpoint_pages = db.pager().page_count();
        {
            let snapshot = db.snapshot("Ledger").unwrap();
            let lsm = snapshot.layout().unwrap().lsm.as_ref().unwrap();
            checkpoint_runs = lsm
                .runs
                .iter()
                .map(|r| (r.level, r.seq, r.row_count))
                .collect();
            checkpoint_memtable = lsm.memtable.len();
            assert!(
                lsm.runs.iter().any(|r| r.level >= 2),
                "precondition: the checkpointed tier must be multi-level, got {:?}",
                checkpoint_runs
            );
        }
        assert_eq!(db.layout_stats("Ledger").unwrap().full_renders, 1);
        let committed: Vec<i64> = (0..40).chain(100..124).collect();
        let header = std::fs::metadata(dir.join("wal.rodent")).unwrap().len();
        boundaries.push((header, committed.clone()));
        let mut ids = committed;
        for tx in 0..10i64 {
            let rows: Vec<Vec<Value>> = (0..3)
                .map(|j| {
                    let id = 1_000 + tx * 3 + j;
                    vec![Value::Int(id), Value::Float(id as f64)]
                })
                .collect();
            ids.extend((0..3).map(|j| 1_000 + tx * 3 + j));
            db.insert("Ledger", rows).unwrap();
            let len = std::fs::metadata(dir.join("wal.rodent")).unwrap().len();
            boundaries.push((len, ids.clone()));
        }
    }
    let pristine_wal = std::fs::read(dir.join("wal.rodent")).unwrap();
    let checkpoint_len = boundaries[0].0;
    let crash = scratch_dir("crashpoints-lsm-cut");

    for cut in checkpoint_len..=pristine_wal.len() as u64 {
        copy_db(&dir, &crash);
        std::fs::write(crash.join("wal.rodent"), &pristine_wal[..cut as usize]).unwrap();
        let db = Database::open(&crash)
            .unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        let expected_ids = boundaries
            .iter()
            .filter(|(len, _)| *len <= cut)
            .map(|(_, ids)| ids)
            .max_by_key(|ids| ids.len())
            .expect("checkpoint boundary always qualifies");

        if cut == checkpoint_len {
            // Clean boundary: the tier reattached from run metadata alone.
            assert_eq!(
                db.io_snapshot().pages_written,
                0,
                "attach-at-checkpoint must not write pages"
            );
            assert_eq!(
                db.pager().page_count(),
                checkpoint_pages,
                "attach-at-checkpoint must not allocate pages"
            );
            let snapshot = db.snapshot("Ledger").unwrap();
            let lsm = snapshot.layout().unwrap().lsm.as_ref().unwrap();
            let runs: Vec<(u32, u64, usize)> = lsm
                .runs
                .iter()
                .map(|r| (r.level, r.seq, r.row_count))
                .collect();
            assert_eq!(runs, checkpoint_runs, "run topology must survive verbatim");
            assert_eq!(lsm.memtable.len(), checkpoint_memtable);
        }
        // Replay absorbs through the tier; it must never re-render the base.
        assert_eq!(
            db.layout_stats("Ledger").unwrap().full_renders,
            1,
            "recovery re-rendered the layout at cut {cut}"
        );

        // Monotonic inserts make the tier's scan order (base, then runs
        // deepest-first, then memtable) globally ascending, so the exact
        // expected sequence is just the committed ids in insert order.
        let rows = db.scan("Ledger", &ScanRequest::all()).unwrap();
        let got: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(&got, expected_ids, "scan mismatch at cut {cut}");

        // Key-range pushdown through run pruning still answers exactly.
        let probed = db
            .scan(
                "Ledger",
                &ScanRequest::all()
                    .predicate(rodentstore::Condition::range("id", 100.0, 200.0)),
            )
            .unwrap();
        assert_eq!(probed.len(), 24, "pruned probe wrong at cut {cut}");

        // The recovered tier keeps absorbing (spills included) on both
        // boundary cuts.
        if cut == checkpoint_len || cut == pristine_wal.len() as u64 {
            let rows: Vec<Vec<Value>> = (0..6)
                .map(|j| vec![Value::Int(5_000 + j), Value::Float(0.5)])
                .collect();
            db.insert("Ledger", rows).unwrap();
            assert_eq!(
                db.row_count("Ledger").unwrap(),
                expected_ids.len() + 6,
                "post-recovery absorb failed at cut {cut}"
            );
            assert_eq!(db.layout_stats("Ledger").unwrap().full_renders, 1);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&crash);
}

/// Memory-mapped reads must be invisible to recovery: at a spread of WAL
/// truncation points (commit boundaries and torn mid-record tails alike),
/// opening the crashed image with `mmap_reads` enabled must replay to
/// byte-identical scan results as the copy-read fallback, attribute its page
/// accesses to zero-copy frames rather than copies, and keep accepting
/// writes and checkpoints while mapped.
#[test]
fn mmap_open_replays_byte_identically_to_copy_reads() {
    let dir = scratch_dir("mmap-sweep");
    let checkpoint_len = {
        let db = Database::create_with(
            &dir,
            DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::EveryCommit,
                mmap_reads: false,
            },
        )
        .unwrap();
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 300,
                vehicles: 5,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        // A rendered layout so replayed inserts land in pages and reopened
        // scans actually read them (canonical rows would read none).
        db.apply_layout_text("Traces", "vertical[lat,lon|t,id](Traces)").unwrap();
        db.checkpoint().unwrap();
        let checkpoint_len = std::fs::metadata(dir.join("wal.rodent")).unwrap().len();
        for tx in 0..10i64 {
            db.insert(
                "Traces",
                vec![vec![
                    Value::Timestamp(100_000 + tx),
                    Value::Float(tx as f64),
                    Value::Float(-(tx as f64)),
                    Value::Str(format!("car-tail-{tx}")),
                ]],
            )
            .unwrap();
        }
        checkpoint_len
    };
    let pristine_wal = std::fs::read(dir.join("wal.rodent")).unwrap();
    let mapped_dir = scratch_dir("mmap-sweep-mapped");
    let copied_dir = scratch_dir("mmap-sweep-copied");

    let wal_len = pristine_wal.len() as u64;
    let request = ScanRequest::all();
    let projected = ScanRequest::all().fields(["lat", "t"]);
    for i in 0..=8u64 {
        let cut = checkpoint_len + (wal_len - checkpoint_len) * i / 8;
        copy_db(&dir, &mapped_dir);
        copy_db(&dir, &copied_dir);
        std::fs::write(mapped_dir.join("wal.rodent"), &pristine_wal[..cut as usize]).unwrap();
        std::fs::write(copied_dir.join("wal.rodent"), &pristine_wal[..cut as usize]).unwrap();
        let mapped = Database::open_with(
            &mapped_dir,
            DurabilityOptions {
                mmap_reads: true,
                ..DurabilityOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("mmap open failed at cut {cut}: {e}"));
        let copied = Database::open_with(
            &copied_dir,
            DurabilityOptions {
                mmap_reads: false,
                ..DurabilityOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("copy open failed at cut {cut}: {e}"));

        assert_eq!(
            mapped.row_count("Traces").unwrap(),
            copied.row_count("Traces").unwrap(),
            "row counts diverge at cut {cut}"
        );
        let before_mapped = mapped.metrics();
        let before_copied = copied.metrics();
        assert_eq!(
            mapped.scan("Traces", &request).unwrap(),
            copied.scan("Traces", &request).unwrap(),
            "full scans diverge at cut {cut}"
        );
        assert_eq!(
            mapped.scan("Traces", &projected).unwrap(),
            copied.scan("Traces", &projected).unwrap(),
            "projected scans diverge at cut {cut}"
        );
        let after_mapped = mapped.metrics();
        let after_copied = copied.metrics();
        let hits = |b: &rodentstore::MetricsSnapshot, a: &rodentstore::MetricsSnapshot, n: &str| {
            a.counter(n).unwrap_or(0) - b.counter(n).unwrap_or(0)
        };
        // Same pages either way; the mapped store serves them as zero-copy
        // frames, the fallback copies every one of them.
        assert_eq!(
            hits(&before_mapped, &after_mapped, "scan.pages"),
            hits(&before_copied, &after_copied, "scan.pages"),
            "page counts diverge at cut {cut}"
        );
        assert!(
            hits(&before_mapped, &after_mapped, "scan.frame_hits") > 0,
            "mapped reads must be served as frames at cut {cut}"
        );
        assert_eq!(
            hits(&before_mapped, &after_mapped, "scan.frame_copies"),
            0,
            "mapped reads must not copy at cut {cut}"
        );
        assert_eq!(
            hits(&before_copied, &after_copied, "scan.frame_hits"),
            0,
            "fallback reads must not map at cut {cut}"
        );
        assert!(
            hits(&before_copied, &after_copied, "scan.frame_copies") > 0,
            "fallback reads must copy at cut {cut}"
        );

        // The mapped database keeps working: a write, a checkpoint (which
        // rewrites and remaps the data file), and a re-scan.
        if cut == checkpoint_len || cut == wal_len {
            let count = mapped.row_count("Traces").unwrap();
            mapped
                .insert(
                    "Traces",
                    vec![vec![
                        Value::Timestamp(999_999),
                        Value::Float(1.0),
                        Value::Float(2.0),
                        Value::Str("car-post-map".into()),
                    ]],
                )
                .unwrap();
            mapped.checkpoint().unwrap();
            assert_eq!(
                mapped.scan("Traces", &request).unwrap().len(),
                count + 1,
                "post-checkpoint scan wrong at cut {cut}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&mapped_dir);
    let _ = std::fs::remove_dir_all(&copied_dir);
}
