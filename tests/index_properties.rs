//! Property-based tests for declarative index layouts: whatever predicate a
//! scan pushes through a B-tree or R-tree, the result must equal — in rows
//! AND in order — what streaming the whole table and filtering in memory
//! produces, including when part of the data still sits in the pending row
//! buffer mid-append.

use proptest::prelude::*;
use rodentstore::{Database, ReorgStrategy, ScanRequest, Value};
use rodentstore_algebra::comprehension::{CmpOp, Condition, ElemExpr};
use rodentstore_algebra::{DataType, Field, LayoutExpr, Schema};
use rodentstore_layout::{render, MemTableProvider, RenderOptions};
use rodentstore_storage::pager::Pager;
use std::sync::Arc;

fn points_schema() -> Schema {
    Schema::new(
        "Points",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
            Field::new("tag", DataType::Int),
        ],
    )
}

/// Records with an occasional NaN coordinate — NaN rows are unkeyable and
/// must survive every indexed predicate via the outlier path.
fn record_strategy() -> impl Strategy<Value = Vec<Value>> {
    (
        (0u8..10, -100.0f64..100.0).prop_map(|(k, v)| if k == 0 { f64::NAN } else { v }),
        -100.0f64..100.0,
        0i64..40,
    )
        .prop_map(|(x, y, tag)| vec![Value::Float(x), Value::Float(y), Value::Int(tag)])
}

/// Predicates whose range extraction bounds the indexed fields in various
/// ways: fully bounded rectangles, half-open sides, conjunctions with
/// residual terms the index cannot answer alone.
fn predicate_strategy() -> impl Strategy<Value = Condition> {
    let xrange = || {
        (-120.0f64..120.0, 0.0f64..60.0).prop_map(|(lo, w)| Condition::range("x", lo, lo + w))
    };
    let yrange = || {
        (-120.0f64..120.0, 0.0f64..60.0).prop_map(|(lo, w)| Condition::range("y", lo, lo + w))
    };
    let tagrange = || {
        (0i64..40, 0i64..10)
            .prop_map(|(lo, w)| Condition::range("tag", lo as f64, (lo + w) as f64))
    };
    let half_open = (-120.0f64..120.0).prop_map(|v| Condition::Cmp {
        left: ElemExpr::field("x"),
        op: CmpOp::Le,
        right: ElemExpr::lit(v),
    });
    prop_oneof![
        xrange(),
        tagrange(),
        (xrange(), yrange()).prop_map(|(a, b)| a.and(b)),
        (xrange(), tagrange()).prop_map(|(a, b)| a.and(b)),
        half_open,
    ]
}

/// The in-memory reference: every row of `full`, filtered by the interpreted
/// predicate, projected by schema position — in storage order.
fn reference(
    schema: &Schema,
    full: &[Vec<Value>],
    fields: &[String],
    predicate: &Condition,
) -> Vec<Vec<Value>> {
    let indices = schema.indices_of(fields).unwrap();
    let mut out = Vec::new();
    for row in full {
        if predicate.eval(schema, row).unwrap() {
            out.push(indices.iter().map(|&i| row[i].clone()).collect());
        }
    }
    out
}

/// NaN != NaN under `Value`'s PartialEq, so equality checks on rows that may
/// carry NaN coordinates compare debug renderings instead.
fn printable(rows: &[Vec<Value>]) -> Vec<String> {
    rows.iter().map(|r| format!("{r:?}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// B-tree pushdown: scanning `index[tag](Points)` with any generated
    /// predicate yields exactly the streaming-filter reference, rows and
    /// order both, and `get_element` still addresses every position.
    #[test]
    fn btree_scans_match_streaming_reference(
        records in proptest::collection::vec(record_strategy(), 1..200),
        predicate in predicate_strategy(),
        fields_rev in 0u8..2,
    ) {
        let provider = MemTableProvider::single(points_schema(), records);
        let pager = Arc::new(Pager::in_memory_with_page_size(512));
        let layout = LayoutExpr::table("Points").index(["tag"]);
        let rendered = render(&layout, &provider, pager, RenderOptions::default()).unwrap();
        prop_assert!(rendered.index.is_some());

        let full = rendered.scan(None, None).unwrap();
        let mut fields = rendered.schema.field_names();
        if fields_rev == 1 {
            fields.reverse();
        }
        let expected = reference(&rendered.schema, &full, &fields, &predicate);

        let iter = rendered.scan_iter(Some(&fields), Some(&predicate)).unwrap();
        let streamed: Vec<Vec<Value>> = iter.collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(printable(&streamed), printable(&expected));

        // Positional access is unaffected by the presence of an index.
        let step = (full.len() / 5).max(1);
        for i in (0..full.len()).step_by(step) {
            prop_assert_eq!(
                printable(&[rendered.get_element(i, None).unwrap()]),
                printable(&[full[i].clone()])
            );
        }
    }

    /// R-tree pushdown over `index[x,y](Points)`: same contract, spatial
    /// index, NaN coordinates included.
    #[test]
    fn rtree_scans_match_streaming_reference(
        records in proptest::collection::vec(record_strategy(), 1..200),
        predicate in predicate_strategy(),
    ) {
        let provider = MemTableProvider::single(points_schema(), records);
        let pager = Arc::new(Pager::in_memory_with_page_size(512));
        let layout = LayoutExpr::table("Points").index(["x", "y"]);
        let rendered = render(&layout, &provider, pager, RenderOptions::default()).unwrap();
        prop_assert!(rendered.index.is_some());

        let full = rendered.scan(None, None).unwrap();
        let fields = rendered.schema.field_names();
        let expected = reference(&rendered.schema, &full, &fields, &predicate);
        let streamed: Vec<Vec<Value>> = rendered
            .scan_iter(Some(&fields), Some(&predicate))
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        prop_assert_eq!(printable(&streamed), printable(&expected));
    }

    /// Appending after the index is rendered — eagerly absorbed or parked in
    /// the pending row buffer, depending on the strategy — never changes what
    /// an indexed scan returns: it always equals filtering every inserted row
    /// in insertion order.
    #[test]
    fn appends_and_pending_buffers_preserve_indexed_scans(
        first in proptest::collection::vec(record_strategy(), 1..120),
        second in proptest::collection::vec(record_strategy(), 1..120),
        predicate in predicate_strategy(),
        strategy in prop_oneof![
            Just(ReorgStrategy::Eager),
            Just(ReorgStrategy::Lazy),
            Just(ReorgStrategy::NewDataOnly),
        ],
        two_field in 0u8..2,
    ) {
        let db = Database::with_page_size(512);
        db.create_table(points_schema()).unwrap();
        db.insert("Points", first.clone()).unwrap();
        let layout = if two_field == 1 {
            LayoutExpr::table("Points").index(["x", "y"])
        } else {
            LayoutExpr::table("Points").index(["tag"])
        };
        db.apply_layout("Points", layout, strategy).unwrap();
        // The second batch arrives after the declaration: under Eager it is
        // absorbed into the rendering (index maintained incrementally), under
        // Lazy/NewDataOnly it merges from the pending buffer at scan time.
        db.insert("Points", second.clone()).unwrap();

        let schema = points_schema();
        let all: Vec<Vec<Value>> = first.into_iter().chain(second).collect();
        let fields = schema.field_names();
        let expected = reference(&schema, &all, &fields, &predicate);
        let got = db
            .scan(
                "Points",
                &ScanRequest::all().fields(fields.clone()).predicate(predicate.clone()),
            )
            .unwrap();
        let mut got_s = printable(&got);
        let mut want_s = printable(&expected);
        // Multiset compare at the database level: pending-buffer merge order
        // is append order, but grid-free row layouts keep it identical; sort
        // defensively so the property pins contents, the layout-level tests
        // above pin order.
        got_s.sort();
        want_s.sort();
        prop_assert_eq!(got_s, want_s);
    }
}

/// The acceptance loop: a purely selective workload observed live must make
/// the advisor introduce an index by itself — no `apply_layout`, no
/// `maybe_adapt`, nothing but scans.
#[test]
fn advisor_recommends_an_index_from_a_selective_workload() {
    use rodentstore::{AdaptivePolicy, AdvisorOptions, CostParams};
    use rodentstore_optimizer::CostModel;

    let db = Database::with_page_size(1024);
    db.set_adaptive_policy(AdaptivePolicy {
        auto: true,
        min_queries: 8,
        check_every: 8,
        hysteresis: 0.1,
        strategy: ReorgStrategy::Eager,
        advisor: AdvisorOptions {
            cost_model: CostModel {
                sample_size: 2_000,
                page_size: 1024,
                cost_params: CostParams {
                    seek_ms: 1.0,
                    transfer_mb_per_s: 2.0,
                },
            },
            anneal_iterations: 2,
            seed: 11,
        },
    });
    let schema = Schema::new(
        "Ledger",
        vec![
            Field::new("id", DataType::Int),
            Field::new("amount", DataType::Float),
        ],
    );
    db.create_table(schema).unwrap();
    db.insert(
        "Ledger",
        (0..6000)
            .map(|i| vec![Value::Int(i), Value::Float(i as f64 * 0.5)])
            .collect(),
    )
    .unwrap();

    // Mostly narrow probes on `id`, with periodic full sweeps (the shape a
    // lookup-heavy service produces); every `check_every`-th scan runs the
    // advisor against the captured profile. The sweeps rule out shattering
    // the table into per-probe buckets — only a secondary index serves both
    // access patterns.
    for k in 0..40i64 {
        if k % 4 == 3 {
            assert_eq!(db.scan("Ledger", &ScanRequest::all()).unwrap().len(), 6000);
            continue;
        }
        let lo = (k * 149) % 5900;
        let rows = db
            .scan(
                "Ledger",
                &ScanRequest::all()
                    .predicate(Condition::range("id", lo as f64, (lo + 3) as f64)),
            )
            .unwrap();
        assert_eq!(rows.len(), 4);
    }

    let expr = {
        let catalog = db.catalog();
        catalog
            .get("Ledger")
            .unwrap()
            .layout_expr
            .as_ref()
            .map(|e| e.to_string())
            .unwrap_or_default()
    };
    assert!(
        expr.contains("index["),
        "selective probes must drive the advisor to an index, got {expr:?}"
    );
    let snapshot = db.snapshot("Ledger").unwrap();
    let layout = snapshot.layout().expect("adapted layout must be rendered");
    assert!(layout.index.is_some(), "the chosen index must be live");
    assert!(db.layout_stats("Ledger").unwrap().adaptations >= 1);
}

/// A bounded range on the indexed field must actually take the index path —
/// `uses_index` is the hook the stress and bench tiers rely on.
#[test]
fn bounded_predicates_take_the_index_path() {
    let records: Vec<Vec<Value>> = (0..500)
        .map(|i| {
            vec![
                Value::Float(i as f64),
                Value::Float((i * 7 % 500) as f64),
                Value::Int(i),
            ]
        })
        .collect();
    let provider = MemTableProvider::single(points_schema(), records);
    let pager = Arc::new(Pager::in_memory_with_page_size(512));
    let rendered = render(
        &LayoutExpr::table("Points").index(["tag"]),
        &provider,
        pager,
        RenderOptions::default(),
    )
    .unwrap();
    let pred = Condition::range("tag", 100.0, 120.0);
    let iter = rendered
        .scan_iter(None, Some(&pred))
        .unwrap();
    assert!(iter.uses_index());
    assert_eq!(iter.count(), 21);

    // An unconstrained scan must not detour through the index.
    let iter = rendered.scan_iter(None, None).unwrap();
    assert!(!iter.uses_index());
    assert_eq!(iter.count(), 500);
}
