//! Multi-threaded correctness tests: one `Arc<Database>` shared across
//! reader, writer, and adaptation threads.
//!
//! The heart of this suite is a linearizability-style stress test: a writer
//! appends numbered batches while readers scan and an adaptation thread
//! races layout changes, and every scan must observe an exact *batch
//! prefix* of the insert history — never a torn batch, never a gap, never a
//! row from a batch whose predecessor is missing. It runs once per
//! [`ReorgStrategy`], since each strategy moves rows between the rendered
//! layout and the pending buffer differently.
//!
//! The restart tests cover the durable state added in this PR: the
//! persisted adaptive policy and cost parameters, and the free-page list.

use rodentstore::{
    AdaptivePolicy, AdvisorOptions, CostParams, DataType, Database, Field, LayoutExpr,
    ReorgStrategy, ScanRequest, Schema, SyncPolicy, Value,
};
use rodentstore_optimizer::CostModel;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rodentstore-concurrency-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn points_schema() -> Schema {
    Schema::new(
        "Points",
        vec![
            Field::new("batch", DataType::Int),
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
            Field::new("tag", DataType::String),
        ],
    )
}

fn batch_rows(batch: i64, rows: usize) -> Vec<Vec<Value>> {
    (0..rows)
        .map(|i| {
            vec![
                Value::Int(batch),
                Value::Float((batch * 97 + i as i64) as f64 * 0.25),
                Value::Float((batch * 31 + i as i64) as f64 * 0.5),
                Value::Str(format!("b{batch}-r{i}")),
            ]
        })
        .collect()
}

/// `Arc<Database>` must be shareable across threads — the whole point of
/// the `&self` read path. Compile-time check.
#[test]
fn database_handle_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<rodentstore::TableSnapshot>();
}

/// The stress test: readers vs. one writer vs. an adaptation thread, for
/// every reorganization strategy. Every scan must see an exact batch
/// prefix: batch 0 (the initial load) complete, then batches 1..k complete
/// for some k, and nothing else.
#[test]
fn scans_observe_batch_prefixes_under_concurrent_insert_and_adaptation() {
    const INITIAL: usize = 400;
    const BATCH: usize = 25;
    const BATCHES: i64 = 24;
    const READERS: usize = 3;
    for strategy in [
        ReorgStrategy::Eager,
        ReorgStrategy::Lazy,
        ReorgStrategy::NewDataOnly,
    ] {
        let db = Arc::new(Database::with_page_size(1024));
        db.create_table(points_schema()).unwrap();
        db.insert("Points", batch_rows(0, INITIAL)).unwrap();
        db.apply_layout(
            "Points",
            rodentstore::LayoutExpr::table("Points").columns(["batch", "x", "y", "tag"]),
            strategy,
        )
        .unwrap();

        // The writer bumps this *after* each insert returns; a scan started
        // afterwards must include at least that many batches.
        let committed = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let db = Arc::clone(&db);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                for b in 1..=BATCHES {
                    db.insert("Points", batch_rows(b, BATCH)).unwrap();
                    committed.store(b as usize, Ordering::SeqCst);
                    std::thread::yield_now();
                }
            })
        };

        let adapter = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Race explicit layout re-declarations (the same machinery
                // `maybe_adapt` applies through) against readers + writer.
                let exprs = [
                    "columns(Points)",
                    "project[batch,x,y,tag](Points)",
                    "orderby[batch](Points)",
                    "vertical[batch,x|y,tag](Points)",
                ];
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let expr = rodentstore::parse(exprs[i % exprs.len()]).unwrap();
                    db.apply_layout("Points", expr, strategy).unwrap();
                    i += 1;
                    std::thread::yield_now();
                }
            })
        };

        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let db = Arc::clone(&db);
                let committed = Arc::clone(&committed);
                let writer_done = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut scans = 0usize;
                    while !writer_done.load(Ordering::Relaxed) || scans < 5 {
                        let floor = committed.load(Ordering::SeqCst);
                        let request = if r % 2 == 0 {
                            ScanRequest::all()
                        } else {
                            ScanRequest::all().fields(["batch", "tag"])
                        };
                        let rows = db.scan("Points", &request).unwrap();
                        // Batch-prefix invariant: per-batch counts must be
                        // complete, contiguous from 0, and cover at least
                        // the batches committed before the scan began.
                        // (`batch` is position 0 in both request shapes.)
                        let mut counts: BTreeMap<i64, usize> = BTreeMap::new();
                        for row in &rows {
                            *counts.entry(row[0].as_i64().unwrap()).or_default() += 1;
                        }
                        let max_batch = *counts.keys().max().unwrap();
                        assert_eq!(counts[&0], INITIAL, "initial load torn ({strategy})");
                        for b in 1..=max_batch {
                            assert_eq!(
                                counts.get(&b),
                                Some(&BATCH),
                                "batch {b} torn or missing at max {max_batch} ({strategy})"
                            );
                        }
                        assert!(
                            max_batch >= floor as i64,
                            "scan missed batches committed before it began: \
                             saw {max_batch}, floor {floor} ({strategy})"
                        );
                        scans += 1;
                    }
                    scans
                })
            })
            .collect();

        writer.join().unwrap();
        stop.store(true, Ordering::SeqCst);
        for reader in readers {
            assert!(reader.join().unwrap() >= 5);
        }
        adapter.join().unwrap();

        // Quiesced end state: everything adds up exactly.
        let rows = db.scan("Points", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), INITIAL + (BATCHES as usize) * BATCH);
        // Positional access agrees with the stored representation.
        let last = db
            .get_element("Points", rows.len() - 1, None)
            .unwrap();
        assert_eq!(last.len(), 4);
    }
}

/// Auto-adaptation triggered *from reader threads* must stay correct and
/// race-free: many readers crossing the check threshold together, one
/// advisor run at a time, scans correct throughout.
#[test]
fn auto_adaptation_from_concurrent_readers_is_safe() {
    let db = Arc::new(Database::with_page_size(1024));
    db.set_adaptive_policy(AdaptivePolicy {
        auto: true,
        check_every: 8,
        min_queries: 8,
        hysteresis: 0.1,
        advisor: AdvisorOptions {
            cost_model: CostModel {
                sample_size: 400,
                page_size: 1024,
                cost_params: CostParams {
                    seek_ms: 1.0,
                    transfer_mb_per_s: 2.0,
                },
            },
            anneal_iterations: 1,
            seed: 3,
        },
        ..AdaptivePolicy::default()
    });
    db.create_table(points_schema()).unwrap();
    db.insert("Points", batch_rows(0, 600)).unwrap();

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for _ in 0..40 {
                    let rows = db
                        .scan("Points", &ScanRequest::all().fields(["x"]))
                        .unwrap();
                    assert_eq!(rows.len(), 600);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // The projection-heavy traffic must have driven at least one adaptation.
    assert!(
        db.layout_stats("Points").unwrap().adaptations >= 1,
        "auto mode must adapt under concurrent reader traffic"
    );
    assert_eq!(db.scan("Points", &ScanRequest::all()).unwrap().len(), 600);
}

/// A pinned snapshot (and its streaming cursor) survives layout swaps and
/// inserts underneath it, and the superseded layout's pages are reclaimed
/// only after the pin drops.
#[test]
fn pinned_snapshots_survive_layout_swaps_and_defer_page_reclamation() {
    let db = Database::with_page_size(1024);
    db.create_table(points_schema()).unwrap();
    db.insert("Points", batch_rows(0, 500)).unwrap();
    db.apply_layout_text("Points", "columns(Points)").unwrap();

    let snapshot = db.snapshot("Points").unwrap();
    let before = snapshot.scan(&ScanRequest::all()).unwrap();
    assert_eq!(before.len(), 500);

    // Swap the layout and insert more rows while the snapshot is pinned.
    db.apply_layout_text("Points", "orderby[x](project[batch,x,y,tag](Points))")
        .unwrap();
    db.insert("Points", batch_rows(1, 50)).unwrap();
    assert_eq!(
        db.pager().free_page_count(),
        0,
        "pinned layout's pages must not be reclaimed"
    );

    // The pinned snapshot still reads the old, 500-row state — via scan,
    // streaming cursor, and positional access.
    assert_eq!(snapshot.scan(&ScanRequest::all()).unwrap(), before);
    let mut cursor = snapshot.open_cursor(&ScanRequest::all()).unwrap();
    let mut streamed = 0usize;
    while cursor.try_next().unwrap().is_some() {
        streamed += 1;
    }
    assert_eq!(streamed, 500);
    assert_eq!(snapshot.get_element(0, None).unwrap(), before[0]);

    // Fresh reads see the new state.
    assert_eq!(db.scan("Points", &ScanRequest::all()).unwrap().len(), 550);

    // Dropping the pin lets the next writer reclaim the old extent.
    drop(cursor);
    drop(snapshot);
    db.insert("Points", batch_rows(2, 1)).unwrap();
    assert!(
        db.pager().free_page_count() > 0,
        "superseded layout's pages must reach the free list after the pin drops"
    );
}

/// Freed pages are actually *reused*: re-declaring layouts over and over
/// must not grow the page file linearly with the number of declarations.
#[test]
fn superseded_render_pages_are_reused_not_leaked() {
    let db = Database::with_page_size(1024);
    db.create_table(points_schema()).unwrap();
    db.insert("Points", batch_rows(0, 800)).unwrap();
    db.apply_layout_text("Points", "columns(Points)").unwrap();
    let after_first = db.pager().page_count();
    for _ in 0..6 {
        db.apply_layout_text("Points", "rows(Points)").unwrap();
        db.apply_layout_text("Points", "columns(Points)").unwrap();
    }
    let final_pages = db.pager().page_count();
    assert!(
        final_pages <= after_first * 3,
        "12 re-renders grew the file {after_first} → {final_pages} pages: free list not reused"
    );

    // Dropped tables are reclaimed the same way.
    let before_drop = db.pager().page_count();
    db.drop_table("Points").unwrap();
    db.create_table(points_schema()).unwrap();
    db.insert("Points", batch_rows(0, 800)).unwrap();
    db.apply_layout_text("Points", "columns(Points)").unwrap();
    assert!(
        db.pager().page_count() <= before_drop + 8,
        "recreating a dropped table must reuse its freed pages"
    );
}

/// The restart test for the state this PR persists: adaptive policy, cost
/// parameters, and the free-page list all round-trip through a checkpoint.
#[test]
fn restart_restores_policy_cost_params_and_free_list() {
    let dir = scratch_dir("policy-freelist");
    let custom_policy = AdaptivePolicy {
        auto: true,
        check_every: 23,
        min_queries: 7,
        hysteresis: 0.31,
        strategy: ReorgStrategy::Lazy,
        advisor: AdvisorOptions {
            cost_model: CostModel {
                sample_size: 1_234,
                page_size: 1024,
                cost_params: CostParams {
                    seek_ms: 3.5,
                    transfer_mb_per_s: 44.0,
                },
            },
            anneal_iterations: 5,
            seed: 77,
        },
    };
    let custom_cost = CostParams {
        seek_ms: 9.25,
        transfer_mb_per_s: 17.0,
    };
    let (free_before, pages_before) = {
        let db = Database::create_with(
            &dir,
            rodentstore::DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::GroupDurable,
                ..rodentstore::DurabilityOptions::default()
            },
        )
        .unwrap();
        db.set_adaptive_policy(custom_policy.clone());
        db.set_cost_params(custom_cost);
        db.create_table(points_schema()).unwrap();
        db.insert("Points", batch_rows(0, 700)).unwrap();
        // Two declarations: the first render's pages land on the free list.
        db.apply_layout_text("Points", "columns(Points)").unwrap();
        db.apply_layout_text("Points", "project[batch,x](Points)").unwrap();
        db.checkpoint().unwrap();
        let free = db.pager().free_list();
        assert!(!free.is_empty(), "superseded render must free pages");
        (free, db.pager().page_count())
    };

    let db = Database::open(&dir).unwrap();
    // Policy and cost params came back exactly, not as defaults.
    let policy = db.adaptive_policy();
    assert!(policy.auto);
    assert_eq!(policy.check_every, custom_policy.check_every);
    assert_eq!(policy.min_queries, custom_policy.min_queries);
    assert_eq!(policy.hysteresis, custom_policy.hysteresis);
    assert_eq!(policy.strategy, ReorgStrategy::Lazy);
    assert_eq!(
        policy.advisor.cost_model.sample_size,
        custom_policy.advisor.cost_model.sample_size
    );
    assert_eq!(
        policy.advisor.cost_model.cost_params.seek_ms,
        custom_policy.advisor.cost_model.cost_params.seek_ms
    );
    assert_eq!(policy.advisor.anneal_iterations, 5);
    assert_eq!(policy.advisor.seed, 77);

    // The free list survived the restart and is reused by the next render.
    assert_eq!(db.pager().free_list(), free_before);
    db.apply_layout_text("Points", "columns(Points)").unwrap();
    assert!(
        db.pager().page_count() <= pages_before + 4,
        "the reopened database must render into the restored free pages"
    );
    assert_eq!(db.scan("Points", &ScanRequest::all()).unwrap().len(), 700);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pages still referenced by the last on-disk manifest must never be
/// reused before the next checkpoint. A fold layout forces an *unlogged*
/// rebuild on insert (scans/absorbs are not WAL ops): the checkpointed
/// extent is retired and, without quarantine, the rebuild itself would
/// reallocate and overwrite it — then a crash would reattach the manifest
/// extent over foreign bytes.
#[test]
fn checkpointed_extents_survive_unlogged_rebuilds_until_next_checkpoint() {
    let dir = scratch_dir("quarantine");
    let fold_schema = Schema::new(
        "Readings",
        vec![
            Field::new("sensor", DataType::Int),
            Field::new("v", DataType::Float),
        ],
    );
    let rows = |lo: i64, n: i64| -> Vec<Vec<Value>> {
        (lo..lo + n)
            .map(|i| vec![Value::Int(i % 10), Value::Float(i as f64)])
            .collect()
    };
    {
        let db = Database::create_with(
            &dir,
            rodentstore::DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::EveryCommit,
                ..rodentstore::DurabilityOptions::default()
            },
        )
        .unwrap();
        db.create_table(fold_schema).unwrap();
        db.insert("Readings", rows(0, 300)).unwrap();
        // fold groups cannot absorb appends → every insert rebuilds.
        db.apply_layout_text("Readings", "fold[sensor|v](Readings)").unwrap();
        db.checkpoint().unwrap();
        // Unlogged rebuild: the checkpointed extent is retired; two more
        // inserts give the reaper every chance to recycle it.
        db.insert("Readings", rows(300, 50)).unwrap();
        db.insert("Readings", rows(350, 50)).unwrap();
        assert_eq!(
            db.pager().free_page_count(),
            0,
            "manifest-referenced pages must stay quarantined until the next checkpoint"
        );
        // Crash without checkpoint.
    }
    let db = Database::open(&dir).unwrap();
    let recovered = db.scan("Readings", &ScanRequest::all()).unwrap();
    assert_eq!(recovered.len(), 400, "reattached extent must be intact");
    // A checkpoint on the reopened database releases the quarantine: the
    // next rebuild can then reuse pages without growing the file much.
    db.checkpoint().unwrap();
    assert!(
        db.pager().free_page_count() > 0,
        "checkpoint must release quarantined pages to the free list"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent durable inserts from many threads: every row lands, every
/// commit is durable (GroupDurable), and a reopen recovers them all.
#[test]
fn concurrent_durable_inserts_all_recover() {
    let dir = scratch_dir("mp-inserts");
    const THREADS: i64 = 4;
    const PER_THREAD: i64 = 20;
    {
        let db = Arc::new(
            Database::create_with(
                &dir,
                rodentstore::DurabilityOptions {
                    page_size: 1024,
                    sync: SyncPolicy::GroupDurable,
                    ..rodentstore::DurabilityOptions::default()
                },
            )
            .unwrap(),
        );
        db.create_table(points_schema()).unwrap();
        db.apply_layout_text("Points", "columns(Points)").unwrap();
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let db = Arc::clone(&db);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        db.insert("Points", batch_rows(t * PER_THREAD + i, 2)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            db.row_count("Points").unwrap(),
            (THREADS * PER_THREAD * 2) as usize
        );
        // No checkpoint: recovery must come from the WAL alone.
    }
    let db = Database::open(&dir).unwrap();
    let rows = db.scan("Points", &ScanRequest::all()).unwrap();
    assert_eq!(rows.len(), (THREADS * PER_THREAD * 2) as usize);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Epoch-based reclamation under long-lived pins: readers hold snapshots
/// across many concurrent layout swaps and inserts, and every re-scan of a
/// held snapshot must be identical to its first — superseded renderings
/// must never be reused (and their pages never overwritten) while a live
/// pin can still reach them. The retired set may grow while pins defer
/// reclamation, but it must stay bounded by the writes outstanding and
/// drain back down once the pins are released.
#[test]
fn epoch_reclamation_defers_under_pins_then_drains() {
    const SWAPS: usize = 24;
    let db = Arc::new(Database::with_page_size(1024));
    db.create_table(points_schema()).unwrap();
    db.insert("Points", batch_rows(0, 400)).unwrap();
    db.apply_layout_text("Points", "columns(Points)").unwrap();

    let stop = Arc::new(AtomicBool::new(false));

    // Readers: pin a snapshot, hold it across concurrent swaps while
    // repeatedly re-scanning it, drop it, repeat.
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut pins = 0usize;
                while !stop.load(Ordering::Relaxed) || pins < 4 {
                    let snap = db.snapshot("Points").unwrap();
                    let first = snap.scan(&ScanRequest::all()).unwrap();
                    for _ in 0..8 {
                        std::thread::yield_now();
                        assert_eq!(
                            snap.scan(&ScanRequest::all()).unwrap(),
                            first,
                            "pinned snapshot changed under concurrent swaps"
                        );
                    }
                    assert_eq!(snap.get_element(0, None).unwrap(), first[0]);
                    pins += 1;
                }
                pins
            })
        })
        .collect();

    // Writer: race layout swaps and inserts against the held pins, and
    // watch the retired set as it goes.
    let exprs = [
        "columns(Points)",
        "rows(Points)",
        "orderby[batch](Points)",
        "project[batch,x,y,tag](Points)",
    ];
    let mut max_retired = 0usize;
    for i in 0..SWAPS {
        db.apply_layout_text("Points", exprs[i % exprs.len()]).unwrap();
        db.insert("Points", batch_rows(100 + i as i64, 5)).unwrap();
        max_retired = max_retired.max(db.retired_snapshots());
    }
    stop.store(true, Ordering::SeqCst);
    for reader in readers {
        assert!(reader.join().unwrap() >= 4);
    }

    // Bounded: deferral is proportional to the writes raced, never more.
    // Each swap/insert retires at most a handful of entries (the superseded
    // state, its rendering, the vacated pages).
    assert!(
        max_retired <= SWAPS * 6 + 8,
        "retired set grew superlinearly: {max_retired} entries after {SWAPS} swaps"
    );

    // Drained: with every pin released, the next writes' reap empties the
    // backlog down to what those writes themselves just retired.
    db.insert("Points", batch_rows(900, 1)).unwrap();
    db.insert("Points", batch_rows(901, 1)).unwrap();
    let after = db.retired_snapshots();
    assert!(
        after <= 4,
        "retired set must drain once pins are released; still {after} entries"
    );
    // And the quiesced contents add up exactly.
    let rows = db.scan("Points", &ScanRequest::all()).unwrap();
    assert_eq!(rows.len(), 400 + SWAPS * 5 + 2);
}

/// The per-table registry round-trips through a checkpoint: several tables
/// with distinct layouts, strategies, stats, and workload profiles all come
/// back exactly on `Database::open`.
#[test]
fn per_table_registry_round_trips_through_checkpoint_and_open() {
    let dir = scratch_dir("registry-roundtrip");
    let readings_schema = Schema::new(
        "Readings",
        vec![
            Field::new("sensor", DataType::Int),
            Field::new("v", DataType::Float),
        ],
    );
    let (points_stats, points_profile, readings_rows) = {
        let db = Database::create_with(
            &dir,
            rodentstore::DurabilityOptions {
                page_size: 1024,
                sync: SyncPolicy::GroupDurable,
                ..rodentstore::DurabilityOptions::default()
            },
        )
        .unwrap();
        // Table 1: ordered projection, lazy reorganization, profiled scans.
        db.create_table(points_schema()).unwrap();
        db.insert("Points", batch_rows(0, 300)).unwrap();
        db.apply_layout(
            "Points",
            rodentstore::parse("orderby[x](project[batch,x,y,tag](Points))").unwrap(),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        for _ in 0..6 {
            db.scan("Points", &ScanRequest::all().fields(["x"])).unwrap();
        }
        // Table 2: fold layout, eager strategy, rebuilt once by an insert.
        db.create_table(readings_schema.clone()).unwrap();
        db.insert(
            "Readings",
            (0..120_i64)
                .map(|i| vec![Value::Int(i % 7), Value::Float(i as f64)])
                .collect(),
        )
        .unwrap();
        db.apply_layout_text("Readings", "fold[sensor|v](Readings)").unwrap();
        db.insert(
            "Readings",
            vec![vec![Value::Int(3), Value::Float(999.0)]],
        )
        .unwrap();
        // Table 3: canonical rows only, no layout declared.
        db.create_table(Schema::new(
            "Tags",
            vec![Field::new("name", DataType::String)],
        ))
        .unwrap();
        db.insert("Tags", vec![vec![Value::Str("a".into())], vec![Value::Str("b".into())]])
            .unwrap();
        db.checkpoint().unwrap();
        (
            db.layout_stats("Points").unwrap(),
            db.workload_profile("Points").unwrap(),
            db.scan("Readings", &ScanRequest::all()).unwrap(),
        )
    };

    let db = Database::open(&dir).unwrap();
    let view = db.catalog();
    let mut names = view.table_names();
    names.sort();
    assert_eq!(names, ["Points", "Readings", "Tags"]);

    // Per-table layout expressions, strategies, and schemas came back.
    let points = view.get("Points").unwrap();
    assert_eq!(
        points.layout_expr.as_ref().map(|e| e.to_string()),
        Some("orderby[x](project[batch,x,y,tag](Points))".to_string())
    );
    assert_eq!(points.strategy, ReorgStrategy::Lazy);
    assert_eq!(points.schema.to_string(), points_schema().to_string());
    let readings = view.get("Readings").unwrap();
    assert_eq!(
        readings.layout_expr.as_ref().map(|e| e.to_string()),
        Some("fold[sensor|v](Readings)".to_string())
    );
    assert_eq!(readings.strategy, ReorgStrategy::Eager);
    assert!(view.get("Tags").unwrap().layout_expr.is_none());

    // Stats and the workload profile are the checkpointed values, not
    // defaults: the lazy re-render and the profiled scans survived.
    let stats = db.layout_stats("Points").unwrap();
    assert_eq!(stats, points_stats);
    let profile = db.workload_profile("Points").unwrap();
    assert_eq!(profile.queries_observed, points_profile.queries_observed);

    // And the contents themselves.
    assert_eq!(db.scan("Readings", &ScanRequest::all()).unwrap(), readings_rows);
    assert_eq!(db.scan("Points", &ScanRequest::all()).unwrap().len(), 300);
    assert_eq!(db.scan("Tags", &ScanRequest::all()).unwrap().len(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a prejoined table's rendering captures its joined base
/// tables *outside* their writer mutexes, so a base-table publish used to
/// leave the dependent's rendering silently stale — current-looking but
/// missing rows that became joinable — until the dependent's own next
/// write. The dependency flag must heal it on the very next access.
#[test]
fn prejoin_rendering_heals_after_joined_base_publishes() {
    for strategy in [ReorgStrategy::Eager, ReorgStrategy::Lazy] {
        let db = Database::with_page_size(1024);
        db.create_table(Schema::new(
            "Customers",
            vec![
                Field::new("cid", DataType::Int),
                Field::new("name", DataType::String),
            ],
        ))
        .unwrap();
        db.create_table(Schema::new(
            "Orders",
            vec![
                Field::new("oid", DataType::Int),
                Field::new("cid", DataType::Int),
            ],
        ))
        .unwrap();
        db.insert(
            "Customers",
            vec![vec![Value::Int(1), Value::Str("ada".into())]],
        )
        .unwrap();
        db.insert(
            "Orders",
            vec![
                vec![Value::Int(10), Value::Int(1)],
                vec![Value::Int(20), Value::Int(2)],
            ],
        )
        .unwrap();
        db.apply_layout(
            "Orders",
            LayoutExpr::table("Orders").prejoin(LayoutExpr::table("Customers"), "cid"),
            strategy,
        )
        .unwrap();

        // Inner join: order 20 references a customer that does not exist
        // yet, so only order 10 denormalizes.
        let rows = db.scan("Orders", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 1, "{strategy:?}");
        assert_eq!(rows[0][0], Value::Int(10));

        // Publish the missing customer. This touches only Customers —
        // Orders' rendering still *looks* current (it has a rendering and
        // no pending rows), and before the dependency flag the newly
        // joinable order stayed invisible indefinitely.
        db.insert(
            "Customers",
            vec![vec![Value::Int(2), Value::Str("bob".into())]],
        )
        .unwrap();
        let rows = db.scan("Orders", &ScanRequest::all()).unwrap();
        assert_eq!(
            rows.len(),
            2,
            "{strategy:?}: rendering did not heal after the joined base published"
        );
        for r in &rows {
            // Joined shape: [oid, cid, Customers.cid, name] — the join
            // attribute must agree on both sides and the name must be the
            // matched customer's, never a stale or torn capture.
            assert_eq!(r[1], r[2], "{strategy:?}: join attribute mismatch");
        }
        let bob = rows.iter().find(|r| r[0] == Value::Int(20)).unwrap();
        assert_eq!(bob[3], Value::Str("bob".into()), "{strategy:?}");

        // The flag clears: the healing render is one render, not a
        // re-render on every subsequent access.
        let renders = db.layout_stats("Orders").unwrap().full_renders;
        db.scan("Orders", &ScanRequest::all()).unwrap();
        assert_eq!(
            db.layout_stats("Orders").unwrap().full_renders,
            renders,
            "{strategy:?}: dependency flag must clear after the heal"
        );
    }
}

/// The racing variant: one thread publishes Customers batches while
/// another publishes Orders batches into a prejoined layout, with readers
/// scanning throughout. Every scanned row must be internally consistent
/// (join attribute equal on both sides, name belonging to that customer,
/// no duplicated orders), and once all writers quiesce — with the *last*
/// customers published after the last Orders write, the exact window the
/// dependency flag covers — the scan must denormalize every order.
#[test]
fn prejoined_scans_stay_consistent_under_racing_base_inserts() {
    const CIDS: i64 = 40;
    const ORDER_BATCHES: i64 = 40;
    const ORDERS_PER_BATCH: i64 = 5;
    let db = Arc::new(Database::with_page_size(1024));
    db.create_table(Schema::new(
        "Customers",
        vec![
            Field::new("cid", DataType::Int),
            Field::new("name", DataType::String),
        ],
    ))
    .unwrap();
    db.create_table(Schema::new(
        "Orders",
        vec![
            Field::new("oid", DataType::Int),
            Field::new("cid", DataType::Int),
        ],
    ))
    .unwrap();
    db.apply_layout(
        "Orders",
        LayoutExpr::table("Orders").prejoin(LayoutExpr::table("Customers"), "cid"),
        ReorgStrategy::Eager,
    )
    .unwrap();

    let customer_batch = |cids: std::ops::Range<i64>| -> Vec<Vec<Value>> {
        cids.map(|c| vec![Value::Int(c), Value::Str(format!("name-{c}"))])
            .collect()
    };

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let db = Arc::clone(&db);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut scans = 0usize;
                while !done.load(Ordering::SeqCst) || scans < 5 {
                    let rows = db.scan("Orders", &ScanRequest::all()).unwrap();
                    let mut seen = std::collections::BTreeSet::new();
                    for r in &rows {
                        assert_eq!(r[1], r[2], "torn join: attribute mismatch");
                        let cid = r[1].as_i64().unwrap();
                        assert_eq!(
                            r[3],
                            Value::Str(format!("name-{cid}")),
                            "torn join: wrong customer captured"
                        );
                        assert!(
                            seen.insert(r[0].as_i64().unwrap()),
                            "order denormalized twice"
                        );
                    }
                    scans += 1;
                }
                scans
            })
        })
        .collect();

    // First half of the customers race the orders; the second half lands
    // only after the orders writer has quiesced.
    let customers_writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            for start in (0..CIDS / 2).step_by(4) {
                db.insert("Customers", customer_batch(start..start + 4))
                    .unwrap();
                std::thread::yield_now();
            }
        })
    };
    let orders_writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            let mut oid = 0i64;
            for _ in 0..ORDER_BATCHES {
                let batch: Vec<Vec<Value>> = (0..ORDERS_PER_BATCH)
                    .map(|_| {
                        let row = vec![Value::Int(oid), Value::Int(oid % CIDS)];
                        oid += 1;
                        row
                    })
                    .collect();
                db.insert("Orders", batch).unwrap();
                std::thread::yield_now();
            }
        })
    };
    customers_writer.join().unwrap();
    orders_writer.join().unwrap();
    // The stale window under test: these publishes touch only Customers,
    // after Orders' final (current-looking) rendering.
    db.insert("Customers", customer_batch(CIDS / 2..CIDS)).unwrap();
    done.store(true, Ordering::SeqCst);
    for reader in readers {
        assert!(reader.join().unwrap() >= 5);
    }

    let rows = db.scan("Orders", &ScanRequest::all()).unwrap();
    assert_eq!(
        rows.len(),
        (ORDER_BATCHES * ORDERS_PER_BATCH) as usize,
        "orders referencing late-published customers must denormalize"
    );
    let oids: std::collections::BTreeSet<i64> =
        rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    assert_eq!(oids.len(), rows.len());
    for r in &rows {
        assert_eq!(r[1], r[2]);
        let cid = r[1].as_i64().unwrap();
        assert_eq!(r[3], Value::Str(format!("name-{cid}")));
    }
}
