//! Concurrency stress for declarative indexes: readers push predicates
//! through a B-tree/R-tree while a writer appends batches and an adaptation
//! thread races index creation and removal. Every scan — indexed or not —
//! must observe an exact *batch prefix* of the insert history: batch 0
//! complete, then batches 1..k complete for some k ≥ the count committed
//! before the scan began, and never a torn batch.

use rodentstore::{Database, ReorgStrategy, ScanRequest, Value};
use rodentstore_algebra::comprehension::Condition;
use rodentstore_algebra::{DataType, Field, Schema};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn points_schema() -> Schema {
    Schema::new(
        "Points",
        vec![
            Field::new("batch", DataType::Int),
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
            Field::new("tag", DataType::String),
        ],
    )
}

fn batch_rows(batch: i64, rows: usize) -> Vec<Vec<Value>> {
    (0..rows)
        .map(|i| {
            vec![
                Value::Int(batch),
                Value::Float((batch * 97 + i as i64) as f64 * 0.25),
                Value::Float((batch * 31 + i as i64) as f64 * 0.5),
                Value::Str(format!("b{batch}-r{i}")),
            ]
        })
        .collect()
}

/// Per-batch row counts of a scan result (`batch` is field position 0).
fn batch_counts(rows: &[Vec<Value>]) -> BTreeMap<i64, usize> {
    let mut counts = BTreeMap::new();
    for row in rows {
        *counts.entry(row[0].as_i64().unwrap()).or_default() += 1;
    }
    counts
}

#[test]
fn indexed_scans_observe_batch_prefixes_under_insert_and_index_churn() {
    const INITIAL: usize = 300;
    const BATCH: usize = 20;
    const BATCHES: i64 = 20;
    const READERS: usize = 3;
    for strategy in [
        ReorgStrategy::Eager,
        ReorgStrategy::Lazy,
        ReorgStrategy::NewDataOnly,
    ] {
        let db = Arc::new(Database::with_page_size(1024));
        db.create_table(points_schema()).unwrap();
        db.insert("Points", batch_rows(0, INITIAL)).unwrap();
        db.apply_layout(
            "Points",
            rodentstore::LayoutExpr::table("Points").index(["batch"]),
            strategy,
        )
        .unwrap();

        // Bumped *after* each insert returns; a scan started afterwards must
        // include at least that many batches.
        let committed = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let db = Arc::clone(&db);
            let committed = Arc::clone(&committed);
            std::thread::spawn(move || {
                for b in 1..=BATCHES {
                    db.insert("Points", batch_rows(b, BATCH)).unwrap();
                    committed.store(b as usize, Ordering::SeqCst);
                    std::thread::yield_now();
                }
            })
        };

        // Index churn: create the B-tree, drop every index, create the
        // R-tree — the transitions `maybe_adapt` drives when the advisor's
        // winner gains or loses its index.
        let adapter = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let exprs = [
                    "index[batch](Points)",
                    "rows(Points)",
                    "index[x,y](Points)",
                    "rows(Points)",
                ];
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let expr = rodentstore::parse(exprs[i % exprs.len()]).unwrap();
                    db.apply_layout("Points", expr, strategy).unwrap();
                    i += 1;
                    std::thread::yield_now();
                }
            })
        };

        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let db = Arc::clone(&db);
                let committed = Arc::clone(&committed);
                let writer_done = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut scans = 0usize;
                    while !writer_done.load(Ordering::Relaxed) || scans < 5 {
                        let floor = committed.load(Ordering::SeqCst);
                        match r % 3 {
                            0 => {
                                // Full scan: exact batch-prefix invariant.
                                let rows = db.scan("Points", &ScanRequest::all()).unwrap();
                                let counts = batch_counts(&rows);
                                let max_batch = *counts.keys().max().unwrap();
                                assert_eq!(counts[&0], INITIAL, "initial load torn ({strategy})");
                                for b in 1..=max_batch {
                                    assert_eq!(
                                        counts.get(&b),
                                        Some(&BATCH),
                                        "batch {b} torn at max {max_batch} ({strategy})"
                                    );
                                }
                                assert!(
                                    max_batch >= floor as i64,
                                    "scan missed committed batches: saw {max_batch}, \
                                     floor {floor} ({strategy})"
                                );
                            }
                            1 => {
                                // Point probe through the (possibly present)
                                // B-tree: a committed batch is all-or-all.
                                let b = floor as i64;
                                let rows = db
                                    .scan(
                                        "Points",
                                        &ScanRequest::all().predicate(Condition::range(
                                            "batch", b as f64, b as f64,
                                        )),
                                    )
                                    .unwrap();
                                let want = if b == 0 { INITIAL } else { BATCH };
                                assert_eq!(
                                    rows.len(),
                                    want,
                                    "committed batch {b} torn under pushdown ({strategy})"
                                );
                                assert!(rows.iter().all(|r| r[0].as_i64() == Some(b)));
                            }
                            _ => {
                                // Range probe through the (possibly present)
                                // R-tree: every committed batch in the band.
                                let rows = db
                                    .scan(
                                        "Points",
                                        &ScanRequest::all().predicate(
                                            Condition::range("x", 0.0, 1e9)
                                                .and(Condition::range("y", 0.0, 1e9)),
                                        ),
                                    )
                                    .unwrap();
                                let counts = batch_counts(&rows);
                                // x,y are non-negative for every generated
                                // row, so this band is the whole table.
                                assert_eq!(counts[&0], INITIAL, "spatial probe tore batch 0");
                                for b in 1..=(floor as i64) {
                                    assert_eq!(
                                        counts.get(&b),
                                        Some(&BATCH),
                                        "spatial probe tore batch {b} ({strategy})"
                                    );
                                }
                            }
                        }
                        scans += 1;
                    }
                    scans
                })
            })
            .collect();

        writer.join().unwrap();
        stop.store(true, Ordering::SeqCst);
        for reader in readers {
            assert!(reader.join().unwrap() >= 5);
        }
        adapter.join().unwrap();

        // Quiesced end state: everything adds up, with and without pushdown.
        let total = INITIAL + (BATCHES as usize) * BATCH;
        assert_eq!(db.scan("Points", &ScanRequest::all()).unwrap().len(), total);
        db.apply_layout("Points", rodentstore::parse("index[batch](Points)").unwrap(), strategy)
            .unwrap();
        let probed = db
            .scan(
                "Points",
                &ScanRequest::all().predicate(Condition::range("batch", 1.0, BATCHES as f64)),
            )
            .unwrap();
        assert_eq!(probed.len(), (BATCHES as usize) * BATCH, "({strategy})");
    }
}
