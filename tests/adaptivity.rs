//! Property tests for the adaptation loop's correctness guarantee: whatever
//! reorganization strategy carries a layout change, and whether pending rows
//! are buffered, absorbed incrementally, or rebuilt, scans must return
//! exactly the canonical logical contents — before, during, and after an
//! adaptation.

use proptest::prelude::*;
use rodentstore::{Database, ReorgStrategy, ScanRequest, Value};
use rodentstore_algebra::{DataType, Field, LayoutExpr, Schema};

fn points_schema() -> Schema {
    Schema::new(
        "Points",
        vec![
            Field::new("x", DataType::Float),
            Field::new("y", DataType::Float),
            Field::new("tag", DataType::Int),
        ],
    )
}

fn record_strategy() -> impl Strategy<Value = Vec<Value>> {
    (-100.0f64..100.0, -100.0f64..100.0, 0i64..10)
        .prop_map(|(x, y, tag)| vec![Value::Float(x), Value::Float(y), Value::Int(tag)])
}

/// Layouts that keep every field, so scans over all phases are comparable.
/// The set deliberately spans the incremental-append paths (rows, pax, grid
/// cells, horizontal partitions, vertical groups, orderby).
fn layout_strategy() -> impl Strategy<Value = LayoutExpr> {
    prop_oneof![
        Just(LayoutExpr::table("Points")),
        Just(LayoutExpr::table("Points").pax_with(64)),
        Just(LayoutExpr::table("Points").order_by(["x"])),
        Just(LayoutExpr::table("Points").vertical([vec!["x", "y"], vec!["tag"]])),
        (2.0f64..60.0).prop_map(|stride| {
            LayoutExpr::table("Points")
                .grid([("x", stride), ("y", stride)])
                .zorder()
        }),
        Just(LayoutExpr::table("Points").partition(
            rodentstore_algebra::expr::PartitionBy::Field("tag".into())
        )),
    ]
}

fn reorg_strategy() -> impl Strategy<Value = ReorgStrategy> {
    prop_oneof![
        Just(ReorgStrategy::Eager),
        Just(ReorgStrategy::NewDataOnly),
        Just(ReorgStrategy::Lazy),
    ]
}

/// Canonical reference: the inserted records, formatted for multiset
/// comparison (floats at 1e-5, tolerating grid/delta quantization).
fn reference(records: &[Vec<Value>]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Float(f) => format!("{f:.5}"),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

fn observed(db: &Database, request: &ScanRequest) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = db
        .scan("Points", request)
        .unwrap()
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Float(f) => format!("{f:.5}"),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every reorganization strategy: scans before an adaptation, during
    /// it (pending rows buffered / not yet absorbed), and after it match the
    /// canonical contents — and ordered scans stay globally ordered even
    /// while pending rows are merged in from the row buffer.
    #[test]
    fn scans_match_canonical_before_during_and_after_adaptation(
        batch1 in proptest::collection::vec(record_strategy(), 1..80),
        batch2 in proptest::collection::vec(record_strategy(), 1..40),
        batch3 in proptest::collection::vec(record_strategy(), 1..40),
        layout_a in layout_strategy(),
        layout_b in layout_strategy(),
        strategy in reorg_strategy(),
    ) {
        let db = Database::with_page_size(512);
        db.create_table(points_schema()).unwrap();
        db.insert("Points", batch1.clone()).unwrap();

        // Before: an initial design, eagerly rendered, plus inserts absorbed
        // into it (incrementally where the shape allows).
        db.apply_layout("Points", layout_a, ReorgStrategy::Eager).unwrap();
        db.insert("Points", batch2.clone()).unwrap();
        let mut all: Vec<Vec<Value>> = batch1;
        all.extend(batch2);
        prop_assert_eq!(observed(&db, &ScanRequest::all()), reference(&all));

        // The adaptation: a new design arrives under the strategy being
        // tested. Reads must stay correct mid-transition.
        db.apply_layout("Points", layout_b, strategy).unwrap();
        prop_assert_eq!(observed(&db, &ScanRequest::all()), reference(&all));

        // During: more rows arrive. Under new-data-only they stay in the row
        // buffer; under lazy they are pending until the next access; under
        // eager they are absorbed at once.
        db.insert("Points", batch3.clone()).unwrap();
        all.extend(batch3);
        if strategy == ReorgStrategy::NewDataOnly {
            prop_assert!(!db.catalog().get("Points").unwrap().pending.is_empty());
        }
        prop_assert_eq!(observed(&db, &ScanRequest::all()), reference(&all));

        // Ordered scan during the transition: the pending-row merge must
        // preserve the requested global order.
        let ordered = db
            .scan("Points", &ScanRequest::all().order(["x"]))
            .unwrap();
        prop_assert_eq!(ordered.len(), all.len());
        prop_assert!(
            ordered.windows(2).all(|w| w[0][0].compare(&w[1][0]) != std::cmp::Ordering::Greater),
            "ordered scan must be globally sorted during the transition"
        );

        // After: force full absorption (another access) and re-check.
        prop_assert_eq!(observed(&db, &ScanRequest::all()), reference(&all));
    }
}
