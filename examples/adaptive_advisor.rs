//! The storage design optimizer (Section 5): give RodentStore a workload and
//! let it recommend — and apply — a layout.
//!
//! ```text
//! cargo run --release --example adaptive_advisor
//! ```

use rodentstore::{AdvisorOptions, CostParams, Database, ScanRequest, Workload};
use rodentstore_optimizer::CostModel;
use rodentstore_workload::{figure2_queries, generate_traces, traces_schema, CartelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cartel = CartelConfig {
        observations: 20_000,
        vehicles: 60,
        ..CartelConfig::default()
    };
    let db = Database::with_page_size(1024);
    db.create_table(traces_schema())?;
    db.insert("Traces", generate_traces(&cartel))?;

    // The workload: spatial range queries over (lat, lon), like the paper's
    // visualization application.
    let conditions = figure2_queries(&cartel.bbox, 77)
        .into_iter()
        .take(8)
        .map(|q| q.to_condition());
    let workload = Workload::from_conditions(vec!["lat".into(), "lon".into()], conditions);

    let options = AdvisorOptions {
        cost_model: CostModel {
            sample_size: 10_000,
            page_size: 1024,
            cost_params: CostParams {
                seek_ms: 1.0,
                transfer_mb_per_s: 2.0,
            },
        },
        anneal_iterations: 10,
        seed: 17,
    };

    let recommendation = db.auto_tune("Traces", &workload, &options)?;
    println!("explored {} candidate designs:", recommendation.explored.len());
    for design in &recommendation.explored {
        println!(
            "  {:>10.2} ms  {:>8} pages   {}",
            design.total_ms, design.total_pages, design.expr
        );
    }
    println!("\nrecommended and applied: {}", recommendation.best.expr);

    // Show that the tuned table answers the workload cheaply.
    let request = ScanRequest::all()
        .fields(["lat", "lon"])
        .predicate(figure2_queries(&cartel.bbox, 77)[0].to_condition());
    println!(
        "sample query now reads {} pages (cost {:.2} ms)",
        db.scan_pages("Traces", &request)?,
        db.scan_cost("Traces", &request)?
    );
    Ok(())
}
