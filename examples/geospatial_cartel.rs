//! The paper's case study (Section 6) as a runnable example: store synthetic
//! CarTel GPS traces under the four layouts N1–N4 and compare the pages read
//! by a spatial query under each.
//!
//! ```text
//! cargo run --release --example geospatial_cartel
//! ```

use rodentstore::{Database, ScanRequest};
use rodentstore_workload::{figure2_queries, generate_traces, traces_schema, CartelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cartel = CartelConfig {
        observations: 50_000,
        vehicles: 100,
        ..CartelConfig::default()
    };
    let records = generate_traces(&cartel);
    let queries = figure2_queries(&cartel.bbox, 1);
    let query = queries[0];

    let layouts = [
        ("N1 raw rows", "Traces".to_string()),
        (
            "N2 drop columns",
            "project[lat,lon](groupby[id](orderby[t](Traces)))".to_string(),
        ),
        (
            "N3 grid",
            "grid[lat,lon;0.006,0.007](project[lat,lon](groupby[id](orderby[t](Traces))))"
                .to_string(),
        ),
        (
            "N4 zorder + delta",
            "delta[lat,lon](zorder(grid[lat,lon;0.006,0.007](project[lat,lon](groupby[id](orderby[t](Traces))))))"
                .to_string(),
        ),
        // The algebra's declarative secondary index: raw rows plus a
        // Hilbert-packed R-tree over (lat, lon) that the spatial query
        // probes instead of streaming the table.
        ("R-tree index", "index[lat,lon](Traces)".to_string()),
    ];

    println!(
        "{} observations; query = lat {:.3}..{:.3}, lon {:.3}..{:.3}",
        cartel.observations, query.min_lat, query.max_lat, query.min_lon, query.max_lon
    );
    for (name, expr) in layouts {
        let db = Database::with_page_size(1024);
        db.create_table(traces_schema())?;
        db.insert("Traces", records.clone())?;
        db.apply_layout_text("Traces", &expr)?;

        let request = ScanRequest::all().predicate(query.to_condition());
        db.pager().stats().reset();
        let rows = db.scan("Traces", &request)?;
        let io = db.io_snapshot();
        println!(
            "{name:<22} {:>7} matching points, {:>6} pages read, {:>5} seeks, cost {:>8.2} ms",
            rows.len(),
            io.pages_read,
            io.seeks,
            db.scan_cost("Traces", &request)?
        );
    }
    println!("\nrun `cargo run --release -p rodentstore_bench --bin figure2` for the full Figure 2 table");
    Ok(())
}
