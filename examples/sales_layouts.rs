//! The introduction's OLAP example: sales records gridded by (year, zipcode)
//! and stored along a Z-order curve, compared with rows and columns for two
//! different query shapes.
//!
//! ```text
//! cargo run --release --example sales_layouts
//! ```

use rodentstore::{Condition, Database, ScanRequest};
use rodentstore_workload::{generate_sales, sales_schema, SalesConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SalesConfig {
        rows: 40_000,
        ..SalesConfig::default()
    };
    let records = generate_sales(&config);

    // Two query shapes: an OLAP slice over (year, zipcode) and a narrow
    // projection that only touches the amount column.
    let slice_query = ScanRequest::all().predicate(
        Condition::range("year", 2004i64, 2005i64)
            .and(Condition::range("zipcode", 2000i64, 2200i64)),
    );
    let amount_only = ScanRequest::all().fields(["amount"]);

    let layouts = [
        ("rows", "Sales".to_string()),
        (
            "columns (DSM)",
            "vertical[zipcode|year|month|day|customerid|productid|amount](Sales)".to_string(),
        ),
        (
            "zorder(grid[year,zipcode])",
            "zorder(grid[year,zipcode;1,50](Sales))".to_string(),
        ),
    ];

    println!("{:<28} {:>18} {:>18}", "layout", "slice pages", "amount-only pages");
    for (name, expr) in layouts {
        let db = Database::with_page_size(1024);
        db.create_table(sales_schema())?;
        db.insert("Sales", records.clone())?;
        db.apply_layout_text("Sales", &expr)?;
        let slice_pages = db.scan_pages("Sales", &slice_query)?;
        let amount_pages = db.scan_pages("Sales", &amount_only)?;
        println!("{name:<28} {slice_pages:>18} {amount_pages:>18}");
    }
    println!("\nThe gridded layout wins on the (year, zipcode) slice; the column layout wins when only one attribute is read — exactly the trade-off the storage algebra lets an administrator express per table.");
    Ok(())
}
