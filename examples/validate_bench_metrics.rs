//! CI gate: every dotted metric name appearing in a `BENCH_*.json` file at
//! the workspace root must be a registered name from
//! [`rodentstore::metric_names`] or carry one of the reserved injected
//! prefixes (`io.`, `calibration.`). Benches report engine numbers straight
//! from the metrics registry, so a name this check rejects means either a
//! typo in a bench or an unannounced change to the stable catalog.
//!
//! ```text
//! cargo run --example validate_bench_metrics
//! ```
//!
//! Exits non-zero listing the offending names; prints a per-file summary
//! otherwise. Files are located relative to the binary's manifest, so the
//! check works from any working directory.

use rodentstore::metric_names;
use std::path::PathBuf;

/// Extracts every JSON object key that looks like a dotted metric name
/// (contains a `.`). The BENCH files are flat, machine-written JSON, so a
/// scan for `"<key>":` is exact — no string *values* in them contain a
/// quote-colon sequence.
fn dotted_keys(json: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if let Some(end) = json[i + 1..].find('"') {
                let key = &json[i + 1..i + 1 + end];
                let after = i + 1 + end + 1;
                let is_key = json[after..].trim_start().starts_with(':');
                if is_key && key.contains('.') {
                    keys.push(key.to_string());
                }
                i = after;
                continue;
            }
        }
        i += 1;
    }
    keys
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);
    let catalog = metric_names();
    let mut checked = 0usize;
    let mut bad: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&root)? {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let json = std::fs::read_to_string(&path)?;
        let keys = dotted_keys(&json);
        for key in &keys {
            let known = catalog.contains(&key.as_str())
                || key.starts_with("io.")
                || key.starts_with("calibration.");
            if !known {
                bad.push(format!("{name}: `{key}`"));
            }
        }
        println!("{name}: {} dotted metric name(s) validated", keys.len());
        checked += 1;
    }
    if checked == 0 {
        return Err("no BENCH_*.json files found — run the benches first".into());
    }
    if !bad.is_empty() {
        eprintln!("metric names not in rodentstore::metric_names() (and not io.*/calibration.*):");
        for b in &bad {
            eprintln!("  {b}");
        }
        return Err(format!("{} unknown metric name(s)", bad.len()).into());
    }
    println!("all BENCH json metric names are catalogued");
    Ok(())
}
