//! Observability tour: the metrics registry, the decision-trace event
//! ring, and `explain` — watching the adaptive engine work from outside.
//!
//! ```text
//! cargo run --example observability
//! ```

use rodentstore::{
    AdaptivePolicy, Condition, Database, DataType, Field, ScanRequest, Schema, Value,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::in_memory();
    db.set_lsm_params(64, 2);
    db.create_table(Schema::new(
        "Readings",
        vec![
            Field::new("sensor", DataType::Int),
            Field::new("t", DataType::Float),
            Field::new("value", DataType::Float),
        ],
    ))?;

    // A write-heavy phase into a levelled tier: absorbs spill runs and
    // trigger (amortized) compaction, all of it journaled.
    db.apply_layout_text("Readings", "lsm[t](Readings)")?;
    for batch in 0..32 {
        let rows: Vec<Vec<Value>> = (0..32)
            .map(|i| {
                let t = (batch * 32 + i) as f64;
                vec![
                    Value::Int(i % 4),
                    Value::Float(t),
                    Value::Float((t * 0.1).sin()),
                ]
            })
            .collect();
        db.insert("Readings", rows)?;
    }

    // EXPLAIN: how would this range query be served, and at what predicted
    // cost? Recent data lives in few runs; the key range prunes the rest.
    let recent = ScanRequest::all().predicate(Condition::range("t", 900.0, 1024.0));
    let explain = db.explain("Readings", &recent)?;
    println!("explain: {}", explain.to_json());

    // Run the query and some point lookups, then let the advisor look at
    // the observed workload (decision goes to the event ring either way).
    for _ in 0..24 {
        db.scan("Readings", &recent)?;
    }
    db.set_adaptive_policy(AdaptivePolicy {
        min_queries: 8,
        ..AdaptivePolicy::default()
    });
    let outcome = db.maybe_adapt("Readings")?;
    println!("adaptation outcome: {outcome:?}");

    // The decision trace: spills, merges, and the adaptation decision with
    // every costed alternative the advisor explored.
    println!("events: {}", db.events_json());

    // The metrics snapshot: stable dotted names, pager I/O under `io.*`,
    // predicted-vs-actual scan calibration under `calibration.<table>.*`.
    let metrics = db.metrics();
    for (name, value) in metrics.counters() {
        println!("{name} = {value}");
    }
    let absorb = metrics.histogram("lsm.absorb_micros").expect("recorded");
    println!(
        "lsm.absorb_micros: count={} p50={}us p99={}us max={}us",
        absorb.count, absorb.p50, absorb.p99, absorb.max
    );
    Ok(())
}
