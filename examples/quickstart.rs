//! Quickstart: create a table, load data, declare a layout with the textual
//! storage algebra, and query it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rodentstore::{Condition, Database, DataType, Field, ScanRequest, Schema, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Database::with_page_size(4096);

    // A simple table of zip codes and addresses (the example of Section 3.3).
    db.create_table(Schema::new(
        "T",
        vec![
            Field::new("Zip", DataType::Int),
            Field::new("Area", DataType::Int),
            Field::new("Addr", DataType::String),
        ],
    ))?;
    db.insert(
        "T",
        vec![
            vec![Value::Int(2139), Value::Int(617), Value::Str("32 Vassar St".into())],
            vec![Value::Int(2142), Value::Int(617), Value::Str("1 Broadway".into())],
            vec![Value::Int(10001), Value::Int(212), Value::Str("350 5th Ave".into())],
            vec![Value::Int(2115), Value::Int(617), Value::Str("4 Jersey St".into())],
        ],
    )?;

    // Declare a column-major representation, then a fold over area codes —
    // both straight from the paper's examples — and query after each.
    for layout in [
        "columns(T)",
        "fold[Area|Zip,Addr](orderby[Zip](T))",
    ] {
        db.apply_layout_text("T", layout)?;
        let rows = db.scan(
            "T",
            &ScanRequest::all()
                .fields(["Zip", "Addr"])
                .predicate(Condition::eq("Area", 617i64)),
        )?;
        println!("layout = {layout}");
        for row in &rows {
            println!("  zip {} -> {}", row[0], row[1]);
        }
        println!(
            "  estimated scan cost: {:.3} ms, pages: {}",
            db.scan_cost("T", &ScanRequest::all())?,
            db.scan_pages("T", &ScanRequest::all())?
        );
    }
    Ok(())
}
