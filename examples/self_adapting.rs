//! The closed adaptivity loop, end to end: no `Workload` is ever built and
//! `advise`/`apply_layout` are never called — the database watches its own
//! traffic, consults the design advisor every few queries, and re-declares
//! the layout when the predicted win clears the hysteresis threshold.
//!
//! ```text
//! cargo run --release --example self_adapting
//! ```

use rodentstore::{
    AdaptivePolicy, AdvisorOptions, CostParams, Database, ReorgStrategy, ScanRequest,
};
use rodentstore_optimizer::CostModel;
use rodentstore_workload::{figure2_queries, generate_traces, traces_schema, CartelConfig};

fn current_layout(db: &Database) -> String {
    db.catalog()
        .get("Traces")
        .ok()
        .and_then(|e| e.layout_expr.as_ref().map(|x| x.to_string()))
        .unwrap_or_else(|| "<canonical rows>".to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cartel = CartelConfig {
        observations: 20_000,
        vehicles: 60,
        ..CartelConfig::default()
    };
    let db = Database::with_page_size(1024);
    db.create_table(traces_schema())?;
    db.insert("Traces", generate_traces(&cartel))?;

    // Switch the loop on: check every 16 queries, adapt only on a ≥10%
    // predicted improvement, transition eagerly.
    db.set_adaptive_policy(AdaptivePolicy {
        auto: true,
        check_every: 16,
        min_queries: 16,
        hysteresis: 0.10,
        strategy: ReorgStrategy::Eager,
        advisor: AdvisorOptions {
            cost_model: CostModel {
                sample_size: 5_000,
                page_size: 1024,
                cost_params: CostParams {
                    seek_ms: 1.0,
                    transfer_mb_per_s: 2.0,
                },
            },
            anneal_iterations: 6,
            seed: 17,
        },
    });
    println!("start:    {}", current_layout(&db));

    // Phase 1: a spatial dashboard fires range queries over (lat, lon).
    let boxes = figure2_queries(&cartel.bbox, 99);
    for q in boxes.iter().cycle().take(64) {
        db.scan(
            "Traces",
            &ScanRequest::all()
                .fields(["lat", "lon"])
                .predicate(q.to_condition()),
        )?;
    }
    let stats = db.layout_stats("Traces")?;
    println!(
        "phase 1:  {} ({} adaptation(s) so far)",
        current_layout(&db),
        stats.adaptations
    );

    // Phase 2: traffic shifts to a time-series consumer reading one column.
    for _ in 0..192 {
        db.scan("Traces", &ScanRequest::all().fields(["t"]))?;
    }
    let stats = db.layout_stats("Traces")?;
    println!(
        "phase 2:  {} ({} adaptation(s) total)",
        current_layout(&db),
        stats.adaptations
    );

    // The profile that drove the loop.
    println!("\nlive workload profile (heaviest templates first):");
    for t in db.workload_profile("Traces")?.templates().iter().take(4) {
        println!("  weight {:>7.2}  hits {:>4}  {}", t.weight, t.hits, t.fingerprint);
    }
    println!(
        "\nrender counters: {} full render(s), {} incremental append(s), {} adaptation(s)",
        stats.full_renders, stats.incremental_appends, stats.adaptations
    );

    // Fresh inserts are absorbed into the current layout — incrementally for
    // append-friendly shapes (rows, grids, PAX), via a rebuild for shapes
    // whose invariants need it (vertical partitions, fold, prejoin).
    let before = db.layout_stats("Traces")?;
    db.insert(
        "Traces",
        generate_traces(&CartelConfig {
            observations: 500,
            vehicles: 10,
            seed: 0xBEEF,
            ..CartelConfig::default()
        }),
    )?;
    let after = db.layout_stats("Traces")?;
    println!(
        "insert of 500 rows: full_renders {} → {}, incremental_appends {} → {}",
        before.full_renders, after.full_renders,
        before.incremental_appends, after.incremental_appends
    );
    Ok(())
}
