//! Zero-dependency observability substrate for the RodentStore engine.
//!
//! Two pieces, both designed so recording on a hot path costs only relaxed
//! atomic operations:
//!
//! * a [`Registry`] of named instruments — monotonic [`Counter`]s and
//!   log-bucketed latency [`Histogram`]s — whose dotted names
//!   (`scan.pages`, `wal.fsync_micros`, …) form a stable contract between
//!   the live engine, the benches, and external consumers (see
//!   `docs/OBSERVABILITY.md` at the workspace root). A point-in-time
//!   [`MetricsSnapshot`] is cheap to take and serializes itself as JSON
//!   with no external crates; and
//! * a bounded [`EventRing`] of structured [`Event`]s — adaptation
//!   decisions with their costed alternatives, lsm spills and merges,
//!   checkpoint phase timings, WAL truncations, epoch reclamation batches
//!   — that callers drain and dump as JSON.
//!
//! The crate sits at the bottom of the workspace graph (it depends on
//! nothing, not even the vendored shims) so every layer — storage, layout,
//! core — can feed it without cycles.

mod events;
mod json;
mod metrics;

pub use events::{CostedAlternative, Event, EventKind, EventRing, DEFAULT_EVENT_CAPACITY};
pub use json::JsonWriter;
pub use metrics::{Counter, Histogram, HistogramSummary, MetricsSnapshot, Registry};
