//! The lock-free metrics registry: named counters and log-bucketed
//! histograms.
//!
//! Recording is wait-free — a counter bump is one relaxed `fetch_add`, a
//! histogram sample is two relaxed `fetch_add`s plus a `fetch_max` — so
//! instruments can sit on the engine's read hot path. The registry's only
//! lock guards *registration* (name → instrument lookup); callers hold the
//! returned `Arc` handles and never touch the map again.

use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter. Cloning the `Arc` handle shares the value.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter (relaxed).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter (relaxed).
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Log-bucketed histograms: 4 sub-buckets per octave, so every bucket's
/// width is at most 25% of its lower bound and the reported percentiles
/// carry bounded relative error. 256 buckets cover the full `u64` range.
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS;
const BUCKETS: usize = 256;

/// Maps a sample to its bucket. Values below `SUBS` get exact buckets;
/// larger values land in `(octave, sub)` buckets that tile the range
/// contiguously (value 4 lands in bucket 4, 8 in bucket 8, …).
fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros();
    let sub = ((v >> (octave - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    (((octave - SUB_BITS + 1) as usize) * SUBS + sub).min(BUCKETS - 1)
}

/// The largest value that maps to bucket `idx` (the bound percentiles
/// report, so estimates err toward *over*-stating latency).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let octave = (idx / SUBS) as u32 + SUB_BITS - 1;
    let sub = (idx % SUBS) as u128;
    let step = 1u128 << (octave - SUB_BITS);
    // The top bucket's bound exceeds u64 — compute wide and clamp.
    (((1u128 << octave) + (sub + 1) * step - 1).min(u64::MAX as u128)) as u64
}

/// A lock-free latency/size histogram with logarithmic buckets.
///
/// Samples are `u64`s (the engine records microseconds or page counts).
/// Percentile estimates return the upper bound of the containing bucket —
/// within 25% of the true value by construction.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Histogram {
    /// Records one sample (relaxed atomics only).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (mean = sum / count).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Estimated `p`-th percentile (`p` in `0.0..=1.0`): the upper bound of
    /// the bucket containing the target rank. Returns 0 with no samples.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(idx).min(self.max());
            }
        }
        self.max()
    }

    /// A point-in-time summary (count, sum, max, p50/p95/p99).
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }
}

/// A point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value (0.0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Serializes the summary as a JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.u64_field("count", self.count)
            .u64_field("sum", self.sum)
            .u64_field("max", self.max)
            .u64_field("p50", self.p50)
            .u64_field("p95", self.p95)
            .u64_field("p99", self.p99);
        w.finish()
    }
}

/// The instrument registry: dotted names → shared counter/histogram
/// handles.
///
/// Lookup-or-create takes a short mutex; the engine does it once per
/// instrument at construction time and keeps the `Arc` handles, so no
/// recording path ever contends here.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// The histogram registered under `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::default())),
        )
    }

    /// A consistent-enough point-in-time copy of every instrument (each
    /// value is read atomically; the set is whatever was registered at call
    /// time).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, v)| (k.clone(), v.get())).collect()
        };
        let histograms = {
            let map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            map.iter().map(|(k, v)| (k.clone(), v.summary())).collect()
        };
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

/// A point-in-time copy of every registered instrument, plus any values the
/// caller injects (the engine folds in pager I/O statistics and per-table
/// calibration under reserved name prefixes).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// The value of a counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The summary of a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Every counter, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Every histogram summary, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &HistogramSummary)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Injects (or overwrites) a counter value — how the engine folds
    /// externally owned statistics (pager I/O counters, calibration totals)
    /// into one snapshot.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Serializes the snapshot as one JSON object:
    /// `{"counters": {...}, "histograms": {name: {count, …}}}`.
    pub fn to_json(&self) -> String {
        let mut counters = JsonWriter::object();
        for (name, value) in &self.counters {
            counters.u64_field(name, *value);
        }
        let mut histograms = JsonWriter::object();
        for (name, summary) in &self.histograms {
            histograms.raw_field(name, &summary.to_json());
        }
        let mut w = JsonWriter::object();
        w.raw_field("counters", &counters.finish())
            .raw_field("histograms", &histograms.finish());
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_contiguously_and_monotonically() {
        // Every value maps to a bucket whose upper bound is >= the value,
        // and bucket indices never decrease as values grow.
        let mut last_idx = 0;
        for v in (0..4096u64).chain([1 << 20, 1 << 40, u64::MAX / 2, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(idx >= last_idx || v < 4096, "non-monotone at {v}");
            assert!(bucket_upper(idx) >= v, "bucket {idx} upper < {v}");
            if idx > 0 {
                assert!(
                    bucket_upper(idx - 1) < v,
                    "value {v} should not fit bucket {}",
                    idx - 1
                );
            }
            last_idx = idx;
        }
    }

    #[test]
    fn percentiles_carry_bounded_relative_error() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!((500..=625).contains(&p50), "p50 {p50}");
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.max(), 1000);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0);
        let s = h.summary();
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let r = Registry::new();
        let a = r.counter("scan.pages");
        let b = r.counter("scan.pages");
        a.add(3);
        b.incr();
        assert_eq!(r.counter("scan.pages").get(), 4);
        r.histogram("scan.micros").record(10);
        let snap = r.snapshot();
        assert_eq!(snap.counter("scan.pages"), Some(4));
        assert_eq!(snap.histogram("scan.micros").unwrap().count, 1);
    }

    #[test]
    fn snapshot_injection_and_json() {
        let r = Registry::new();
        r.counter("scan.rows").add(7);
        r.histogram("wal.fsync_micros").record(120);
        let mut snap = r.snapshot();
        snap.set_counter("io.pages_read", 55);
        let json = snap.to_json();
        assert!(json.contains("\"scan.rows\":7"));
        assert!(json.contains("\"io.pages_read\":55"));
        assert!(json.contains("\"wal.fsync_micros\":{\"count\":1"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let r = Arc::new(Registry::new());
        let c = r.counter("t");
        let h = r.histogram("h");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.incr();
                        h.record(i % 128);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
    }
}
