//! Hand-rolled JSON emission (the workspace is hermetic — no serde).
//!
//! [`JsonWriter`] builds one object at a time; values are escaped per RFC
//! 8259. Floats are emitted with enough precision to round-trip the
//! cost-model numbers the engine produces; non-finite floats become
//! `null` (JSON has no NaN/Infinity).

/// Escapes `s` into `out` as the *contents* of a JSON string literal
/// (quotes not included).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// An append-only JSON object/array builder. Keys arrive in call order;
/// the caller is responsible for not repeating them.
#[derive(Default)]
pub struct JsonWriter {
    buf: String,
    needs_comma: bool,
}

impl JsonWriter {
    /// A writer positioned inside a fresh object (`{` already emitted).
    pub fn object() -> JsonWriter {
        JsonWriter {
            buf: String::from("{"),
            needs_comma: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.needs_comma {
            self.buf.push(',');
        }
        self.needs_comma = true;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str_field(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field (`null` when not finite).
    pub fn f64_field(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format!("{value}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool_field(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-serialized JSON (an object or
    /// array built elsewhere). The caller guarantees `json` is valid.
    pub fn raw_field(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the serialized text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serializes a sequence of already-serialized JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_builds_objects() {
        let mut w = JsonWriter::object();
        w.str_field("name", "a\"b\\c\n")
            .u64_field("n", 42)
            .f64_field("x", 1.5)
            .f64_field("bad", f64::NAN)
            .bool_field("ok", true)
            .raw_field("inner", "[1,2]");
        let json = w.finish();
        assert_eq!(
            json,
            r#"{"name":"a\"b\\c\n","n":42,"x":1.5,"bad":null,"ok":true,"inner":[1,2]}"#
        );
    }

    #[test]
    fn arrays_join_items() {
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array([]), "[]");
    }
}
