//! The bounded event ring: structured engine decisions, drainable as JSON.
//!
//! Events are *rare* relative to queries (an adaptation decision, a spill,
//! a checkpoint — not a page read), so the ring is a plain mutex-guarded
//! `VecDeque`: pushing never blocks readers of anything else, and the
//! bound guarantees a misbehaving producer costs O(capacity) memory. When
//! the ring is full the *oldest* event is dropped and counted, so a drain
//! always sees the freshest history plus an honest gap counter.

use crate::json::{array, JsonWriter};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Events kept before the oldest is dropped.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// One explored design alternative from an adaptation decision, with its
/// predicted workload cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CostedAlternative {
    /// The layout expression, rendered in the algebra's textual syntax.
    pub expr: String,
    /// Predicted total workload cost in milliseconds.
    pub total_ms: f64,
}

/// What happened. Every variant carries enough context to reconstruct the
/// decision without the engine's internal state.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// One run of the adaptation check: the advisor costed alternatives
    /// against the live workload profile and either re-declared the layout
    /// or kept the current one.
    AdaptDecision {
        /// Table checked.
        table: String,
        /// `"adapted"`, `"kept_current"`, or `"insufficient_data"`.
        outcome: String,
        /// The layout declared when the check started.
        current_expr: String,
        /// The advisor's winning expression (equal to `current_expr` when
        /// nothing better was found).
        best_expr: String,
        /// Predicted cost of the current layout over the profiled workload.
        current_ms: f64,
        /// Predicted cost of the winning expression.
        best_ms: f64,
        /// The hysteresis threshold the improvement had to clear.
        hysteresis: f64,
        /// Explored designs with their predicted costs (capped; best first).
        alternatives: Vec<CostedAlternative>,
    },
    /// The lsm memtable spilled a sealed level-0 run.
    LsmSpill {
        /// Table whose tier spilled.
        table: String,
        /// Level the run was sealed on (0 for spills).
        level: u32,
        /// Rows in the sealed run.
        rows: u64,
        /// Pages the run occupies.
        pages: u64,
    },
    /// Compaction merged one level's runs into a run one level deeper.
    LsmMerge {
        /// Table whose tier compacted.
        table: String,
        /// The level that was merged (the new run lives on `level + 1`).
        level: u32,
        /// Runs merged away.
        runs_merged: u64,
        /// Rows in the merged run.
        rows: u64,
        /// Pages the new run occupies.
        pages_written: u64,
        /// Pages vacated (parked for the checkpoint quarantine).
        pages_freed: u64,
    },
    /// A checkpoint completed, with per-phase wall-clock timings.
    Checkpoint {
        /// Total checkpoint duration in microseconds.
        micros: u64,
        /// Pages returned to the free list by this checkpoint.
        pages_freed: u64,
        /// `(phase name, microseconds)` in execution order.
        phases: Vec<(String, u64)>,
    },
    /// The WAL dropped records up to the checkpoint's cut.
    WalTruncate {
        /// Log body size before the truncation, in bytes.
        bytes_before: u64,
        /// Log body size after, in bytes.
        bytes_after: u64,
    },
    /// Epoch-based reclamation freed a batch of retired pages.
    EpochReclaim {
        /// Retired renderings whose pages were reclaimed.
        accesses: u64,
        /// Pages reclaimed.
        pages: u64,
        /// Bytes those pages represent.
        bytes: u64,
    },
}

impl EventKind {
    /// Stable machine-readable discriminant (the JSON `"event"` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::AdaptDecision { .. } => "adapt_decision",
            EventKind::LsmSpill { .. } => "lsm_spill",
            EventKind::LsmMerge { .. } => "lsm_merge",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::WalTruncate { .. } => "wal_truncate",
            EventKind::EpochReclaim { .. } => "epoch_reclaim",
        }
    }
}

/// One drained event: a monotone sequence number plus the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position in the ring's history (monotone across drops, so gaps are
    /// visible).
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

impl Event {
    /// Serializes the event as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.u64_field("seq", self.seq)
            .str_field("event", self.kind.name());
        match &self.kind {
            EventKind::AdaptDecision {
                table,
                outcome,
                current_expr,
                best_expr,
                current_ms,
                best_ms,
                hysteresis,
                alternatives,
            } => {
                let alts = array(alternatives.iter().map(|a| {
                    let mut alt = JsonWriter::object();
                    alt.str_field("expr", &a.expr).f64_field("total_ms", a.total_ms);
                    alt.finish()
                }));
                w.str_field("table", table)
                    .str_field("outcome", outcome)
                    .str_field("current_expr", current_expr)
                    .str_field("best_expr", best_expr)
                    .f64_field("current_ms", *current_ms)
                    .f64_field("best_ms", *best_ms)
                    .f64_field("hysteresis", *hysteresis)
                    .raw_field("alternatives", &alts);
            }
            EventKind::LsmSpill {
                table,
                level,
                rows,
                pages,
            } => {
                w.str_field("table", table)
                    .u64_field("level", u64::from(*level))
                    .u64_field("rows", *rows)
                    .u64_field("pages", *pages);
            }
            EventKind::LsmMerge {
                table,
                level,
                runs_merged,
                rows,
                pages_written,
                pages_freed,
            } => {
                w.str_field("table", table)
                    .u64_field("level", u64::from(*level))
                    .u64_field("runs_merged", *runs_merged)
                    .u64_field("rows", *rows)
                    .u64_field("pages_written", *pages_written)
                    .u64_field("pages_freed", *pages_freed);
            }
            EventKind::Checkpoint {
                micros,
                pages_freed,
                phases,
            } => {
                let phases = array(phases.iter().map(|(name, us)| {
                    let mut p = JsonWriter::object();
                    p.str_field("phase", name).u64_field("micros", *us);
                    p.finish()
                }));
                w.u64_field("micros", *micros)
                    .u64_field("pages_freed", *pages_freed)
                    .raw_field("phases", &phases);
            }
            EventKind::WalTruncate {
                bytes_before,
                bytes_after,
            } => {
                w.u64_field("bytes_before", *bytes_before)
                    .u64_field("bytes_after", *bytes_after);
            }
            EventKind::EpochReclaim {
                accesses,
                pages,
                bytes,
            } => {
                w.u64_field("accesses", *accesses)
                    .u64_field("pages", *pages)
                    .u64_field("bytes", *bytes);
            }
        }
        w.finish()
    }
}

struct RingInner {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, drain-oriented ring of [`Event`]s.
pub struct EventRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

impl Default for EventRing {
    fn default() -> EventRing {
        EventRing::with_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventRing {
    /// A ring keeping at most `capacity` undrained events.
    pub fn with_capacity(capacity: usize) -> EventRing {
        EventRing {
            inner: Mutex::new(RingInner {
                events: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Appends an event, dropping (and counting) the oldest if full.
    pub fn push(&self, kind: EventKind) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() >= self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(Event { seq, kind });
    }

    /// Takes every buffered event (oldest first), leaving the ring empty.
    pub fn drain(&self) -> Vec<Event> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.events.drain(..).collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .events
            .len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the ring was full (monotone).
    pub fn dropped(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .dropped
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spill(n: u64) -> EventKind {
        EventKind::LsmSpill {
            table: "T".into(),
            level: 0,
            rows: n,
            pages: 1,
        }
    }

    #[test]
    fn drains_in_order_with_monotone_seqs() {
        let ring = EventRing::with_capacity(8);
        for i in 0..5 {
            ring.push(spill(i));
        }
        let events = ring.drain();
        assert_eq!(events.len(), 5);
        assert!(events.windows(2).all(|w| w[1].seq == w[0].seq + 1));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let ring = EventRing::with_capacity(3);
        for i in 0..7 {
            ring.push(spill(i));
        }
        assert_eq!(ring.dropped(), 4);
        let events = ring.drain();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 4, "oldest surviving event");
    }

    #[test]
    fn event_json_is_self_describing() {
        let ring = EventRing::default();
        ring.push(EventKind::AdaptDecision {
            table: "Traces".into(),
            outcome: "adapted".into(),
            current_expr: "Traces".into(),
            best_expr: "vertical[lat|lon](Traces)".into(),
            current_ms: 12.5,
            best_ms: 3.25,
            hysteresis: 0.1,
            alternatives: vec![CostedAlternative {
                expr: "column(Traces)".into(),
                total_ms: 5.0,
            }],
        });
        let json = ring.drain()[0].to_json();
        assert!(json.contains("\"event\":\"adapt_decision\""));
        assert!(json.contains("\"best_expr\":\"vertical[lat|lon](Traces)\""));
        assert!(json.contains("\"alternatives\":[{\"expr\":\"column(Traces)\""));
    }
}
