//! The access-method API over a physical layout.

use crate::cursor::Cursor;
use crate::{ExecError, Result};
use rodentstore_algebra::comprehension::Condition;
use rodentstore_algebra::expr::{SortKey, SortOrder};
use rodentstore_algebra::value::Record;
use rodentstore_layout::PhysicalLayout;
use std::cmp::Ordering;

/// Parameters of the simple disk model used to convert pages and seeks into
/// milliseconds, following Section 5 of the paper ("count bytes of I/O as
/// well as disk seeks", ignoring CPU costs).
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Cost of one random seek, in milliseconds.
    pub seek_ms: f64,
    /// Sequential transfer bandwidth, in MB/s.
    pub transfer_mb_per_s: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seek_ms: 8.0,
            transfer_mb_per_s: 120.0,
        }
    }
}

/// A scan request: optional projection, predicate, and requested order.
#[derive(Debug, Clone, Default)]
pub struct ScanRequest {
    /// Fields to return (`None` = all fields).
    pub fields: Option<Vec<String>>,
    /// Filter predicate.
    pub predicate: Option<Condition>,
    /// Requested output order.
    pub order: Option<Vec<SortKey>>,
}

impl ScanRequest {
    /// A full-table scan.
    pub fn all() -> ScanRequest {
        ScanRequest::default()
    }

    /// Restricts the scan to the given fields.
    pub fn fields<I, S>(mut self, fields: I) -> ScanRequest
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.fields = Some(fields.into_iter().map(Into::into).collect());
        self
    }

    /// Adds a predicate.
    pub fn predicate(mut self, predicate: Condition) -> ScanRequest {
        self.predicate = Some(predicate);
        self
    }

    /// Requests an output order.
    pub fn order<I, S>(mut self, fields: I) -> ScanRequest
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.order = Some(fields.into_iter().map(|f| SortKey::asc(f)).collect());
        self
    }
}

/// The access methods exposed over one stored table (one physical layout).
pub struct AccessMethods {
    layout: PhysicalLayout,
    cost: CostParams,
}

impl std::fmt::Debug for AccessMethods {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessMethods")
            .field("layout", &self.layout)
            .finish()
    }
}

impl AccessMethods {
    /// Wraps a rendered layout with the default cost parameters.
    pub fn new(layout: PhysicalLayout) -> AccessMethods {
        AccessMethods {
            layout,
            cost: CostParams::default(),
        }
    }

    /// Wraps a rendered layout with explicit cost parameters.
    pub fn with_cost_params(layout: PhysicalLayout, cost: CostParams) -> AccessMethods {
        AccessMethods { layout, cost }
    }

    /// The underlying physical layout.
    pub fn layout(&self) -> &PhysicalLayout {
        &self.layout
    }

    /// Mutable access to the underlying layout (recovery and maintenance
    /// paths, e.g. reattaching or rebuilding a declared index).
    pub fn layout_mut(&mut self) -> &mut PhysicalLayout {
        &mut self.layout
    }

    /// Consumes the access methods, returning the layout.
    pub fn into_layout(self) -> PhysicalLayout {
        self.layout
    }

    fn validate_fields(&self, fields: &Option<Vec<String>>) -> Result<()> {
        if let Some(fields) = fields {
            for f in fields {
                self.layout
                    .schema
                    .index_of(f)
                    .map_err(|_| ExecError::InvalidRequest(format!("unknown field `{f}`")))?;
            }
        }
        Ok(())
    }

    /// `scan(table, [fieldlist, predicate, order])`: scans the relation with
    /// optional projection, predicate, and sort order. If the layout is
    /// already efficient for the requested order (it appears in
    /// [`AccessMethods::order_list`]), no re-sort is performed; otherwise the
    /// result is sorted before being returned.
    pub fn scan(&self, request: &ScanRequest) -> Result<Vec<Record>> {
        self.validate_fields(&request.fields)?;
        let mut rows = self
            .layout
            .scan(request.fields.as_deref(), request.predicate.as_ref())?;

        if let Some(order) = &request.order {
            if !self.order_is_native(order) {
                let out_fields: Vec<String> = request
                    .fields
                    .clone()
                    .unwrap_or_else(|| self.layout.schema.field_names());
                let mut key_positions = Vec::with_capacity(order.len());
                for key in order {
                    let pos = out_fields.iter().position(|f| *f == key.field).ok_or_else(|| {
                        ExecError::InvalidRequest(format!(
                            "order key `{}` must be part of the projected fields",
                            key.field
                        ))
                    })?;
                    key_positions.push((pos, key.order));
                }
                rows.sort_by(|a, b| {
                    for (pos, dir) in &key_positions {
                        let ord = a[*pos].compare(&b[*pos]);
                        let ord = match dir {
                            SortOrder::Asc => ord,
                            SortOrder::Desc => ord.reverse(),
                        };
                        if ord != Ordering::Equal {
                            return ord;
                        }
                    }
                    Ordering::Equal
                });
            }
        }
        Ok(rows)
    }

    /// Opens a cursor over a scan (the `next(table, [order])` access method).
    ///
    /// When the layout can deliver the requested order natively (or no order
    /// was requested), the cursor *streams*: tuples are decoded from pages on
    /// demand and the result set is never materialized. A non-native sort
    /// forces materialization, and vertically partitioned layouts buffer
    /// their stitched rows up front (the cursor then knows its length).
    pub fn open_cursor(&self, request: &ScanRequest) -> Result<Cursor<'_>> {
        self.validate_fields(&request.fields)?;
        if let Some(order) = &request.order {
            if !self.order_is_native(order) {
                return Ok(Cursor::new(self.scan(request)?));
            }
        }
        let iter = self
            .layout
            .scan_iter(request.fields.as_deref(), request.predicate.as_ref())?;
        Ok(Cursor::streaming(iter))
    }

    /// `scanAggregate(table, spec, [predicate])`: folds the matching rows
    /// into fixed-width buckets (`count/sum/min/max` grouped by
    /// `floor(bucket_field / bucket_width)`) without materializing a result
    /// set. Reads exactly the pages a projected scan of the bucket and value
    /// fields would read; buckets come out sorted ascending by their lower
    /// edge, so no re-sort is ever needed.
    pub fn scan_aggregate(
        &self,
        spec: &rodentstore_layout::WindowedAggregate,
        predicate: Option<&Condition>,
    ) -> Result<rodentstore_layout::WindowAccumulator> {
        for f in [&spec.bucket_field, &spec.value_field] {
            self.layout
                .schema
                .index_of(f)
                .map_err(|_| ExecError::InvalidRequest(format!("unknown field `{f}`")))?;
        }
        Ok(self.layout.scan_aggregate(spec, predicate)?)
    }

    /// `getElement(table, [fieldlist,] index)`: the tuple at `index` in the
    /// layout's storage order.
    pub fn get_element(&self, index: usize, fields: Option<&[String]>) -> Result<Record> {
        Ok(self.layout.get_element(index, fields)?)
    }

    /// Appends freshly inserted canonical rows (supplied by `provider` under
    /// the base table's name) into the rendered layout without re-rendering
    /// it. Returns [`rodentstore_layout::AppendOutcome::NeedsRebuild`] when
    /// the layout's shape (fold, vertical partition, prejoin, …) cannot absorb rows
    /// incrementally; the caller then falls back to a full render.
    pub fn append_rows<P: rodentstore_layout::TableProvider + ?Sized>(
        &mut self,
        provider: &P,
    ) -> Result<rodentstore_layout::AppendOutcome> {
        Ok(rodentstore_layout::append_records(&mut self.layout, provider)?)
    }

    /// Estimated cost of a scan, in milliseconds.
    pub fn scan_cost(&self, request: &ScanRequest) -> Result<f64> {
        self.validate_fields(&request.fields)?;
        let pages = self
            .layout
            .estimate_scan_pages(request.fields.as_deref(), request.predicate.as_ref());
        let page_size = self.layout.pager().page_size();
        // Objects are written to disk in storage order, so objects that are
        // adjacent in that order are physically contiguous. Charge one seek
        // per contiguous *run* of selected objects plus sequential transfer —
        // this is what rewards z-ordered cell layouts, whose selected cells
        // cluster into few runs.
        let selected = self
            .layout
            .objects_to_read(request.fields.as_deref(), request.predicate.as_ref());
        let mut runs = 0usize;
        for (i, &obj) in selected.iter().enumerate() {
            if i == 0 || obj != selected[i - 1] + 1 {
                runs += 1;
            }
        }
        let bytes = pages as f64 * page_size as f64;
        let transfer_ms = bytes / (self.cost.transfer_mb_per_s * 1024.0 * 1024.0) * 1000.0;
        let mut cost = runs as f64 * self.cost.seek_ms + transfer_ms;
        // A requested order the layout cannot deliver natively implies an
        // extra in-memory sort; charge a CPU-ish surcharge proportional to
        // the data volume so the optimizer prefers native orders.
        if let Some(order) = &request.order {
            if !self.order_is_native(order) {
                cost += transfer_ms * 0.2;
            }
        }
        Ok(cost)
    }

    /// Estimated number of pages a scan would read.
    pub fn scan_pages(&self, request: &ScanRequest) -> u64 {
        self.layout
            .estimate_scan_pages(request.fields.as_deref(), request.predicate.as_ref())
    }

    /// Estimated cost of a `getElement` call, in milliseconds.
    pub fn get_element_cost(&self, _index: usize) -> f64 {
        // Positional access touches one object; approximate with one seek
        // plus one page transfer.
        let page_size = self.layout.pager().page_size() as f64;
        self.cost.seek_ms + page_size / (self.cost.transfer_mb_per_s * 1024.0 * 1024.0) * 1000.0
    }

    /// `order_list(table)`: sort orders the current storage organization is
    /// efficient for.
    pub fn order_list(&self) -> Vec<Vec<SortKey>> {
        self.layout.order_list()
    }

    fn order_is_native(&self, order: &[SortKey]) -> bool {
        self.order_list().iter().any(|native| {
            native.len() >= order.len()
                && native
                    .iter()
                    .zip(order.iter())
                    .all(|(a, b)| a.field == b.field && a.order == b.order)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::schema::{Field, Schema};
    use rodentstore_algebra::types::DataType;
    use rodentstore_algebra::value::Value;
    use rodentstore_algebra::LayoutExpr;
    use rodentstore_layout::{render, MemTableProvider, RenderOptions};
    use rodentstore_storage::pager::Pager;
    use std::sync::Arc;

    fn provider() -> MemTableProvider {
        let schema = Schema::new(
            "Readings",
            vec![
                Field::new("t", DataType::Int),
                Field::new("sensor", DataType::String),
                Field::new("value", DataType::Float),
            ],
        );
        let records = (0..300)
            .map(|i| {
                vec![
                    Value::Int(299 - i),
                    Value::Str(format!("s{}", i % 3)),
                    Value::Float(i as f64 * 0.5),
                ]
            })
            .collect();
        MemTableProvider::single(schema, records)
    }

    fn methods(expr: LayoutExpr) -> AccessMethods {
        let pager = Arc::new(Pager::in_memory_with_page_size(1024));
        let layout = render(&expr, &provider(), pager, RenderOptions::default()).unwrap();
        AccessMethods::new(layout)
    }

    #[test]
    fn scan_with_projection_predicate_and_sort() {
        let am = methods(LayoutExpr::table("Readings"));
        let request = ScanRequest::all()
            .fields(["t", "sensor"])
            .predicate(Condition::eq("sensor", "s1"))
            .order(["t"]);
        let rows = am.scan(&request).unwrap();
        assert_eq!(rows.len(), 100);
        assert!(rows.iter().all(|r| r[1].as_str() == Some("s1")));
        assert!(rows.windows(2).all(|w| w[0][0] <= w[1][0]));
    }

    #[test]
    fn native_order_is_not_resorted_but_is_usable() {
        let am = methods(LayoutExpr::table("Readings").order_by(["t"]));
        assert_eq!(am.order_list().len(), 1);
        let rows = am.scan(&ScanRequest::all().order(["t"])).unwrap();
        assert!(rows.windows(2).all(|w| w[0][0] <= w[1][0]));
    }

    #[test]
    fn cursor_iterates_in_order() {
        let am = methods(LayoutExpr::table("Readings"));
        let mut cursor = am.open_cursor(&ScanRequest::all().fields(["t"])).unwrap();
        let mut count = 0;
        while cursor.next().is_some() {
            count += 1;
        }
        assert_eq!(count, 300);
        assert!(cursor.next().is_none());
        assert!(cursor.take_error().is_none());
    }

    #[test]
    fn native_order_cursors_stream_without_materializing() {
        let am = methods(LayoutExpr::table("Readings"));
        // No order requested: streaming.
        let mut cursor = am.open_cursor(&ScanRequest::all()).unwrap();
        assert!(cursor.is_streaming());
        assert_eq!(cursor.len(), None, "streaming cursors have unknown length");
        assert_eq!(cursor.try_next().unwrap().unwrap().len(), 3);
        cursor.rewind().unwrap();
        assert_eq!(cursor.collect_rows().unwrap().len(), 300);

        // A non-native order forces the one remaining materialization point.
        let sorted = am
            .open_cursor(&ScanRequest::all().fields(["t"]).order(["t"]))
            .unwrap();
        assert!(!sorted.is_streaming());
        assert_eq!(sorted.len(), Some(300));
        assert_eq!(sorted.is_empty(), Some(false));

        // Streaming respects projection and predicates.
        let request = ScanRequest::all()
            .fields(["t", "sensor"])
            .predicate(Condition::eq("sensor", "s1"));
        let mut filtered = am.open_cursor(&request).unwrap();
        assert!(filtered.is_streaming());
        let rows = filtered.collect_rows().unwrap();
        assert_eq!(rows, am.scan(&request).unwrap());

        // Vertically partitioned layouts buffer their stitched rows up
        // front; the cursor reports the known length instead of pretending
        // to stream.
        let vertical = methods(
            LayoutExpr::table("Readings").vertical([vec!["t"], vec!["sensor", "value"]]),
        );
        let v = vertical.open_cursor(&ScanRequest::all()).unwrap();
        assert!(!v.is_streaming());
        assert_eq!(v.len(), Some(300));
        assert_eq!(v.remaining(), Some(300));
    }

    #[test]
    fn get_element_matches_scan() {
        let am = methods(LayoutExpr::table("Readings"));
        let rows = am.scan(&ScanRequest::all()).unwrap();
        assert_eq!(am.get_element(7, None).unwrap(), rows[7]);
        assert!(am.get_element(10_000, None).is_err());
    }

    #[test]
    fn scan_cost_reflects_projection_savings_on_column_layouts() {
        let am = methods(LayoutExpr::table("Readings").columns(["t", "sensor", "value"]));
        let full = am.scan_cost(&ScanRequest::all()).unwrap();
        let narrow = am.scan_cost(&ScanRequest::all().fields(["t"])).unwrap();
        assert!(narrow < full, "narrow {narrow} vs full {full}");
        assert!(am.scan_pages(&ScanRequest::all().fields(["t"])) < am.scan_pages(&ScanRequest::all()));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let am = methods(LayoutExpr::table("Readings"));
        assert!(am.scan(&ScanRequest::all().fields(["nope"])).is_err());
        assert!(am.scan_cost(&ScanRequest::all().fields(["nope"])).is_err());
    }

    #[test]
    fn get_element_cost_is_positive_and_small() {
        let am = methods(LayoutExpr::table("Readings"));
        let c = am.get_element_cost(5);
        assert!(c > 0.0 && c < 100.0);
    }

    #[test]
    fn scan_aggregate_folds_without_materializing() {
        use rodentstore_layout::WindowedAggregate;
        let am = methods(LayoutExpr::table("Readings"));
        let spec = WindowedAggregate::new("t", 100.0, "value");
        let acc = am.scan_aggregate(&spec, None).unwrap();
        assert_eq!(acc.rows_folded(), 300);
        let buckets = acc.finish();
        assert_eq!(buckets.len(), 3);
        assert!(buckets.windows(2).all(|w| w[0].bucket_start < w[1].bucket_start));
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), 300);
        // Against a predicate, matches the fold of an ordinary scan.
        let pred = Condition::eq("sensor", "s1");
        let filtered = am.scan_aggregate(&spec, Some(&pred)).unwrap();
        let rows = am
            .scan(&ScanRequest::all().fields(["t", "value"]).predicate(pred))
            .unwrap();
        assert_eq!(filtered.rows_folded(), rows.len() as u64);
        // Unknown fields are rejected up front.
        assert!(am
            .scan_aggregate(&WindowedAggregate::new("nope", 1.0, "value"), None)
            .is_err());
    }
}
