//! # RodentStore access methods
//!
//! The storage-system API the paper describes in Section 4.1: a thin layer
//! that lets a query processor iterate through the tuples of a table and ask
//! for cost estimates, regardless of the physical layout the storage algebra
//! chose.
//!
//! * [`AccessMethods::scan`] — scan with optional projection, range
//!   predicate, and sort order;
//! * [`AccessMethods::get_element`] / [`Cursor::next`] — positional access
//!   and iteration;
//! * [`AccessMethods::scan_cost`] / [`AccessMethods::get_element_cost`] —
//!   estimated cost in milliseconds, derived from pages and seeks under a
//!   configurable disk model;
//! * [`AccessMethods::order_list`] — the sort orders the current storage
//!   organization is "efficient" for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cursor;

pub use api::{AccessMethods, CostParams, ScanRequest};
pub use cursor::Cursor;
pub use rodentstore_layout::{WindowAccumulator, WindowRow, WindowedAggregate};

use rodentstore_layout::LayoutError;
use std::fmt;

/// Errors produced by the access-method layer.
#[derive(Debug)]
pub enum ExecError {
    /// The underlying layout failed.
    Layout(LayoutError),
    /// The request referenced an unknown field or was otherwise invalid.
    InvalidRequest(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Layout(e) => write!(f, "layout error: {e}"),
            ExecError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Layout(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LayoutError> for ExecError {
    fn from(e: LayoutError) -> Self {
        ExecError::Layout(e)
    }
}

/// Result alias for access-method operations.
pub type Result<T> = std::result::Result<T, ExecError>;
