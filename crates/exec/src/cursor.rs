//! Cursors: the `next()` access method.

use rodentstore_algebra::value::Record;

/// A simple forward cursor over the results of a scan.
///
/// RodentStore materializes the (already filtered and projected) result of a
/// scan and hands out tuples one at a time; the paper notes that emitting
/// blocks of nested or run-length-compressed tuples is an interesting
/// extension, which would slot in here.
#[derive(Debug)]
pub struct Cursor {
    rows: Vec<Record>,
    position: usize,
}

impl Cursor {
    /// Creates a cursor over materialized rows.
    pub fn new(rows: Vec<Record>) -> Cursor {
        Cursor { rows, position: 0 }
    }

    /// Returns the next tuple, or `None` when exhausted.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&Record> {
        let row = self.rows.get(self.position);
        if row.is_some() {
            self.position += 1;
        }
        row
    }

    /// Resets the cursor to the first tuple.
    pub fn rewind(&mut self) {
        self.position = 0;
    }

    /// Number of tuples remaining.
    pub fn remaining(&self) -> usize {
        self.rows.len().saturating_sub(self.position)
    }

    /// Total number of tuples in the cursor.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the cursor holds no tuples at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Iterator for Cursor {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        let row = self.rows.get(self.position).cloned();
        if row.is_some() {
            self.position += 1;
        }
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::value::Value;

    fn rows(n: usize) -> Vec<Record> {
        (0..n).map(|i| vec![Value::Int(i as i64)]).collect()
    }

    #[test]
    fn next_and_rewind() {
        let mut c = Cursor::new(rows(3));
        assert_eq!(c.remaining(), 3);
        assert_eq!(c.next().unwrap()[0], Value::Int(0));
        assert_eq!(c.next().unwrap()[0], Value::Int(1));
        c.rewind();
        assert_eq!(c.next().unwrap()[0], Value::Int(0));
        assert_eq!(c.remaining(), 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut c = Cursor::new(rows(1));
        assert!(c.next().is_some());
        assert!(c.next().is_none());
        assert!(c.next().is_none());
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn iterator_interface() {
        let c = Cursor::new(rows(5));
        let collected: Vec<Record> = c.collect();
        assert_eq!(collected.len(), 5);
        assert!(Cursor::new(vec![]).is_empty());
        assert_eq!(Cursor::new(rows(2)).len(), 2);
    }
}
