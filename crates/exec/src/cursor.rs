//! Cursors: the `next()` access method.

use crate::{ExecError, Result};
use rodentstore_algebra::value::Record;
use rodentstore_layout::ScanIter;

/// A forward cursor over the tuples of a scan.
///
/// Cursors come in two flavors:
///
/// * **Streaming** ([`Cursor::streaming`]) wraps a lazy
///   [`ScanIter`], so tuples are decoded from pages on demand and the full
///   result set is never materialized. This is what
///   [`crate::AccessMethods::open_cursor`] produces whenever the layout can
///   deliver the requested order natively.
/// * **Materialized** ([`Cursor::new`]) owns an already-computed row set —
///   the only remaining materialization point, used when a requested sort
///   order is not native to the layout.
///
/// `next()` hands out tuples one at a time; the paper notes that emitting
/// blocks of nested or run-length-compressed tuples is an interesting
/// extension, which would slot in here.
pub struct Cursor<'a> {
    source: Source<'a>,
    /// Most recently streamed tuple (backs the borrowed `next()` API).
    current: Option<Record>,
    /// First error hit while streaming, if any (the stream ends there).
    error: Option<ExecError>,
}

// `Streaming` dwarfs `Materialized`, but it is also the hot variant —
// boxing it would put a pointer chase on every `next()` — and cursors are
// created per query, not per row, so the footprint is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Source<'a> {
    Materialized { rows: Vec<Record>, position: usize },
    Streaming(ScanIter<'a>),
}

impl std::fmt::Debug for Cursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.source {
            Source::Materialized { rows, position } => f
                .debug_struct("Cursor")
                .field("mode", &"materialized")
                .field("rows", &rows.len())
                .field("position", position)
                .finish(),
            Source::Streaming(_) => f
                .debug_struct("Cursor")
                .field("mode", &"streaming")
                .finish(),
        }
    }
}

impl<'a> Cursor<'a> {
    /// Creates a cursor over materialized rows.
    pub fn new(rows: Vec<Record>) -> Cursor<'static> {
        Cursor {
            source: Source::Materialized { rows, position: 0 },
            current: None,
            error: None,
        }
    }

    /// Creates a streaming cursor over a lazy layout scan.
    pub fn streaming(iter: ScanIter<'a>) -> Cursor<'a> {
        Cursor {
            source: Source::Streaming(iter),
            current: None,
            error: None,
        }
    }

    /// Whether this cursor streams tuples lazily from the layout (as opposed
    /// to holding a materialized row set — either one built eagerly for a
    /// non-native sort, or the stitched buffer a vertically partitioned
    /// layout requires).
    pub fn is_streaming(&self) -> bool {
        match &self.source {
            Source::Materialized { .. } => false,
            Source::Streaming(iter) => iter.is_lazy(),
        }
    }

    /// Returns the next tuple, or `None` when exhausted. A decoding error
    /// ends the stream; the error is retrievable via [`Cursor::take_error`]
    /// (or use [`Cursor::try_next`] to observe it directly).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<&Record> {
        match &mut self.source {
            Source::Materialized { rows, position } => {
                let row = rows.get(*position);
                if row.is_some() {
                    *position += 1;
                }
                row
            }
            Source::Streaming(iter) => {
                match iter.next() {
                    Some(Ok(row)) => self.current = Some(row),
                    Some(Err(e)) => {
                        self.error = Some(e.into());
                        self.current = None;
                    }
                    None => self.current = None,
                }
                self.current.as_ref()
            }
        }
    }

    /// Fallible owned variant of [`Cursor::next`]: `Ok(None)` on exhaustion,
    /// `Err` if the underlying stream failed to decode.
    pub fn try_next(&mut self) -> Result<Option<Record>> {
        match &mut self.source {
            Source::Materialized { rows, position } => {
                let row = rows.get(*position).cloned();
                if row.is_some() {
                    *position += 1;
                }
                Ok(row)
            }
            Source::Streaming(iter) => match iter.next() {
                Some(Ok(row)) => Ok(Some(row)),
                Some(Err(e)) => Err(e.into()),
                None => Ok(None),
            },
        }
    }

    /// The first streaming error encountered, if any.
    pub fn take_error(&mut self) -> Option<ExecError> {
        self.error.take()
    }

    /// Resets the cursor to the first tuple. Streaming cursors restart the
    /// underlying scan.
    pub fn rewind(&mut self) -> Result<()> {
        self.current = None;
        self.error = None;
        match &mut self.source {
            Source::Materialized { position, .. } => {
                *position = 0;
                Ok(())
            }
            Source::Streaming(iter) => Ok(iter.rewind()?),
        }
    }

    /// Number of tuples remaining, when known without consuming the cursor
    /// (`None` for lazily streaming cursors — counting would require the
    /// scan; known for materialized and buffered-vertical cursors).
    pub fn remaining(&self) -> Option<usize> {
        match &self.source {
            Source::Materialized { rows, position } => {
                Some(rows.len().saturating_sub(*position))
            }
            Source::Streaming(iter) => iter.buffered_remaining(),
        }
    }

    /// Total number of tuples, when known without consuming the cursor.
    pub fn len(&self) -> Option<usize> {
        match &self.source {
            Source::Materialized { rows, .. } => Some(rows.len()),
            Source::Streaming(iter) => iter.buffered_len(),
        }
    }

    /// Whether the cursor holds no tuples at all — `None` when that is
    /// unknowable without consuming the stream.
    pub fn is_empty(&self) -> Option<bool> {
        self.len().map(|n| n == 0)
    }

    /// Drains the rest of the cursor into a vector (the thin-`collect`
    /// equivalent of an eager scan).
    pub fn collect_rows(&mut self) -> Result<Vec<Record>> {
        let mut out = Vec::new();
        while let Some(row) = self.try_next()? {
            out.push(row);
        }
        Ok(out)
    }
}

impl Iterator for Cursor<'_> {
    type Item = Result<Record>;

    /// Yields `Result`s so a mid-stream decode error is visible to the
    /// consumer instead of silently truncating the iteration (the cursor is
    /// often moved into `collect()`, where `take_error` would be
    /// unreachable). An error ends the iteration.
    fn next(&mut self) -> Option<Self::Item> {
        self.try_next().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::value::Value;

    fn rows(n: usize) -> Vec<Record> {
        (0..n).map(|i| vec![Value::Int(i as i64)]).collect()
    }

    #[test]
    fn next_and_rewind() {
        let mut c = Cursor::new(rows(3));
        assert_eq!(c.remaining(), Some(3));
        assert_eq!(c.next().unwrap()[0], Value::Int(0));
        assert_eq!(c.next().unwrap()[0], Value::Int(1));
        c.rewind().unwrap();
        assert_eq!(c.next().unwrap()[0], Value::Int(0));
        assert_eq!(c.remaining(), Some(2));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut c = Cursor::new(rows(1));
        assert!(c.next().is_some());
        assert!(c.next().is_none());
        assert!(c.next().is_none());
        assert_eq!(c.remaining(), Some(0));
    }

    #[test]
    fn iterator_interface() {
        let c = Cursor::new(rows(5));
        let collected: Vec<Record> = c.collect::<Result<_>>().unwrap();
        assert_eq!(collected.len(), 5);
        assert_eq!(Cursor::new(vec![]).is_empty(), Some(true));
        assert_eq!(Cursor::new(rows(2)).is_empty(), Some(false));
        assert_eq!(Cursor::new(rows(2)).len(), Some(2));
    }

    #[test]
    fn try_next_drains_materialized_rows() {
        let mut c = Cursor::new(rows(2));
        assert!(c.try_next().unwrap().is_some());
        assert_eq!(c.collect_rows().unwrap().len(), 1);
        assert!(c.try_next().unwrap().is_none());
    }
}
