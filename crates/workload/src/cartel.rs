//! Synthetic CarTel-style GPS trace generation.
//!
//! The paper's case study uses raw GPS traces collected by the CarTel car
//! telematics infrastructure: ten million observations from a few thousand
//! trajectories around Boston, stored as
//! `Traces(t, lat, lon, ID, …)`. That dataset is not publicly available, so
//! this module generates a synthetic equivalent that preserves the three
//! properties the evaluation depends on:
//!
//! 1. observations are *dense* in a bounded 2-D region (a Boston-sized
//!    bounding box),
//! 2. consecutive observations of one vehicle differ by *small increments*
//!    (cars move continuously), which is what makes delta compression
//!    effective, and
//! 3. the data is much larger than a page, so layout choices dominate I/O.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rodentstore_algebra::schema::{Field, Schema};
use rodentstore_algebra::types::DataType;
use rodentstore_algebra::value::{Record, Value};

/// Geographic bounding box of the generated traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Minimum latitude.
    pub min_lat: f64,
    /// Maximum latitude.
    pub max_lat: f64,
    /// Minimum longitude.
    pub min_lon: f64,
    /// Maximum longitude.
    pub max_lon: f64,
}

impl BoundingBox {
    /// A bounding box roughly covering the greater Boston area.
    pub fn boston() -> BoundingBox {
        BoundingBox {
            min_lat: 42.20,
            max_lat: 42.45,
            min_lon: -71.25,
            max_lon: -70.95,
        }
    }

    /// Width in longitude degrees.
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Height in latitude degrees.
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Area in square degrees.
    pub fn area(&self) -> f64 {
        self.lat_span() * self.lon_span()
    }
}

/// Configuration of the synthetic trace generator.
#[derive(Debug, Clone)]
pub struct CartelConfig {
    /// Total number of observations to generate.
    pub observations: usize,
    /// Number of distinct vehicles (trajectories).
    pub vehicles: usize,
    /// Bounding box the vehicles move in.
    pub bbox: BoundingBox,
    /// Maximum per-step movement in degrees (cars move by small increments).
    pub max_step: f64,
    /// Seed for the deterministic random generator.
    pub seed: u64,
}

impl Default for CartelConfig {
    fn default() -> Self {
        CartelConfig {
            observations: 100_000,
            vehicles: 200,
            bbox: BoundingBox::boston(),
            max_step: 0.0005,
            seed: 0xCA27E1,
        }
    }
}

impl CartelConfig {
    /// Convenience constructor scaling the default configuration.
    pub fn with_observations(observations: usize) -> CartelConfig {
        CartelConfig {
            observations,
            vehicles: (observations / 500).clamp(10, 5_000),
            ..CartelConfig::default()
        }
    }
}

/// The logical schema of the traces relation:
/// `Traces(t: timestamp, lat: float, lon: float, id: string)`.
pub fn traces_schema() -> Schema {
    Schema::new(
        "Traces",
        vec![
            Field::new("t", DataType::Timestamp),
            Field::new("lat", DataType::Float),
            Field::new("lon", DataType::Float),
            Field::new("id", DataType::String),
        ],
    )
}

/// Generates the synthetic trace relation. Observations are emitted in
/// timestamp order, interleaving vehicles — the same arrival order a live
/// telematics feed would produce.
pub fn generate_traces(config: &CartelConfig) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let bbox = config.bbox;
    let mut positions: Vec<(f64, f64)> = (0..config.vehicles)
        .map(|_| {
            (
                rng.gen_range(bbox.min_lat..bbox.max_lat),
                rng.gen_range(bbox.min_lon..bbox.max_lon),
            )
        })
        .collect();
    // Per-vehicle heading gives trajectories momentum so they look like road
    // traces rather than white noise.
    let mut headings: Vec<f64> = (0..config.vehicles)
        .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
        .collect();

    let mut records = Vec::with_capacity(config.observations);
    for i in 0..config.observations {
        let v = i % config.vehicles.max(1);
        // Occasionally change heading; otherwise drift forward with noise.
        if rng.gen_bool(0.05) {
            headings[v] = rng.gen_range(0.0..std::f64::consts::TAU);
        }
        let step = rng.gen_range(0.0..config.max_step);
        let (mut lat, mut lon) = positions[v];
        lat += headings[v].sin() * step;
        lon += headings[v].cos() * step;
        // Bounce off the bounding box.
        if lat < bbox.min_lat || lat > bbox.max_lat {
            headings[v] = -headings[v];
            lat = lat.clamp(bbox.min_lat, bbox.max_lat);
        }
        if lon < bbox.min_lon || lon > bbox.max_lon {
            headings[v] = std::f64::consts::PI - headings[v];
            lon = lon.clamp(bbox.min_lon, bbox.max_lon);
        }
        positions[v] = (lat, lon);
        records.push(vec![
            Value::Timestamp(i as i64),
            Value::Float(lat),
            Value::Float(lon),
            Value::Str(format!("car-{v:05}")),
        ]);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = CartelConfig {
            observations: 2_000,
            vehicles: 20,
            ..CartelConfig::default()
        };
        assert_eq!(generate_traces(&config), generate_traces(&config));
        let other_seed = CartelConfig {
            seed: 7,
            ..config.clone()
        };
        assert_ne!(generate_traces(&config), generate_traces(&other_seed));
    }

    #[test]
    fn records_conform_to_schema_and_bbox() {
        let config = CartelConfig {
            observations: 5_000,
            vehicles: 50,
            ..CartelConfig::default()
        };
        let schema = traces_schema();
        let bbox = config.bbox;
        for r in generate_traces(&config) {
            schema.validate_record(&r).unwrap();
            let lat = r[1].as_f64().unwrap();
            let lon = r[2].as_f64().unwrap();
            assert!(lat >= bbox.min_lat && lat <= bbox.max_lat);
            assert!(lon >= bbox.min_lon && lon <= bbox.max_lon);
        }
    }

    #[test]
    fn consecutive_observations_of_a_vehicle_move_in_small_increments() {
        let config = CartelConfig {
            observations: 10_000,
            vehicles: 10,
            ..CartelConfig::default()
        };
        let records = generate_traces(&config);
        let mut max_jump: f64 = 0.0;
        for v in 0..10usize {
            let mut prev: Option<(f64, f64)> = None;
            for r in records.iter().skip(v).step_by(10) {
                let lat = r[1].as_f64().unwrap();
                let lon = r[2].as_f64().unwrap();
                if let Some((plat, plon)) = prev {
                    max_jump = max_jump.max((lat - plat).abs().max((lon - plon).abs()));
                }
                prev = Some((lat, lon));
            }
        }
        assert!(
            max_jump <= config.max_step + 1e-9,
            "vehicles should move continuously (max jump {max_jump})"
        );
    }

    #[test]
    fn vehicle_count_and_timestamps() {
        let config = CartelConfig {
            observations: 1_000,
            vehicles: 25,
            ..CartelConfig::default()
        };
        let records = generate_traces(&config);
        let distinct: std::collections::HashSet<&str> =
            records.iter().map(|r| r[3].as_str().unwrap()).collect();
        assert_eq!(distinct.len(), 25);
        // Timestamps are strictly increasing.
        assert!(records
            .windows(2)
            .all(|w| w[0][0].as_i64().unwrap() < w[1][0].as_i64().unwrap()));
    }

    #[test]
    fn scaled_config_clamps_vehicle_count() {
        assert_eq!(CartelConfig::with_observations(1_000).vehicles, 10);
        assert_eq!(CartelConfig::with_observations(10_000_000).vehicles, 5_000);
    }
}
