//! Synthetic OLAP-style sales records.
//!
//! The paper's introduction motivates the algebra with a table of sales
//! records `N = (zipcode, year, month, day, customerid, productid, …)` and
//! the expression `zorder(grid[y, z](N))`. This module generates that
//! relation for the expressiveness examples and the `sales_grid` benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rodentstore_algebra::schema::{Field, Schema};
use rodentstore_algebra::types::DataType;
use rodentstore_algebra::value::{Record, Value};

/// Configuration of the sales generator.
#[derive(Debug, Clone)]
pub struct SalesConfig {
    /// Number of sales records.
    pub rows: usize,
    /// Number of distinct zip codes.
    pub zipcodes: usize,
    /// Year range (inclusive).
    pub years: (i64, i64),
    /// Number of distinct customers.
    pub customers: usize,
    /// Number of distinct products.
    pub products: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SalesConfig {
    fn default() -> Self {
        SalesConfig {
            rows: 50_000,
            zipcodes: 100,
            years: (2001, 2008),
            customers: 2_000,
            products: 500,
            seed: 0x5A1E5,
        }
    }
}

/// The logical schema of the sales relation.
pub fn sales_schema() -> Schema {
    Schema::new(
        "Sales",
        vec![
            Field::new("zipcode", DataType::Int),
            Field::new("year", DataType::Int),
            Field::new("month", DataType::Int),
            Field::new("day", DataType::Int),
            Field::new("customerid", DataType::Int),
            Field::new("productid", DataType::Int),
            Field::new("amount", DataType::Float),
        ],
    )
}

/// Generates the synthetic sales relation. Zip codes are skewed (a few busy
/// stores account for most sales) so grouping and dictionary compression have
/// realistic value distributions to work with.
pub fn generate_sales(config: &SalesConfig) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (year_lo, year_hi) = config.years;
    (0..config.rows)
        .map(|_| {
            // Zipf-ish skew: square the uniform draw so small indices dominate.
            let u: f64 = rng.gen();
            let zip_idx = ((u * u) * config.zipcodes as f64) as i64;
            let zipcode = 2_000 + zip_idx * 7;
            let year = rng.gen_range(year_lo..=year_hi);
            let month = rng.gen_range(1..=12i64);
            let day = rng.gen_range(1..=28i64);
            let customer = rng.gen_range(0..config.customers as i64);
            let product = rng.gen_range(0..config.products as i64);
            let amount = (rng.gen_range(1.0..500.0f64) * 100.0).round() / 100.0;
            vec![
                Value::Int(zipcode),
                Value::Int(year),
                Value::Int(month),
                Value::Int(day),
                Value::Int(customer),
                Value::Int(product),
                Value::Float(amount),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_conform_to_schema() {
        let config = SalesConfig {
            rows: 2_000,
            ..SalesConfig::default()
        };
        let schema = sales_schema();
        for r in generate_sales(&config) {
            schema.validate_record(&r).unwrap();
            let year = r[1].as_i64().unwrap();
            assert!((2001..=2008).contains(&year));
            let month = r[2].as_i64().unwrap();
            assert!((1..=12).contains(&month));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let config = SalesConfig {
            rows: 500,
            ..SalesConfig::default()
        };
        assert_eq!(generate_sales(&config), generate_sales(&config));
    }

    #[test]
    fn zipcodes_are_skewed() {
        let config = SalesConfig {
            rows: 20_000,
            ..SalesConfig::default()
        };
        let records = generate_sales(&config);
        let mut counts = std::collections::HashMap::new();
        for r in &records {
            *counts.entry(r[0].as_i64().unwrap()).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        let avg = records.len() / counts.len();
        assert!(
            max > avg * 3,
            "expected a skewed distribution (max {max}, avg {avg})"
        );
    }
}
