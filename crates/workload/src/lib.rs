//! # Workload substrate for RodentStore
//!
//! Synthetic data and query generators used by the examples, integration
//! tests, and the benchmark harness that reproduces the paper's evaluation:
//!
//! * [`cartel`] — CarTel-style GPS traces (`Traces(t, lat, lon, id)`): dense
//!   observations of vehicles moving by small increments inside a
//!   Boston-sized bounding box. This substitutes for the proprietary CarTel
//!   dataset used in the paper's case study (Section 6).
//! * [`queries`] — the spatial query workload of Figure 2: random square
//!   regions covering 1% of the area.
//! * [`sales`] — the OLAP-style sales relation from the paper's introduction
//!   (`zorder(grid[y, z](N))` example).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cartel;
pub mod queries;
pub mod sales;

pub use cartel::{generate_traces, traces_schema, BoundingBox, CartelConfig};
pub use queries::{figure2_queries, random_square_queries, SpatialQuery};
pub use sales::{generate_sales, sales_schema, SalesConfig};
