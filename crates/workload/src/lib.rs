//! # Workload substrate for RodentStore
//!
//! Synthetic data and query generators used by the examples, integration
//! tests, and the benchmark harness that reproduces the paper's evaluation:
//!
//! * [`cartel`] — CarTel-style GPS traces (`Traces(t, lat, lon, id)`): dense
//!   observations of vehicles moving by small increments inside a
//!   Boston-sized bounding box. This substitutes for the proprietary CarTel
//!   dataset used in the paper's case study (Section 6).
//! * [`queries`] — the spatial query workload of Figure 2: random square
//!   regions covering 1% of the area.
//! * [`sales`] — the OLAP-style sales relation from the paper's introduction
//!   (`zorder(grid[y, z](N))` example).
//! * [`telemetry`] — an append-heavy sensor stream
//!   (`Telemetry(ts, sensor, value, status, seq)`) whose columns exercise the
//!   delta, RLE, and frame-of-reference codecs and whose queries are windowed
//!   aggregates over time buckets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cartel;
pub mod queries;
pub mod sales;
pub mod telemetry;

pub use cartel::{generate_traces, traces_schema, BoundingBox, CartelConfig};
pub use queries::{figure2_queries, random_square_queries, SpatialQuery};
pub use sales::{generate_sales, sales_schema, SalesConfig};
pub use telemetry::{generate_telemetry, telemetry_schema, TelemetryConfig};
