//! Query workload generation.
//!
//! The paper's Figure 2 averages the pages read over "200 random geographical
//! queries retrieving square regions covering 1% of the total area
//! considered". This module generates exactly that query workload (and a few
//! variants used by the ablation benchmarks) as storage-algebra conditions.

use crate::cartel::BoundingBox;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rodentstore_algebra::comprehension::Condition;

/// A square spatial range query over `(lat, lon)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialQuery {
    /// Minimum latitude of the square.
    pub min_lat: f64,
    /// Maximum latitude of the square.
    pub max_lat: f64,
    /// Minimum longitude of the square.
    pub min_lon: f64,
    /// Maximum longitude of the square.
    pub max_lon: f64,
}

impl SpatialQuery {
    /// Converts the query into a storage-algebra predicate over the
    /// `lat`/`lon` fields.
    pub fn to_condition(&self) -> Condition {
        Condition::range("lat", self.min_lat, self.max_lat)
            .and(Condition::range("lon", self.min_lon, self.max_lon))
    }

    /// Width of the query in longitude degrees.
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Height of the query in latitude degrees.
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Fraction of the bounding box the query covers.
    pub fn coverage(&self, bbox: &BoundingBox) -> f64 {
        (self.lat_span() * self.lon_span()) / bbox.area()
    }
}

/// Generates `count` random square queries, each covering `coverage`
/// (e.g. `0.01` = 1%) of the bounding box area, fully contained in the box.
pub fn random_square_queries(
    bbox: &BoundingBox,
    coverage: f64,
    count: usize,
    seed: u64,
) -> Vec<SpatialQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    // A square covering `coverage` of the area has side = sqrt(coverage * area),
    // expressed separately in degrees of latitude and longitude so the square
    // is proportional in each dimension.
    let frac = coverage.clamp(0.0, 1.0).sqrt();
    let lat_side = bbox.lat_span() * frac;
    let lon_side = bbox.lon_span() * frac;
    (0..count)
        .map(|_| {
            let min_lat = rng.gen_range(bbox.min_lat..=(bbox.max_lat - lat_side));
            let min_lon = rng.gen_range(bbox.min_lon..=(bbox.max_lon - lon_side));
            SpatialQuery {
                min_lat,
                max_lat: min_lat + lat_side,
                min_lon,
                max_lon: min_lon + lon_side,
            }
        })
        .collect()
}

/// The paper's query workload: 200 random square queries covering 1% of the
/// area each.
pub fn figure2_queries(bbox: &BoundingBox, seed: u64) -> Vec<SpatialQuery> {
    random_square_queries(bbox, 0.01, 200, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_cover_the_requested_fraction() {
        let bbox = BoundingBox::boston();
        for q in random_square_queries(&bbox, 0.01, 50, 1) {
            let c = q.coverage(&bbox);
            assert!((c - 0.01).abs() < 1e-9, "coverage {c}");
            assert!(q.min_lat >= bbox.min_lat && q.max_lat <= bbox.max_lat);
            assert!(q.min_lon >= bbox.min_lon && q.max_lon <= bbox.max_lon);
        }
    }

    #[test]
    fn figure2_workload_has_200_queries() {
        let bbox = BoundingBox::boston();
        let qs = figure2_queries(&bbox, 42);
        assert_eq!(qs.len(), 200);
        // Deterministic for a fixed seed.
        assert_eq!(qs, figure2_queries(&bbox, 42));
        assert_ne!(qs, figure2_queries(&bbox, 43));
    }

    #[test]
    fn condition_conversion_references_lat_lon() {
        let bbox = BoundingBox::boston();
        let q = random_square_queries(&bbox, 0.05, 1, 9)[0];
        let cond = q.to_condition();
        let fields = cond.referenced_fields();
        assert!(fields.contains(&"lat".to_string()));
        assert!(fields.contains(&"lon".to_string()));
    }

    #[test]
    fn full_coverage_query_spans_the_box() {
        let bbox = BoundingBox::boston();
        let q = random_square_queries(&bbox, 1.0, 1, 3)[0];
        assert!((q.lat_span() - bbox.lat_span()).abs() < 1e-9);
        assert!((q.lon_span() - bbox.lon_span()).abs() < 1e-9);
    }
}
