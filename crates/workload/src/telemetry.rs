//! Append-heavy sensor-telemetry stream generation.
//!
//! The zero-copy read path is proved on a workload the CarTel traces do not
//! model: a dense, append-only telemetry feed where every column is friendly
//! to a different light-weight codec and queries are dominated by windowed
//! aggregation rather than row retrieval. The generator emits
//! `Telemetry(ts, sensor, value, status, seq)` with the properties the
//! `telemetry` bench depends on:
//!
//! 1. `ts` is globally monotonic with a small jitter between consecutive
//!    readings — ideal for delta encoding and for bucketing into fixed-width
//!    time windows,
//! 2. `value` follows a smooth per-sensor random walk (small deltas,
//!    frame-of-reference friendly),
//! 3. `status` is almost always `0` with rare short bursts of a non-zero
//!    code — long runs that RLE collapses, and
//! 4. `seq` is a per-sensor monotonic counter (delta-encodes to ~1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rodentstore_algebra::schema::{Field, Schema};
use rodentstore_algebra::types::DataType;
use rodentstore_algebra::value::{Record, Value};

/// Configuration of the synthetic telemetry generator.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Total number of readings to generate.
    pub readings: usize,
    /// Number of distinct sensors reporting.
    pub sensors: usize,
    /// Mean gap between consecutive readings, in ticks (the generated `ts`
    /// advances by `1..=2 * tick_jitter` per reading, so the stream stays
    /// strictly monotonic).
    pub tick_jitter: u64,
    /// Maximum per-reading change of a sensor's value.
    pub max_value_step: f64,
    /// Probability that a sensor enters a non-zero status burst.
    pub fault_rate: f64,
    /// Seed for the deterministic random generator.
    pub seed: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            readings: 100_000,
            sensors: 64,
            tick_jitter: 3,
            max_value_step: 0.25,
            fault_rate: 0.002,
            seed: 0x7E1E,
        }
    }
}

impl TelemetryConfig {
    /// Convenience constructor scaling the default configuration.
    pub fn with_readings(readings: usize) -> TelemetryConfig {
        TelemetryConfig {
            readings,
            sensors: (readings / 1_000).clamp(8, 1_024),
            ..TelemetryConfig::default()
        }
    }
}

/// The logical schema of the telemetry relation:
/// `Telemetry(ts: int, sensor: string, value: float, status: int, seq: int)`.
pub fn telemetry_schema() -> Schema {
    Schema::new(
        "Telemetry",
        vec![
            Field::new("ts", DataType::Int),
            Field::new("sensor", DataType::String),
            Field::new("value", DataType::Float),
            Field::new("status", DataType::Int),
            Field::new("seq", DataType::Int),
        ],
    )
}

/// Generates the synthetic telemetry relation. Readings are emitted in
/// arrival order — strictly increasing `ts`, sensors interleaved — the same
/// order an ingest pipeline would append them.
pub fn generate_telemetry(config: &TelemetryConfig) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sensors = config.sensors.max(1);
    let mut values: Vec<f64> = (0..sensors).map(|_| rng.gen_range(15.0..30.0)).collect();
    let mut seqs: Vec<i64> = vec![0; sensors];
    // Remaining readings of an active fault burst, per sensor.
    let mut fault_left: Vec<u32> = vec![0; sensors];
    let mut fault_code: Vec<i64> = vec![0; sensors];

    let mut ts: i64 = 0;
    let mut records = Vec::with_capacity(config.readings);
    for i in 0..config.readings {
        let s = i % sensors;
        ts += rng.gen_range(1..=(2 * config.tick_jitter.max(1))) as i64;
        // Smooth random walk, clamped to a plausible sensor range.
        values[s] = (values[s] + rng.gen_range(-config.max_value_step..=config.max_value_step))
            .clamp(-40.0, 85.0);
        if fault_left[s] == 0 && rng.gen_bool(config.fault_rate.clamp(0.0, 1.0)) {
            fault_left[s] = rng.gen_range(3..20);
            fault_code[s] = rng.gen_range(1..5);
        }
        let status = if fault_left[s] > 0 {
            fault_left[s] -= 1;
            fault_code[s]
        } else {
            0
        };
        seqs[s] += 1;
        records.push(vec![
            Value::Int(ts),
            Value::Str(format!("sensor-{s:04}")),
            Value::Float(values[s]),
            Value::Int(status),
            Value::Int(seqs[s]),
        ]);
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = TelemetryConfig {
            readings: 2_000,
            sensors: 16,
            ..TelemetryConfig::default()
        };
        assert_eq!(generate_telemetry(&config), generate_telemetry(&config));
        let other_seed = TelemetryConfig {
            seed: 9,
            ..config.clone()
        };
        assert_ne!(generate_telemetry(&config), generate_telemetry(&other_seed));
    }

    #[test]
    fn records_conform_to_schema_and_ts_is_strictly_monotonic() {
        let config = TelemetryConfig {
            readings: 5_000,
            sensors: 32,
            ..TelemetryConfig::default()
        };
        let schema = telemetry_schema();
        let records = generate_telemetry(&config);
        for r in &records {
            schema.validate_record(r).unwrap();
        }
        assert!(records
            .windows(2)
            .all(|w| w[0][0].as_i64().unwrap() < w[1][0].as_i64().unwrap()));
    }

    #[test]
    fn values_walk_smoothly_and_seq_delta_is_one() {
        let config = TelemetryConfig {
            readings: 8_000,
            sensors: 8,
            ..TelemetryConfig::default()
        };
        let records = generate_telemetry(&config);
        for s in 0..8usize {
            let mut prev_value: Option<f64> = None;
            let mut prev_seq: Option<i64> = None;
            for r in records.iter().skip(s).step_by(8) {
                let value = r[2].as_f64().unwrap();
                let seq = r[4].as_i64().unwrap();
                if let Some(p) = prev_value {
                    assert!(
                        (value - p).abs() <= config.max_value_step + 1e-9,
                        "sensor values must walk in small steps"
                    );
                }
                if let Some(p) = prev_seq {
                    assert_eq!(seq, p + 1, "per-sensor sequence numbers are dense");
                }
                prev_value = Some(value);
                prev_seq = Some(seq);
            }
        }
    }

    #[test]
    fn status_is_mostly_zero_with_runs() {
        let config = TelemetryConfig {
            readings: 50_000,
            sensors: 16,
            ..TelemetryConfig::default()
        };
        let records = generate_telemetry(&config);
        let zeros = records
            .iter()
            .filter(|r| r[3].as_i64().unwrap() == 0)
            .count();
        assert!(
            zeros as f64 > records.len() as f64 * 0.9,
            "status should be overwhelmingly healthy ({zeros}/{} zeros)",
            records.len()
        );
        // Runs exist: the number of value changes is far below the row count,
        // which is what makes the column RLE-friendly.
        let changes = records
            .windows(2)
            .filter(|w| w[0][3] != w[1][3])
            .count();
        assert!(
            changes < records.len() / 2,
            "status must form runs ({changes} changes in {} rows)",
            records.len()
        );
    }

    #[test]
    fn scaled_config_clamps_sensor_count() {
        assert_eq!(TelemetryConfig::with_readings(1_000).sensors, 8);
        assert_eq!(TelemetryConfig::with_readings(10_000_000).sensors, 1_024);
    }
}
