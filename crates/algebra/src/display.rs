//! Textual rendering of storage-algebra expressions.
//!
//! The rendering produced here is accepted back by [`crate::parse`], so
//! expressions can round-trip through their textual form (with the exception
//! of explicit [`crate::Comprehension`]s and predicate-based partitions,
//! which have no concrete syntax and are rendered descriptively).

use crate::comprehension::{Condition, ElemExpr};
use crate::expr::{LayoutExpr, PartitionBy, SortOrder};
use std::fmt;

impl fmt::Display for LayoutExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(self, f)
    }
}

fn join(items: &[String]) -> String {
    items.join(",")
}

fn write_condition(cond: &Condition, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match cond {
        Condition::True => write!(f, "true"),
        Condition::Cmp { left, op, right } => {
            write_elem(left, f)?;
            write!(f, "{op}")?;
            write_elem(right, f)
        }
        Condition::Range { field, lo, hi } => write!(f, "{field}:{lo}..{hi}"),
        Condition::And(items) => {
            for (i, c) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write_condition(c, f)?;
            }
            Ok(())
        }
        Condition::Or(items) => {
            for (i, c) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write_condition(c, f)?;
            }
            Ok(())
        }
        Condition::Not(inner) => {
            write!(f, "!(")?;
            write_condition(inner, f)?;
            write!(f, ")")
        }
    }
}

fn write_elem(e: &ElemExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        ElemExpr::Literal(v) => write!(f, "{v}"),
        ElemExpr::Field(name) => write!(f, "{name}"),
        ElemExpr::Pos => write!(f, "pos()"),
        ElemExpr::Count => write!(f, "count()"),
        ElemExpr::Bin(inner) => {
            write!(f, "bin(")?;
            write_elem(inner, f)?;
            write!(f, ")")
        }
        ElemExpr::Interleave(items) => {
            write!(f, "interleave(")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_elem(item, f)?;
            }
            write!(f, ")")
        }
        ElemExpr::Sub(a, b) => {
            write_elem(a, f)?;
            write!(f, " - ")?;
            write_elem(b, f)
        }
        ElemExpr::Add(a, b) => {
            write_elem(a, f)?;
            write!(f, " + ")?;
            write_elem(b, f)
        }
    }
}

fn write_expr(expr: &LayoutExpr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match expr {
        LayoutExpr::Table(name) => write!(f, "{name}"),
        LayoutExpr::Project { input, fields } => {
            write!(f, "project[{}]({input})", join(fields))
        }
        LayoutExpr::Append { input, fields } => {
            let names: Vec<String> = fields.iter().map(|fd| fd.to_string()).collect();
            write!(f, "append[{}]({input})", join(&names))
        }
        LayoutExpr::Select { input, predicate } => {
            write!(f, "select[")?;
            write_condition(predicate, f)?;
            write!(f, "]({input})")
        }
        LayoutExpr::Partition { input, by } => match by {
            PartitionBy::Field(field) => write!(f, "partition[{field}]({input})"),
            PartitionBy::Stride(field, stride) => {
                write!(f, "partition[{field};{stride}]({input})")
            }
            PartitionBy::Predicate(cond) => {
                write!(f, "partition[")?;
                write_condition(cond, f)?;
                write!(f, "]({input})")
            }
        },
        LayoutExpr::VerticalPartition { input, groups } => {
            let rendered: Vec<String> = groups.iter().map(|g| g.join(",")).collect();
            write!(f, "vertical[{}]({input})", rendered.join("|"))
        }
        LayoutExpr::RowMajor { input } => write!(f, "rows({input})"),
        LayoutExpr::ColumnMajor { input } => write!(f, "columns({input})"),
        LayoutExpr::Pax { input, spec } => {
            write!(f, "pax[{}]({input})", spec.records_per_page)
        }
        LayoutExpr::Fold { input, key, values } => {
            write!(f, "fold[{}|{}]({input})", join(key), join(values))
        }
        LayoutExpr::Unfold { input } => write!(f, "unfold({input})"),
        LayoutExpr::Prejoin {
            left,
            right,
            join_attr,
        } => write!(f, "prejoin[{join_attr}]({left}, {right})"),
        LayoutExpr::Compress {
            input,
            fields,
            codec,
        } => {
            if fields.is_empty() {
                write!(f, "{codec}({input})")
            } else {
                write!(f, "{codec}[{}]({input})", join(fields))
            }
        }
        LayoutExpr::OrderBy { input, keys } => {
            let rendered: Vec<String> = keys
                .iter()
                .map(|k| match k.order {
                    SortOrder::Asc => k.field.clone(),
                    SortOrder::Desc => format!("{} desc", k.field),
                })
                .collect();
            write!(f, "orderby[{}]({input})", rendered.join(","))
        }
        LayoutExpr::GroupBy { input, keys } => {
            write!(f, "groupby[{}]({input})", join(keys))
        }
        LayoutExpr::Limit { input, n } => write!(f, "limit[{n}]({input})"),
        LayoutExpr::Grid { input, dims } => {
            let fields: Vec<String> = dims.iter().map(|d| d.field.clone()).collect();
            let strides: Vec<String> = dims.iter().map(|d| d.stride.to_string()).collect();
            write!(f, "grid[{};{}]({input})", fields.join(","), strides.join(","))
        }
        LayoutExpr::ZOrder { input, fields } => {
            if fields.is_empty() {
                write!(f, "zorder({input})")
            } else {
                write!(f, "zorder[{}]({input})", join(fields))
            }
        }
        LayoutExpr::Transpose { input } => write!(f, "transpose({input})"),
        LayoutExpr::Chunk { input, size } => write!(f, "chunk[{size}]({input})"),
        LayoutExpr::Index { input, fields } => {
            write!(f, "index[{}]({input})", join(fields))
        }
        LayoutExpr::Lsm { input, key } => {
            write!(f, "lsm[{}]({input})", join(key))
        }
        LayoutExpr::Comprehension(c) => {
            write!(f, "<comprehension over {}>", c.base_tables().join(","))
        }
    }
}

/// Pretty-prints an expression as an indented tree, one transform per line;
/// useful in logs and in the design advisor's explanations.
pub fn explain(expr: &LayoutExpr) -> String {
    let mut out = String::new();
    explain_into(expr, 0, &mut out);
    out
}

fn explain_into(expr: &LayoutExpr, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let header = match expr {
        LayoutExpr::Table(name) => format!("table {name}"),
        LayoutExpr::Project { fields, .. } => format!("project [{}]", fields.join(", ")),
        LayoutExpr::Append { fields, .. } => format!(
            "append [{}]",
            fields
                .iter()
                .map(|f| f.name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        ),
        LayoutExpr::Select { .. } => "select".to_string(),
        LayoutExpr::Partition { .. } => "partition".to_string(),
        LayoutExpr::VerticalPartition { groups, .. } => {
            format!("vertical partition into {} group(s)", groups.len())
        }
        LayoutExpr::RowMajor { .. } => "row-major".to_string(),
        LayoutExpr::ColumnMajor { .. } => "column-major".to_string(),
        LayoutExpr::Pax { spec, .. } => format!("pax ({} records/page)", spec.records_per_page),
        LayoutExpr::Fold { key, values, .. } => {
            format!("fold key=[{}] values=[{}]", key.join(", "), values.join(", "))
        }
        LayoutExpr::Unfold { .. } => "unfold".to_string(),
        LayoutExpr::Prejoin { join_attr, .. } => format!("prejoin on {join_attr}"),
        LayoutExpr::Compress { fields, codec, .. } => {
            format!("compress {codec} [{}]", fields.join(", "))
        }
        LayoutExpr::OrderBy { keys, .. } => format!(
            "orderby [{}]",
            keys.iter()
                .map(|k| format!("{} {}", k.field, k.order))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        LayoutExpr::GroupBy { keys, .. } => format!("groupby [{}]", keys.join(", ")),
        LayoutExpr::Limit { n, .. } => format!("limit {n}"),
        LayoutExpr::Grid { dims, .. } => format!(
            "grid [{}]",
            dims.iter()
                .map(|d| format!("{}/{}", d.field, d.stride))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        LayoutExpr::ZOrder { fields, .. } => {
            if fields.is_empty() {
                "zorder (cells)".to_string()
            } else {
                format!("zorder [{}]", fields.join(", "))
            }
        }
        LayoutExpr::Transpose { .. } => "transpose".to_string(),
        LayoutExpr::Chunk { size, .. } => format!("chunk {size}"),
        LayoutExpr::Index { fields, .. } => format!("index [{}]", fields.join(", ")),
        LayoutExpr::Lsm { key, .. } => format!("lsm [{}]", key.join(", ")),
        LayoutExpr::Comprehension(_) => "comprehension".to_string(),
    };
    out.push_str(&pad);
    out.push_str(&header);
    out.push('\n');
    for child in expr.children() {
        explain_into(child, indent + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CodecSpec, LayoutExpr};

    #[test]
    fn intro_example_renders_compactly() {
        let e = LayoutExpr::table("Sales")
            .grid([("year", 1.0), ("zipcode", 100.0)])
            .zorder();
        assert_eq!(e.to_string(), "zorder(grid[year,zipcode;1,100](Sales))");
    }

    #[test]
    fn n4_case_study_rendering() {
        let n4 = LayoutExpr::table("Traces")
            .order_by(["t"])
            .group_by(["id"])
            .project(["lat", "lon"])
            .grid([("lat", 0.002), ("lon", 0.002)])
            .zorder()
            .delta(["lat", "lon"]);
        assert_eq!(
            n4.to_string(),
            "delta[lat,lon](zorder(grid[lat,lon;0.002,0.002](project[lat,lon](groupby[id](orderby[t](Traces))))))"
        );
    }

    #[test]
    fn select_and_fold_render() {
        use crate::comprehension::Condition;
        let e = LayoutExpr::table("T")
            .select(Condition::eq("Area", 617i64))
            .fold(["Area"], ["Zip", "Addr"]);
        assert_eq!(e.to_string(), "fold[Area|Zip,Addr](select[Area=617](T))");
    }

    #[test]
    fn compress_without_fields() {
        let e = LayoutExpr::table("T").compress(Vec::<String>::new(), CodecSpec::Rle);
        assert_eq!(e.to_string(), "rle(T)");
    }

    #[test]
    fn explain_tree_shape() {
        let e = LayoutExpr::table("T").project(["a"]).zorder();
        let text = explain(&e);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("zorder"));
        assert!(lines[1].trim_start().starts_with("project"));
        assert!(lines[2].trim_start().starts_with("table T"));
    }
}
