//! Textual front end for the storage algebra.
//!
//! The grammar mirrors the notation used in the paper and the rendering
//! produced by [`crate::display`]:
//!
//! ```text
//! expr      := transform | table
//! table     := IDENT
//! transform := NAME [ '[' args ']' ] '(' expr { ',' expr } ')'
//! ```
//!
//! Examples accepted by the parser:
//!
//! ```text
//! zorder(grid[year,zipcode;1,100](Sales))
//! delta[lat,lon](zorder(grid[lat,lon;0.002,0.002](project[lat,lon](Traces))))
//! fold[Area|Zip,Addr](select[Area=617](T))
//! orderby[t,id desc](vertical[lat,lon|t](Traces))
//! prejoin[cid](Orders, Customers)
//! ```
//!
//! Explicit list comprehensions, `append`, and predicate-based partitions
//! have no concrete syntax; build them programmatically instead.

use crate::comprehension::{CmpOp, Condition, ElemExpr};
use crate::expr::{CodecSpec, GridDim, LayoutExpr, PartitionBy, PaxSpec, SortKey, SortOrder};
use crate::value::Value;
use crate::{AlgebraError, Result};

/// Parses a storage-algebra expression from its textual form.
pub fn parse(input: &str) -> Result<LayoutExpr> {
    let mut parser = Parser::new(input);
    let expr = parser.parse_expr()?;
    parser.skip_ws();
    if !parser.at_end() {
        return Err(parser.error("unexpected trailing input"));
    }
    Ok(expr)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> AlgebraError {
        AlgebraError::Parse {
            position: self.pos,
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn eat(&mut self, c: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{c}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '.') {
            self.bump();
        }
        if self.pos == start {
            return Err(self.error("expected identifier"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    /// Parses either `expr` at this position.
    fn parse_expr(&mut self) -> Result<LayoutExpr> {
        self.skip_ws();
        let name = self.ident()?;
        self.skip_ws();
        match self.peek() {
            Some('[') | Some('(') => self.parse_transform(name),
            _ => Ok(LayoutExpr::Table(name)),
        }
    }

    fn parse_transform(&mut self, name: String) -> Result<LayoutExpr> {
        // Optional bracketed argument section.
        let args = if self.eat('[') {
            let start = self.pos;
            let mut depth = 1usize;
            while depth > 0 {
                match self.bump() {
                    Some('[') => depth += 1,
                    Some(']') => depth -= 1,
                    Some(_) => {}
                    None => return Err(self.error("unterminated `[` argument list")),
                }
            }
            Some(self.input[start..self.pos - 1].to_string())
        } else {
            None
        };

        self.expect('(')?;
        let mut inputs = vec![self.parse_expr()?];
        while self.eat(',') {
            inputs.push(self.parse_expr()?);
        }
        self.expect(')')?;

        build_transform(&name, args.as_deref(), inputs)
            .map_err(|e| self.rewrap(e))
    }

    fn rewrap(&self, e: AlgebraError) -> AlgebraError {
        match e {
            AlgebraError::Parse { message, .. } => AlgebraError::Parse {
                position: self.pos,
                message,
            },
            other => other,
        }
    }
}

fn parse_err(message: impl Into<String>) -> AlgebraError {
    AlgebraError::Parse {
        position: 0,
        message: message.into(),
    }
}

fn one_input(mut inputs: Vec<LayoutExpr>, name: &str) -> Result<LayoutExpr> {
    if inputs.len() != 1 {
        return Err(parse_err(format!(
            "`{name}` expects exactly one input, got {}",
            inputs.len()
        )));
    }
    Ok(inputs.remove(0))
}

fn split_names(args: &str) -> Vec<String> {
    args.split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

fn build_transform(
    name: &str,
    args: Option<&str>,
    inputs: Vec<LayoutExpr>,
) -> Result<LayoutExpr> {
    let lname = name.to_ascii_lowercase();
    match lname.as_str() {
        "project" => {
            let fields = split_names(args.ok_or_else(|| parse_err("project requires [fields]"))?);
            Ok(one_input(inputs, name)?.project(fields))
        }
        "select" => {
            let cond = parse_condition(args.ok_or_else(|| parse_err("select requires [cond]"))?)?;
            Ok(one_input(inputs, name)?.select(cond))
        }
        "partition" => {
            let args = args.ok_or_else(|| parse_err("partition requires [field] or [field;stride]"))?;
            let input = one_input(inputs, name)?;
            if let Some((field, stride)) = args.split_once(';') {
                let stride: f64 = stride
                    .trim()
                    .parse()
                    .map_err(|_| parse_err("invalid partition stride"))?;
                Ok(input.partition(PartitionBy::Stride(field.trim().to_string(), stride)))
            } else if args.contains('=') || args.contains("..") {
                Ok(input.partition(PartitionBy::Predicate(parse_condition(args)?)))
            } else {
                Ok(input.partition(PartitionBy::Field(args.trim().to_string())))
            }
        }
        "vertical" => {
            let args = args.ok_or_else(|| parse_err("vertical requires [a,b|c,...]"))?;
            let groups: Vec<Vec<String>> = args.split('|').map(split_names).collect();
            Ok(one_input(inputs, name)?.vertical(groups))
        }
        "rows" => Ok(LayoutExpr::RowMajor {
            input: Box::new(one_input(inputs, name)?),
        }),
        "columns" => Ok(LayoutExpr::ColumnMajor {
            input: Box::new(one_input(inputs, name)?),
        }),
        "pax" => {
            let input = one_input(inputs, name)?;
            match args {
                Some(a) => {
                    let n: usize = a
                        .trim()
                        .parse()
                        .map_err(|_| parse_err("pax expects a record count"))?;
                    Ok(input.pax_with(n))
                }
                None => Ok(LayoutExpr::Pax {
                    input: Box::new(input),
                    spec: PaxSpec::default(),
                }),
            }
        }
        "fold" => {
            let args = args.ok_or_else(|| parse_err("fold requires [key|values]"))?;
            let (key, values) = args
                .split_once('|')
                .ok_or_else(|| parse_err("fold requires [key|values]"))?;
            Ok(one_input(inputs, name)?.fold(split_names(key), split_names(values)))
        }
        "unfold" => Ok(one_input(inputs, name)?.unfold()),
        "prejoin" => {
            let attr = args.ok_or_else(|| parse_err("prejoin requires [join_attr]"))?;
            if inputs.len() != 2 {
                return Err(parse_err("prejoin expects two inputs"));
            }
            let mut it = inputs.into_iter();
            let left = it.next().expect("len checked");
            let right = it.next().expect("len checked");
            Ok(left.prejoin(right, attr.trim()))
        }
        "delta" | "rle" | "dict" | "bitpack" | "for" => {
            let codec = match lname.as_str() {
                "delta" => CodecSpec::Delta,
                "rle" => CodecSpec::Rle,
                "dict" => CodecSpec::Dictionary,
                "bitpack" => CodecSpec::BitPack,
                _ => CodecSpec::FrameOfReference,
            };
            let fields = args.map(split_names).unwrap_or_default();
            Ok(one_input(inputs, name)?.compress(fields, codec))
        }
        "orderby" => {
            let args = args.ok_or_else(|| parse_err("orderby requires [keys]"))?;
            let keys: Vec<SortKey> = split_names(args)
                .into_iter()
                .map(|spec| {
                    let lower = spec.to_ascii_lowercase();
                    if let Some(field) = lower.strip_suffix(" desc") {
                        SortKey {
                            field: spec[..field.len()].trim().to_string(),
                            order: SortOrder::Desc,
                        }
                    } else if let Some(field) = lower.strip_suffix(" asc") {
                        SortKey {
                            field: spec[..field.len()].trim().to_string(),
                            order: SortOrder::Asc,
                        }
                    } else {
                        SortKey::asc(spec)
                    }
                })
                .collect();
            Ok(one_input(inputs, name)?.order_by_keys(keys))
        }
        "groupby" => {
            let keys = split_names(args.ok_or_else(|| parse_err("groupby requires [keys]"))?);
            Ok(one_input(inputs, name)?.group_by(keys))
        }
        "limit" => {
            let n: usize = args
                .ok_or_else(|| parse_err("limit requires [n]"))?
                .trim()
                .parse()
                .map_err(|_| parse_err("limit expects an integer"))?;
            Ok(one_input(inputs, name)?.limit(n))
        }
        "grid" => {
            let args = args.ok_or_else(|| parse_err("grid requires [fields;strides]"))?;
            let (fields, strides) = args
                .split_once(';')
                .ok_or_else(|| parse_err("grid requires [fields;strides]"))?;
            let fields = split_names(fields);
            let strides: Vec<f64> = strides
                .split(',')
                .map(|s| s.trim().parse::<f64>())
                .collect::<std::result::Result<_, _>>()
                .map_err(|_| parse_err("invalid grid stride"))?;
            if fields.len() != strides.len() {
                return Err(parse_err("grid needs one stride per field"));
            }
            let dims: Vec<GridDim> = fields
                .into_iter()
                .zip(strides)
                .map(|(f, s)| GridDim::new(f, s))
                .collect();
            Ok(LayoutExpr::Grid {
                input: Box::new(one_input(inputs, name)?),
                dims,
            })
        }
        "zorder" => {
            let fields = args.map(split_names).unwrap_or_default();
            Ok(LayoutExpr::ZOrder {
                input: Box::new(one_input(inputs, name)?),
                fields,
            })
        }
        "transpose" => Ok(one_input(inputs, name)?.transpose()),
        "index" => {
            let fields = split_names(args.ok_or_else(|| parse_err("index requires [fields]"))?);
            if fields.is_empty() {
                return Err(parse_err("index requires at least one field"));
            }
            Ok(one_input(inputs, name)?.index(fields))
        }
        "lsm" => {
            let key = split_names(args.ok_or_else(|| parse_err("lsm requires [key]"))?);
            if key.is_empty() {
                return Err(parse_err("lsm requires at least one key field"));
            }
            Ok(one_input(inputs, name)?.lsm(key))
        }
        "chunk" => {
            let n: usize = args
                .ok_or_else(|| parse_err("chunk requires [size]"))?
                .trim()
                .parse()
                .map_err(|_| parse_err("chunk expects an integer"))?;
            Ok(one_input(inputs, name)?.chunk(n))
        }
        _ => Err(parse_err(format!("unknown transform `{name}`"))),
    }
}

/// Parses a condition: conjunctions of `field op literal` and
/// `field:lo..hi` range terms separated by `&`.
fn parse_condition(text: &str) -> Result<Condition> {
    let terms: Vec<&str> = text.split('&').map(str::trim).collect();
    let mut conditions = Vec::with_capacity(terms.len());
    for term in terms {
        if term.eq_ignore_ascii_case("true") || term.is_empty() {
            conditions.push(Condition::True);
            continue;
        }
        if let Some((field, range)) = term.split_once(':') {
            let (lo, hi) = range
                .split_once("..")
                .ok_or_else(|| parse_err("range condition requires lo..hi"))?;
            conditions.push(Condition::Range {
                field: field.trim().to_string(),
                lo: parse_literal(lo.trim())?,
                hi: parse_literal(hi.trim())?,
            });
            continue;
        }
        let (op, op_str) = if term.contains("!=") {
            (CmpOp::Ne, "!=")
        } else if term.contains(">=") {
            (CmpOp::Ge, ">=")
        } else if term.contains("<=") {
            (CmpOp::Le, "<=")
        } else if term.contains('>') {
            (CmpOp::Gt, ">")
        } else if term.contains('<') {
            (CmpOp::Lt, "<")
        } else if term.contains('=') {
            (CmpOp::Eq, "=")
        } else {
            return Err(parse_err(format!("cannot parse condition `{term}`")));
        };
        let (left, right) = term.split_once(op_str).expect("operator located above");
        conditions.push(Condition::Cmp {
            left: ElemExpr::field(left.trim()),
            op,
            right: ElemExpr::Literal(parse_literal(right.trim())?),
        });
    }
    Ok(if conditions.len() == 1 {
        conditions.remove(0)
    } else {
        Condition::And(conditions)
    })
}

fn parse_literal(text: &str) -> Result<Value> {
    if text.starts_with('"') && text.ends_with('"') && text.len() >= 2 {
        return Ok(Value::Str(text[1..text.len() - 1].to_string()));
    }
    if text.eq_ignore_ascii_case("true") {
        return Ok(Value::Bool(true));
    }
    if text.eq_ignore_ascii_case("false") {
        return Ok(Value::Bool(false));
    }
    if let Ok(i) = text.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = text.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Ok(Value::Str(text.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::TransformKind;

    #[test]
    fn parses_intro_example() {
        let e = parse("zorder(grid[year,zipcode;1,100](Sales))").unwrap();
        assert_eq!(e.kind(), TransformKind::ZOrder);
        assert_eq!(e.base_tables(), vec!["Sales"]);
        // Round-trip through display.
        assert_eq!(parse(&e.to_string()).unwrap(), e);
    }

    #[test]
    fn parses_case_study_n4() {
        let text = "delta[lat,lon](zorder(grid[lat,lon;0.002,0.002](project[lat,lon](groupby[id](orderby[t](Traces))))))";
        let e = parse(text).unwrap();
        assert_eq!(e.node_count(), 7);
        assert_eq!(e.to_string(), text);
    }

    #[test]
    fn parses_select_fold_and_prejoin() {
        let e = parse("fold[Area|Zip,Addr](select[Area=617](T))").unwrap();
        assert!(e.contains_kind(TransformKind::Fold));
        assert!(e.contains_kind(TransformKind::Select));

        let p = parse("prejoin[cid](Orders, Customers)").unwrap();
        assert_eq!(p.base_tables(), vec!["Orders", "Customers"]);
    }

    #[test]
    fn parses_orderby_desc_and_vertical_groups() {
        let e = parse("orderby[t,id desc](vertical[lat,lon|t](Traces))").unwrap();
        match &e {
            LayoutExpr::OrderBy { keys, .. } => {
                assert_eq!(keys[0].order, SortOrder::Asc);
                assert_eq!(keys[1].order, SortOrder::Desc);
                assert_eq!(keys[1].field, "id");
            }
            _ => panic!("expected orderby"),
        }
        let inner = e.input().unwrap();
        match inner {
            LayoutExpr::VerticalPartition { groups, .. } => {
                assert_eq!(groups, &vec![vec!["lat".to_string(), "lon".into()], vec!["t".into()]]);
            }
            _ => panic!("expected vertical"),
        }
    }

    #[test]
    fn parses_range_conditions() {
        let e = parse("select[lat:42.0..42.5 & lon:-71.2..-70.9](Traces)").unwrap();
        match &e {
            LayoutExpr::Select { predicate, .. } => match predicate {
                Condition::And(items) => assert_eq!(items.len(), 2),
                _ => panic!("expected conjunction"),
            },
            _ => panic!("expected select"),
        }
    }

    #[test]
    fn error_on_unknown_transform_and_trailing_input() {
        assert!(parse("frobnicate(T)").is_err());
        assert!(parse("rows(T) extra").is_err());
        assert!(parse("grid[a;](T)").is_err());
        assert!(parse("prejoin[k](A)").is_err());
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = parse("zorder( grid[ lat , lon ; 0.5, 0.5 ]( T ) )").unwrap();
        let b = parse("zorder(grid[lat,lon;0.5,0.5](T))").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn literal_parsing() {
        assert_eq!(parse_literal("42").unwrap(), Value::Int(42));
        assert_eq!(parse_literal("4.5").unwrap(), Value::Float(4.5));
        assert_eq!(parse_literal("\"x\"").unwrap(), Value::Str("x".into()));
        assert_eq!(parse_literal("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_literal("boston").unwrap(), Value::Str("boston".into()));
    }

    #[test]
    fn pax_and_chunk_and_limit() {
        let e = parse("pax[128](T)").unwrap();
        match &e {
            LayoutExpr::Pax { spec, .. } => assert_eq!(spec.records_per_page, 128),
            _ => panic!(),
        }
        assert!(matches!(parse("chunk[64](T)").unwrap(), LayoutExpr::Chunk { size: 64, .. }));
        assert!(matches!(parse("limit[9](T)").unwrap(), LayoutExpr::Limit { n: 9, .. }));
        assert!(matches!(parse("pax(T)").unwrap(), LayoutExpr::Pax { .. }));
    }
}
