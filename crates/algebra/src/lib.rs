//! # RodentStore storage algebra
//!
//! This crate implements the *storage algebra* described in "The Case for
//! RodentStore, an Adaptive, Declarative Storage System" (CIDR 2009). The
//! algebra is a declarative language for describing how a logical schema
//! should be laid out physically: expressions transform the canonical
//! row-major representation of a table into nested lists of rows, columns,
//! grid cells, arrays, compressed runs, and so on.
//!
//! The crate provides:
//!
//! * [`DataType`] / [`Value`] — the scalar and nested data model
//!   (`τ := int | float | string | … | l:τ | [τ1, …, τn]`).
//! * [`Schema`] / [`Field`] — logical table schemas.
//! * [`Nesting`] — runtime nested lists of elements, together with the
//!   *physical representation* `φ(N)` (left-to-right recursive flattening).
//! * [`LayoutExpr`] — the algebra AST: `project`, `select`, `partition`,
//!   `fold`/`unfold`, `prejoin`, `delta`, `compress`, `orderby`, `zorder`,
//!   `grid`, `transpose`, `chunk`, and explicit list
//!   [`Comprehension`]s.
//! * [`parse`] — a textual front end (`zorder(grid[lat,lon; 0.002,0.002](T))`).
//! * [`validate`] — static checking of an expression against a schema,
//!   producing the derived output description used by the interpreter.
//! * [`rewrite`] — algebraic equivalences used by the design optimizer to
//!   enumerate and canonicalize candidate layouts.
//!
//! The algebra is deliberately *higher level* than classical physical design
//! description languages: it describes the decomposition of logical tables
//! into relatively large chunks (objects) rather than byte-precise formats.
//! The companion `rodentstore_layout` crate interprets expressions into
//! on-disk structures.
//!
//! ```
//! use rodentstore_algebra::{Schema, Field, DataType, LayoutExpr, validate};
//!
//! let schema = Schema::new(
//!     "Traces",
//!     vec![
//!         Field::new("t", DataType::Int),
//!         Field::new("lat", DataType::Float),
//!         Field::new("lon", DataType::Float),
//!         Field::new("id", DataType::String),
//!     ],
//! );
//!
//! // N4 from the paper's case study: grid the (lat, lon) points, z-order the
//! // cells, and delta-compress the coordinates within each cell.
//! let expr = LayoutExpr::table("Traces")
//!     .project(["lat", "lon"])
//!     .grid([("lat", 0.002), ("lon", 0.002)])
//!     .zorder()
//!     .delta(["lat", "lon"]);
//!
//! let derived = validate::check(&expr, &schema).unwrap();
//! assert_eq!(derived.fields(), &["lat".to_string(), "lon".to_string()]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comprehension;
pub mod display;
pub mod expr;
pub mod nesting;
pub mod parser;
pub mod rewrite;
pub mod schema;
pub mod types;
pub mod validate;
pub mod value;

pub use comprehension::{Clause, Comprehension, Condition, ElemExpr, Generator};
pub use expr::{CodecSpec, GridDim, LayoutExpr, PaxSpec, SortKey, SortOrder, TransformKind};
pub use nesting::Nesting;
pub use parser::parse;
pub use schema::{Field, Schema};
pub use types::DataType;
pub use validate::{check, DerivedLayout};
pub use value::{Record, Value};

use std::fmt;

/// Errors produced while constructing, parsing, validating, or evaluating
/// storage-algebra expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// A referenced field does not exist in the input schema.
    UnknownField {
        /// Field name that could not be resolved.
        field: String,
        /// Name of the schema or nesting in which resolution was attempted.
        within: String,
    },
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A transform was applied to an input with an incompatible shape
    /// (e.g. `transpose` over a non-rectangular nesting).
    ShapeMismatch(String),
    /// A transform received invalid parameters (e.g. a zero grid stride).
    InvalidParameter(String),
    /// The textual parser failed.
    Parse {
        /// Byte offset of the error in the input string.
        position: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// Two values of incompatible types were combined.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually received.
        found: String,
    },
    /// A duplicate field name was introduced.
    DuplicateField(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::UnknownField { field, within } => {
                write!(f, "unknown field `{field}` in `{within}`")
            }
            AlgebraError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            AlgebraError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            AlgebraError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            AlgebraError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            AlgebraError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            AlgebraError::DuplicateField(name) => write!(f, "duplicate field `{name}`"),
        }
    }
}

impl std::error::Error for AlgebraError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;
