//! Nestings — the runtime structure manipulated by the storage algebra.
//!
//! A [`Nesting`] is an ordered list of elements, each of which is either an
//! atomic [`Value`] or another nesting. Nesting clauses `[·]` are the primary
//! construct of the algebra: column stores, PAX pages, grid cells, folded
//! groups, and arrays are all described as hierarchically organized chunks —
//! i.e. nestings.
//!
//! The *physical representation* `φ(N)` of a nesting is obtained by
//! recursively enumerating all entries from the leftmost one; it defines the
//! order in which data is written to disk (see [`Nesting::flatten`]).

use crate::value::Value;
use crate::{AlgebraError, Result};
use std::fmt;

/// A nested list of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Nesting {
    /// An atomic element.
    Atom(Value),
    /// An ordered list of sub-nestings `[e1, …, en]`.
    List(Vec<Nesting>),
}

impl Nesting {
    /// An empty nesting `[]`.
    pub fn empty() -> Nesting {
        Nesting::List(Vec::new())
    }

    /// Wraps a scalar value.
    pub fn atom(value: impl Into<Value>) -> Nesting {
        Nesting::Atom(value.into())
    }

    /// Builds a nesting from an iterator of sub-nestings.
    pub fn list(items: impl IntoIterator<Item = Nesting>) -> Nesting {
        Nesting::List(items.into_iter().collect())
    }

    /// Builds a flat nesting of atoms from an iterator of values.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Nesting {
        Nesting::List(values.into_iter().map(Nesting::Atom).collect())
    }

    /// Builds a two-level nesting from an iterator of records, the canonical
    /// row-major representation `[[r.A, r.B, …] | \r ← T]`.
    pub fn from_records<I, R>(records: I) -> Nesting
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = Value>,
    {
        Nesting::List(
            records
                .into_iter()
                .map(|r| Nesting::from_values(r))
                .collect(),
        )
    }

    /// Returns `true` if the nesting is an atom.
    pub fn is_atom(&self) -> bool {
        matches!(self, Nesting::Atom(_))
    }

    /// Returns the children if the nesting is a list.
    pub fn as_list(&self) -> Option<&[Nesting]> {
        match self {
            Nesting::List(items) => Some(items),
            Nesting::Atom(_) => None,
        }
    }

    /// Returns the wrapped value if the nesting is an atom.
    pub fn as_atom(&self) -> Option<&Value> {
        match self {
            Nesting::Atom(v) => Some(v),
            Nesting::List(_) => None,
        }
    }

    /// Number of first-level entries (atoms count as a single entry).
    pub fn len(&self) -> usize {
        match self {
            Nesting::Atom(_) => 1,
            Nesting::List(items) => items.len(),
        }
    }

    /// Whether the nesting contains no first-level entries.
    pub fn is_empty(&self) -> bool {
        matches!(self, Nesting::List(items) if items.is_empty())
    }

    /// Maximum nesting depth: an atom has depth 0, a flat list of atoms has
    /// depth 1, a list of lists of atoms has depth 2, and so on.
    pub fn depth(&self) -> usize {
        match self {
            Nesting::Atom(_) => 0,
            Nesting::List(items) => 1 + items.iter().map(Nesting::depth).max().unwrap_or(0),
        }
    }

    /// Total number of atoms contained anywhere in the nesting.
    pub fn atom_count(&self) -> usize {
        match self {
            Nesting::Atom(_) => 1,
            Nesting::List(items) => items.iter().map(Nesting::atom_count).sum(),
        }
    }

    /// The physical representation `φ(N)`: all atoms enumerated recursively
    /// starting from the leftmost entry. This is the order in which data is
    /// written to disk.
    pub fn flatten(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.atom_count());
        self.flatten_into(&mut out);
        out
    }

    fn flatten_into(&self, out: &mut Vec<Value>) {
        match self {
            Nesting::Atom(v) => out.push(v.clone()),
            Nesting::List(items) => {
                for item in items {
                    item.flatten_into(out);
                }
            }
        }
    }

    /// Iterates over the first-level entries.
    pub fn iter(&self) -> std::slice::Iter<'_, Nesting> {
        static EMPTY: [Nesting; 0] = [];
        match self {
            Nesting::List(items) => items.iter(),
            Nesting::Atom(_) => EMPTY.iter(),
        }
    }

    /// Returns the first-level entry at `index`.
    pub fn get(&self, index: usize) -> Option<&Nesting> {
        match self {
            Nesting::List(items) => items.get(index),
            Nesting::Atom(_) => None,
        }
    }

    /// Treats each first-level entry as a record (flat list of atoms) and
    /// returns them as value vectors. Errors if an entry is an atom or has
    /// nested children.
    pub fn to_records(&self) -> Result<Vec<Vec<Value>>> {
        let items = self.as_list().ok_or_else(|| {
            AlgebraError::ShapeMismatch("expected a list of records, found an atom".into())
        })?;
        let mut records = Vec::with_capacity(items.len());
        for entry in items {
            let row = entry.as_list().ok_or_else(|| {
                AlgebraError::ShapeMismatch(
                    "expected record entries to be lists of atoms".into(),
                )
            })?;
            let mut rec = Vec::with_capacity(row.len());
            for cell in row {
                match cell {
                    Nesting::Atom(v) => rec.push(v.clone()),
                    Nesting::List(_) => {
                        return Err(AlgebraError::ShapeMismatch(
                            "record cell is itself a nesting; unnest it first".into(),
                        ))
                    }
                }
            }
            records.push(rec);
        }
        Ok(records)
    }

    /// Checks that the nesting is rectangular at the top two levels (every
    /// first-level entry has the same number of children) and returns
    /// `(rows, cols)`.
    pub fn rectangular_shape(&self) -> Result<(usize, usize)> {
        let rows = self.as_list().ok_or_else(|| {
            AlgebraError::ShapeMismatch("expected a list, found an atom".into())
        })?;
        if rows.is_empty() {
            return Ok((0, 0));
        }
        let cols = rows[0].len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(AlgebraError::ShapeMismatch(format!(
                    "row {i} has {} entries, expected {cols}",
                    row.len()
                )));
            }
        }
        Ok((rows.len(), cols))
    }

    /// Matrix transposition over the top two levels:
    /// `transpose([[1,2,3],[4,5,6]]) = [[1,4],[2,5],[3,6]]`.
    pub fn transpose(&self) -> Result<Nesting> {
        let (rows, cols) = self.rectangular_shape()?;
        let data = self.as_list().expect("rectangular_shape checked list");
        let mut out: Vec<Vec<Nesting>> = (0..cols).map(|_| Vec::with_capacity(rows)).collect();
        for row in data {
            for (c, cell) in row.iter().enumerate() {
                out[c].push(cell.clone());
            }
        }
        Ok(Nesting::List(out.into_iter().map(Nesting::List).collect()))
    }

    /// Approximate serialized size in bytes of all atoms plus per-list
    /// overhead; used by the cost model.
    pub fn estimated_size(&self) -> usize {
        match self {
            Nesting::Atom(v) => v.estimated_size(),
            Nesting::List(items) => {
                4 + items.iter().map(Nesting::estimated_size).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for Nesting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Nesting::Atom(v) => write!(f, "{v}"),
            Nesting::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl<'a> IntoIterator for &'a Nesting {
    type Item = &'a Nesting;
    type IntoIter = std::slice::Iter<'a, Nesting>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_3x2() -> Nesting {
        // The paper's Nm = [[1, 2, 3], [4, 5, 6]] example.
        Nesting::from_records(vec![
            vec![Value::Int(1), Value::Int(2), Value::Int(3)],
            vec![Value::Int(4), Value::Int(5), Value::Int(6)],
        ])
    }

    #[test]
    fn flatten_is_left_to_right_recursive() {
        let n = Nesting::list([
            Nesting::from_values([Value::Int(1), Value::Int(2), Value::Int(3)]),
            Nesting::from_values([Value::Int(12), Value::Int(13), Value::Int(14)]),
        ]);
        let phi = n.flatten();
        assert_eq!(
            phi,
            vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3),
                Value::Int(12),
                Value::Int(13),
                Value::Int(14)
            ]
        );
    }

    #[test]
    fn depth_and_counts() {
        let n = matrix_3x2();
        assert_eq!(n.depth(), 2);
        assert_eq!(n.len(), 2);
        assert_eq!(n.atom_count(), 6);
        assert_eq!(Nesting::atom(5).depth(), 0);
        assert_eq!(Nesting::empty().depth(), 1);
    }

    #[test]
    fn transpose_matches_paper_example() {
        // transpose(Nm) = [[1, 4], [2, 5], [3, 6]]
        let t = matrix_3x2().transpose().unwrap();
        assert_eq!(
            t,
            Nesting::from_records(vec![
                vec![Value::Int(1), Value::Int(4)],
                vec![Value::Int(2), Value::Int(5)],
                vec![Value::Int(3), Value::Int(6)],
            ])
        );
        // transposing twice returns the original
        assert_eq!(t.transpose().unwrap(), matrix_3x2());
    }

    #[test]
    fn transpose_rejects_ragged() {
        let ragged = Nesting::from_records(vec![
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(3)],
        ]);
        assert!(matches!(
            ragged.transpose(),
            Err(AlgebraError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn to_records_round_trip() {
        let rows = vec![
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Int(2), Value::Str("b".into())],
        ];
        let n = Nesting::from_records(rows.clone());
        assert_eq!(n.to_records().unwrap(), rows);
    }

    #[test]
    fn to_records_rejects_nested_cells() {
        let n = Nesting::list([Nesting::list([Nesting::list([Nesting::atom(1i64)])])]);
        assert!(n.to_records().is_err());
    }

    #[test]
    fn empty_shape() {
        assert_eq!(Nesting::empty().rectangular_shape().unwrap(), (0, 0));
        assert!(Nesting::empty().is_empty());
    }

    #[test]
    fn display_is_bracketed() {
        assert_eq!(matrix_3x2().to_string(), "[[1, 2, 3], [4, 5, 6]]");
    }
}
