//! Algebraic rewrites over layout expressions.
//!
//! The storage algebra admits many syntactically different expressions that
//! denote the same physical layout. The design optimizer uses the rewrites in
//! this module to canonicalize candidates (so equivalent designs are costed
//! only once) and to simplify machine-generated expressions before they are
//! shown to administrators.
//!
//! The rules implemented here are *semantics-preserving*:
//!
//! * adjacent `project`s collapse into the outer one;
//! * an `orderby` directly above another `orderby` supersedes it;
//! * `transpose(transpose(N)) = N`;
//! * `unfold(fold(N)) = N`;
//! * `rows(rows(N)) = rows(N)` and the same for `columns`;
//! * a vertical partition directly above another vertical partition replaces
//!   it;
//! * `limit` above `limit` keeps the smaller bound;
//! * identical adjacent compression steps are deduplicated.

use crate::expr::LayoutExpr;

/// Applies all rewrite rules bottom-up until a fixpoint is reached.
pub fn simplify(expr: &LayoutExpr) -> LayoutExpr {
    let mut current = expr.clone();
    loop {
        let next = simplify_once(&current);
        if next == current {
            return current;
        }
        current = next;
    }
}

/// Two expressions are considered equivalent when their simplified forms are
/// structurally identical. This is a sound but incomplete check: it never
/// reports equivalence for layouts that differ, but may miss deeper
/// equivalences (e.g. comprehension vs. transform formulations).
pub fn equivalent(a: &LayoutExpr, b: &LayoutExpr) -> bool {
    simplify(a) == simplify(b)
}

fn simplify_once(expr: &LayoutExpr) -> LayoutExpr {
    // First simplify children, then try to rewrite this node.
    let rebuilt = rebuild_with_simplified_children(expr);
    rewrite_node(rebuilt)
}

fn rebuild_with_simplified_children(expr: &LayoutExpr) -> LayoutExpr {
    use LayoutExpr::*;
    match expr {
        Table(_) | Comprehension(_) => expr.clone(),
        Project { input, fields } => Project {
            input: Box::new(simplify_once(input)),
            fields: fields.clone(),
        },
        Append { input, fields } => Append {
            input: Box::new(simplify_once(input)),
            fields: fields.clone(),
        },
        Select { input, predicate } => Select {
            input: Box::new(simplify_once(input)),
            predicate: predicate.clone(),
        },
        Partition { input, by } => Partition {
            input: Box::new(simplify_once(input)),
            by: by.clone(),
        },
        VerticalPartition { input, groups } => VerticalPartition {
            input: Box::new(simplify_once(input)),
            groups: groups.clone(),
        },
        RowMajor { input } => RowMajor {
            input: Box::new(simplify_once(input)),
        },
        ColumnMajor { input } => ColumnMajor {
            input: Box::new(simplify_once(input)),
        },
        Pax { input, spec } => Pax {
            input: Box::new(simplify_once(input)),
            spec: spec.clone(),
        },
        Fold { input, key, values } => Fold {
            input: Box::new(simplify_once(input)),
            key: key.clone(),
            values: values.clone(),
        },
        Unfold { input } => Unfold {
            input: Box::new(simplify_once(input)),
        },
        Prejoin {
            left,
            right,
            join_attr,
        } => Prejoin {
            left: Box::new(simplify_once(left)),
            right: Box::new(simplify_once(right)),
            join_attr: join_attr.clone(),
        },
        Compress {
            input,
            fields,
            codec,
        } => Compress {
            input: Box::new(simplify_once(input)),
            fields: fields.clone(),
            codec: *codec,
        },
        OrderBy { input, keys } => OrderBy {
            input: Box::new(simplify_once(input)),
            keys: keys.clone(),
        },
        GroupBy { input, keys } => GroupBy {
            input: Box::new(simplify_once(input)),
            keys: keys.clone(),
        },
        Limit { input, n } => Limit {
            input: Box::new(simplify_once(input)),
            n: *n,
        },
        Grid { input, dims } => Grid {
            input: Box::new(simplify_once(input)),
            dims: dims.clone(),
        },
        ZOrder { input, fields } => ZOrder {
            input: Box::new(simplify_once(input)),
            fields: fields.clone(),
        },
        Transpose { input } => Transpose {
            input: Box::new(simplify_once(input)),
        },
        Chunk { input, size } => Chunk {
            input: Box::new(simplify_once(input)),
            size: *size,
        },
        Index { input, fields } => Index {
            input: Box::new(simplify_once(input)),
            fields: fields.clone(),
        },
        Lsm { input, key } => Lsm {
            input: Box::new(simplify_once(input)),
            key: key.clone(),
        },
    }
}

fn rewrite_node(expr: LayoutExpr) -> LayoutExpr {
    use LayoutExpr::*;
    match expr {
        // project[A](project[B](N)) = project[A](N)  (A must be a subset of B
        // for the expression to validate, so dropping the inner project is
        // always sound).
        Project { input, fields } => match *input {
            Project {
                input: inner_input, ..
            } => Project {
                input: inner_input,
                fields,
            },
            other => Project {
                input: Box::new(other),
                fields,
            },
        },
        // orderby[K1](orderby[K2](N)) = orderby[K1](N): the outer ordering
        // fully determines the physical order.
        OrderBy { input, keys } => match *input {
            OrderBy {
                input: inner_input, ..
            } => OrderBy {
                input: inner_input,
                keys,
            },
            other => OrderBy {
                input: Box::new(other),
                keys,
            },
        },
        // transpose(transpose(N)) = N
        Transpose { input } => match *input {
            Transpose { input: inner } => *inner,
            other => Transpose {
                input: Box::new(other),
            },
        },
        // unfold(fold(N)) = N
        Unfold { input } => match *input {
            Fold { input: inner, .. } => *inner,
            other => Unfold {
                input: Box::new(other),
            },
        },
        // rows(rows(N)) = rows(N); rows(columns(N)) = rows(N)
        RowMajor { input } => match *input {
            RowMajor { input: inner } | ColumnMajor { input: inner } => RowMajor { input: inner },
            other => RowMajor {
                input: Box::new(other),
            },
        },
        ColumnMajor { input } => match *input {
            ColumnMajor { input: inner } | RowMajor { input: inner } => {
                ColumnMajor { input: inner }
            }
            other => ColumnMajor {
                input: Box::new(other),
            },
        },
        // A vertical partition replaces a directly underlying one.
        VerticalPartition { input, groups } => match *input {
            VerticalPartition {
                input: inner_input, ..
            } => VerticalPartition {
                input: inner_input,
                groups,
            },
            other => VerticalPartition {
                input: Box::new(other),
                groups,
            },
        },
        // limit[a](limit[b](N)) = limit[min(a,b)](N)
        Limit { input, n } => match *input {
            Limit {
                input: inner_input,
                n: inner_n,
            } => Limit {
                input: inner_input,
                n: n.min(inner_n),
            },
            other => Limit {
                input: Box::new(other),
                n,
            },
        },
        // Identical adjacent index declarations collapse (one access path
        // per field set is enough).
        Index { input, fields } => match *input {
            Index {
                input: inner_input,
                fields: inner_fields,
            } if inner_fields == fields => Index {
                input: inner_input,
                fields,
            },
            other => Index {
                input: Box::new(other),
                fields,
            },
        },
        // Nested levelled tiers collapse: the outer memtable/runs subsume
        // the inner ones (one write buffer per table is enough).
        Lsm { input, key } => match *input {
            Lsm {
                input: inner_input, ..
            } => Lsm {
                input: inner_input,
                key,
            },
            other => Lsm {
                input: Box::new(other),
                key,
            },
        },
        // Identical adjacent compression steps collapse.
        Compress {
            input,
            fields,
            codec,
        } => match *input {
            Compress {
                input: inner_input,
                fields: inner_fields,
                codec: inner_codec,
            } if inner_fields == fields && inner_codec == codec => Compress {
                input: inner_input,
                fields,
                codec,
            },
            other => Compress {
                input: Box::new(other),
                fields,
                codec,
            },
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CodecSpec, LayoutExpr, TransformKind};

    #[test]
    fn double_transpose_cancels() {
        let e = LayoutExpr::table("T").transpose().transpose();
        assert_eq!(simplify(&e), LayoutExpr::table("T"));
    }

    #[test]
    fn nested_projects_collapse() {
        let e = LayoutExpr::table("T")
            .project(["a", "b", "c"])
            .project(["a", "b"])
            .project(["a"]);
        let s = simplify(&e);
        assert_eq!(s, LayoutExpr::table("T").project(["a"]));
    }

    #[test]
    fn outer_orderby_wins() {
        let e = LayoutExpr::table("T").order_by(["a"]).order_by(["b"]);
        let s = simplify(&e);
        match s {
            LayoutExpr::OrderBy { keys, input } => {
                assert_eq!(keys[0].field, "b");
                assert_eq!(*input, LayoutExpr::table("T"));
            }
            _ => panic!("expected orderby"),
        }
    }

    #[test]
    fn unfold_cancels_fold() {
        let e = LayoutExpr::table("T").fold(["a"], ["b"]).unfold();
        assert_eq!(simplify(&e), LayoutExpr::table("T"));
    }

    #[test]
    fn limits_take_minimum() {
        let e = LayoutExpr::table("T").limit(100).limit(10).limit(50);
        match simplify(&e) {
            LayoutExpr::Limit { n, .. } => assert_eq!(n, 10),
            _ => panic!("expected limit"),
        }
    }

    #[test]
    fn row_column_idempotence() {
        let e = LayoutExpr::table("T").rows().rows();
        assert_eq!(simplify(&e).node_count(), 2);
        let e2 = LayoutExpr::table("T").rows().column_major();
        let s2 = simplify(&e2);
        assert_eq!(s2.kind(), TransformKind::ColumnMajor);
        assert_eq!(s2.node_count(), 2);
    }

    #[test]
    fn duplicate_compression_collapses_but_distinct_kept() {
        let dup = LayoutExpr::table("T")
            .delta(["a"])
            .delta(["a"]);
        assert_eq!(simplify(&dup).node_count(), 2);

        let distinct = LayoutExpr::table("T")
            .delta(["a"])
            .compress(["a"], CodecSpec::Rle);
        assert_eq!(simplify(&distinct).node_count(), 3);
    }

    #[test]
    fn vertical_partition_replacement() {
        let e = LayoutExpr::table("T")
            .vertical([vec!["a"], vec!["b"]])
            .vertical([vec!["a", "b"]]);
        match simplify(&e) {
            LayoutExpr::VerticalPartition { groups, input } => {
                assert_eq!(groups, vec![vec!["a".to_string(), "b".into()]]);
                assert_eq!(*input, LayoutExpr::table("T"));
            }
            _ => panic!("expected vertical partition"),
        }
    }

    #[test]
    fn equivalence_is_reflexive_and_detects_simplified_pairs() {
        let a = LayoutExpr::table("T").transpose().transpose().project(["x"]);
        let b = LayoutExpr::table("T").project(["x"]);
        assert!(equivalent(&a, &b));
        let c = LayoutExpr::table("T").project(["y"]);
        assert!(!equivalent(&a, &c));
    }

    #[test]
    fn simplify_reaches_fixpoint_on_deep_chains() {
        let mut e = LayoutExpr::table("T");
        for _ in 0..6 {
            e = e.transpose();
        }
        assert_eq!(simplify(&e), LayoutExpr::table("T"));
        let mut o = LayoutExpr::table("T");
        for i in 0..5 {
            o = o.order_by([format!("f{i}")]);
        }
        assert_eq!(simplify(&o).node_count(), 2);
    }
}
