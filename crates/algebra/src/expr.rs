//! The storage-algebra expression AST.
//!
//! A [`LayoutExpr`] describes a physical layout as a transformation of the
//! canonical row-major representation of a logical table. Expressions are
//! built either with the fluent builder methods on [`LayoutExpr`], with the
//! textual [`crate::parse`] front end, or programmatically by a database
//! design tool such as the `rodentstore_optimizer` crate.
//!
//! The operators follow the paper's Section 3.5 taxonomy:
//!
//! * **Data co-location & isolation** — [`LayoutExpr::Project`],
//!   [`LayoutExpr::Append`], [`LayoutExpr::Select`],
//!   [`LayoutExpr::Partition`], [`LayoutExpr::VerticalPartition`],
//!   [`LayoutExpr::RowMajor`], [`LayoutExpr::ColumnMajor`],
//!   [`LayoutExpr::Pax`].
//! * **Data reduction** — [`LayoutExpr::Fold`], [`LayoutExpr::Unfold`],
//!   [`LayoutExpr::Prejoin`], [`LayoutExpr::Compress`] (delta, RLE,
//!   dictionary, bit-packing, frame-of-reference).
//! * **Data reordering** — [`LayoutExpr::OrderBy`], [`LayoutExpr::GroupBy`],
//!   [`LayoutExpr::ZOrder`].
//! * **Arrays** — [`LayoutExpr::Grid`], [`LayoutExpr::Transpose`],
//!   [`LayoutExpr::Chunk`].
//! * **List comprehensions** — [`LayoutExpr::Comprehension`].

use crate::comprehension::{Comprehension, Condition};
use crate::schema::Field;
use std::fmt;

/// Ascending or descending sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// Ascending (the default).
    Asc,
    /// Descending.
    Desc,
}

impl fmt::Display for SortOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SortOrder::Asc => write!(f, "asc"),
            SortOrder::Desc => write!(f, "desc"),
        }
    }
}

/// A single sort key: field name plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Field to sort on.
    pub field: String,
    /// Sort direction.
    pub order: SortOrder,
}

impl SortKey {
    /// Ascending sort key.
    pub fn asc(field: impl Into<String>) -> SortKey {
        SortKey {
            field: field.into(),
            order: SortOrder::Asc,
        }
    }

    /// Descending sort key.
    pub fn desc(field: impl Into<String>) -> SortKey {
        SortKey {
            field: field.into(),
            order: SortOrder::Desc,
        }
    }
}

/// A gridding dimension: `grid[A1,…,An],[stride1,…,striden](N)` repartitions
/// tuples along `n` discretized dimensions; each dimension is an attribute
/// plus the width of one cell along that attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct GridDim {
    /// Attribute being discretized.
    pub field: String,
    /// Cell width along this attribute (in attribute units).
    pub stride: f64,
}

impl GridDim {
    /// Creates a grid dimension.
    pub fn new(field: impl Into<String>, stride: f64) -> GridDim {
        GridDim {
            field: field.into(),
            stride,
        }
    }
}

/// Compression schemes the algebra can request on a set of fields. The
/// corresponding codecs live in the `rodentstore_compress` crate; here we
/// only name them declaratively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecSpec {
    /// Delta compression `∆(N)`: store differences between subsequent
    /// elements. Ideal for time series and slowly varying coordinates.
    Delta,
    /// Run-length encoding.
    Rle,
    /// Dictionary encoding for low-cardinality columns.
    Dictionary,
    /// Bit-packing of small integers.
    BitPack,
    /// Frame-of-reference encoding (offsets from a per-block base).
    FrameOfReference,
}

impl fmt::Display for CodecSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecSpec::Delta => write!(f, "delta"),
            CodecSpec::Rle => write!(f, "rle"),
            CodecSpec::Dictionary => write!(f, "dict"),
            CodecSpec::BitPack => write!(f, "bitpack"),
            CodecSpec::FrameOfReference => write!(f, "for"),
        }
    }
}

/// Parameters for the PAX layout (partition attributes across mini-pages
/// within a page).
#[derive(Debug, Clone, PartialEq)]
pub struct PaxSpec {
    /// Number of records grouped into one PAX page before being split into
    /// per-attribute mini-pages.
    pub records_per_page: usize,
}

impl Default for PaxSpec {
    fn default() -> Self {
        PaxSpec {
            records_per_page: 256,
        }
    }
}

/// How a horizontal `partition` subdivides the first-level entries.
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionBy {
    /// Tuples satisfying the condition go to the first partition, the rest to
    /// the second (isolation of hot/frequently-updated subsets).
    Predicate(Condition),
    /// One partition per distinct value of the field.
    Field(String),
    /// Discretize a numeric field with the given stride; one partition per
    /// bucket (a one-dimensional `grid`).
    Stride(String, f64),
}

/// The storage-algebra expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutExpr {
    /// Reference to a logical table in its canonical row-major order.
    Table(String),
    /// `project[Ai,…,Aj](N)` — isolate a subset of attributes.
    Project {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Attributes to keep, in output order.
        fields: Vec<String>,
    },
    /// `append([e1,…,em], N)` — attach additional (constant or derived)
    /// fields to every tuple; the reciprocal of `project`.
    Append {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// New fields with their declared types.
        fields: Vec<Field>,
    },
    /// `select_C(N)` — keep only tuples satisfying the condition.
    Select {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Filter condition.
        predicate: Condition,
    },
    /// `partition_C(N)` — horizontal partitioning of first-level entries.
    Partition {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Partitioning rule.
        by: PartitionBy,
    },
    /// Vertical partitioning into column groups. Each group becomes a
    /// separately stored object; `[[a],[b],[c]]` is the full decomposition
    /// storage model (one column per object).
    VerticalPartition {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Column groups (each inner vector is stored together).
        groups: Vec<Vec<String>>,
    },
    /// Explicit row-major representation `[[r.A, r.B, …] | \r ← N]`.
    RowMajor {
        /// Input expression.
        input: Box<LayoutExpr>,
    },
    /// Explicit column-major representation
    /// `[[r.A | \r ← N], [r.B | \r ← N], …]`.
    ColumnMajor {
        /// Input expression.
        input: Box<LayoutExpr>,
    },
    /// PAX: group records into pages, store each attribute in a mini-page.
    Pax {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// PAX parameters.
        spec: PaxSpec,
    },
    /// `fold_{B,A}(N)` — for each value of the key attributes `A`, nest the
    /// co-occurring values of attributes `B`.
    Fold {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Key attributes `A`.
        key: Vec<String>,
        /// Nested attributes `B`.
        values: Vec<String>,
    },
    /// `unfold(N)` — reverse of `fold`.
    Unfold {
        /// Input expression.
        input: Box<LayoutExpr>,
    },
    /// `prejoin_joinatt(N1, N2)` — denormalize two tables on a join
    /// attribute so they can be stored together (typically followed by
    /// `fold` to remove the introduced redundancy).
    Prejoin {
        /// Left input.
        left: Box<LayoutExpr>,
        /// Right input.
        right: Box<LayoutExpr>,
        /// Join attribute (must exist in both schemas).
        join_attr: String,
    },
    /// Apply a compression scheme to a set of fields. `∆(N)` is
    /// `Compress { codec: Delta, .. }`.
    Compress {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Fields to compress (empty = all fields).
        fields: Vec<String>,
        /// Compression scheme.
        codec: CodecSpec,
    },
    /// `orderby` clause — reorder tuples by the sort keys.
    OrderBy {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// `groupby` clause — regroup tuples into sub-nestings by key equality.
    GroupBy {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Grouping keys.
        keys: Vec<String>,
    },
    /// `limit` clause — keep only the first `n` entries.
    Limit {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Maximum number of first-level entries to keep.
        n: usize,
    },
    /// `grid[A1,…,An],[s1,…,sn](N)` — create an n-dimensional array by
    /// repartitioning tuples along discretized dimensions.
    Grid {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Grid dimensions.
        dims: Vec<GridDim>,
    },
    /// `zorder(N)` — rearrange first- and second-order entries along a
    /// Z-order (Morton) space-filling curve. With `fields` empty the
    /// transform orders the cells of an underlying `grid` by their cell
    /// coordinates; otherwise it interleaves the binary representation of
    /// the named attributes directly.
    ZOrder {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Attributes to interleave (empty = underlying grid cell indices).
        fields: Vec<String>,
    },
    /// `transpose(N)` — matrix transposition of a two-level nesting.
    Transpose {
        /// Input expression.
        input: Box<LayoutExpr>,
    },
    /// Chunk a (possibly multidimensional) nesting into fixed-size chunks for
    /// storage, as in array chunking.
    Chunk {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Records (or cells) per chunk.
        size: usize,
    },
    /// `index[A1,…,An](N)` — declare a persistent secondary index over the
    /// named attributes, rendered alongside the base layout. One attribute
    /// yields a B-tree; two attributes yield an R-tree whose leaves are
    /// packed along a space-filling curve. The index changes no tuple and no
    /// storage order — it only adds an access path the scan planner can push
    /// point and range predicates through.
    Index {
        /// Input expression.
        input: Box<LayoutExpr>,
        /// Attributes to index (1 = B-tree, 2 = R-tree).
        fields: Vec<String>,
    },
    /// `lsm[A1,…,An](N)` — a write-optimized levelled tier over the inner
    /// layout. Appended tuples land in an in-memory memtable, spill into
    /// sorted immutable runs (keyed on the named attributes), and are merged
    /// into deeper levels by incremental compaction; the inner expression
    /// still governs how the bulk-rendered base is stored. Scans read the
    /// base, then the runs (deepest level first), then the memtable.
    Lsm {
        /// Input expression (governs the bulk-rendered base).
        input: Box<LayoutExpr>,
        /// Attributes runs are sorted on.
        key: Vec<String>,
    },
    /// An explicit list comprehension.
    Comprehension(Comprehension),
}

/// Discriminant describing what kind of transform a node is; used by the
/// optimizer and by diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TransformKind {
    Table,
    Project,
    Append,
    Select,
    Partition,
    VerticalPartition,
    RowMajor,
    ColumnMajor,
    Pax,
    Fold,
    Unfold,
    Prejoin,
    Compress,
    OrderBy,
    GroupBy,
    Limit,
    Grid,
    ZOrder,
    Transpose,
    Chunk,
    Index,
    Lsm,
    Comprehension,
}

impl LayoutExpr {
    /// Base table reference.
    pub fn table(name: impl Into<String>) -> LayoutExpr {
        LayoutExpr::Table(name.into())
    }

    /// `project[fields](self)`.
    pub fn project<I, S>(self, fields: I) -> LayoutExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LayoutExpr::Project {
            input: Box::new(self),
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }

    /// `append(fields, self)`.
    pub fn append(self, fields: Vec<Field>) -> LayoutExpr {
        LayoutExpr::Append {
            input: Box::new(self),
            fields,
        }
    }

    /// `select_predicate(self)`.
    pub fn select(self, predicate: Condition) -> LayoutExpr {
        LayoutExpr::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Horizontal partition.
    pub fn partition(self, by: PartitionBy) -> LayoutExpr {
        LayoutExpr::Partition {
            input: Box::new(self),
            by,
        }
    }

    /// Vertical partition into explicit column groups.
    pub fn vertical<I, G, S>(self, groups: I) -> LayoutExpr
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LayoutExpr::VerticalPartition {
            input: Box::new(self),
            groups: groups
                .into_iter()
                .map(|g| g.into_iter().map(Into::into).collect())
                .collect(),
        }
    }

    /// Full column decomposition (DSM): one group per field of the schema.
    /// Field names must be supplied because the expression does not know its
    /// schema until validation.
    pub fn columns<I, S>(self, fields: I) -> LayoutExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let groups: Vec<Vec<String>> = fields
            .into_iter()
            .map(|f| vec![f.into()])
            .collect();
        LayoutExpr::VerticalPartition {
            input: Box::new(self),
            groups,
        }
    }

    /// Explicit row-major layout.
    pub fn rows(self) -> LayoutExpr {
        LayoutExpr::RowMajor {
            input: Box::new(self),
        }
    }

    /// Explicit column-major layout.
    pub fn column_major(self) -> LayoutExpr {
        LayoutExpr::ColumnMajor {
            input: Box::new(self),
        }
    }

    /// PAX layout with the default mini-page grouping.
    pub fn pax(self) -> LayoutExpr {
        LayoutExpr::Pax {
            input: Box::new(self),
            spec: PaxSpec::default(),
        }
    }

    /// PAX layout with an explicit records-per-page grouping.
    pub fn pax_with(self, records_per_page: usize) -> LayoutExpr {
        LayoutExpr::Pax {
            input: Box::new(self),
            spec: PaxSpec { records_per_page },
        }
    }

    /// `fold_{values,key}(self)`.
    pub fn fold<I, J, S, T>(self, key: I, values: J) -> LayoutExpr
    where
        I: IntoIterator<Item = S>,
        J: IntoIterator<Item = T>,
        S: Into<String>,
        T: Into<String>,
    {
        LayoutExpr::Fold {
            input: Box::new(self),
            key: key.into_iter().map(Into::into).collect(),
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// `unfold(self)`.
    pub fn unfold(self) -> LayoutExpr {
        LayoutExpr::Unfold {
            input: Box::new(self),
        }
    }

    /// `prejoin_join_attr(self, right)`.
    pub fn prejoin(self, right: LayoutExpr, join_attr: impl Into<String>) -> LayoutExpr {
        LayoutExpr::Prejoin {
            left: Box::new(self),
            right: Box::new(right),
            join_attr: join_attr.into(),
        }
    }

    /// Delta-compress the given fields (`∆`).
    pub fn delta<I, S>(self, fields: I) -> LayoutExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.compress(fields, CodecSpec::Delta)
    }

    /// Apply an arbitrary compression scheme to the given fields.
    pub fn compress<I, S>(self, fields: I, codec: CodecSpec) -> LayoutExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LayoutExpr::Compress {
            input: Box::new(self),
            fields: fields.into_iter().map(Into::into).collect(),
            codec,
        }
    }

    /// `orderby` with ascending keys.
    pub fn order_by<I, S>(self, fields: I) -> LayoutExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LayoutExpr::OrderBy {
            input: Box::new(self),
            keys: fields.into_iter().map(|f| SortKey::asc(f)).collect(),
        }
    }

    /// `orderby` with explicit sort keys.
    pub fn order_by_keys(self, keys: Vec<SortKey>) -> LayoutExpr {
        LayoutExpr::OrderBy {
            input: Box::new(self),
            keys,
        }
    }

    /// `groupby` clause.
    pub fn group_by<I, S>(self, fields: I) -> LayoutExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LayoutExpr::GroupBy {
            input: Box::new(self),
            keys: fields.into_iter().map(Into::into).collect(),
        }
    }

    /// `limit n`.
    pub fn limit(self, n: usize) -> LayoutExpr {
        LayoutExpr::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// `grid[dims](self)` with `(field, stride)` pairs.
    pub fn grid<I, S>(self, dims: I) -> LayoutExpr
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        LayoutExpr::Grid {
            input: Box::new(self),
            dims: dims
                .into_iter()
                .map(|(f, s)| GridDim::new(f, s))
                .collect(),
        }
    }

    /// `zorder(self)` over the underlying grid cells.
    pub fn zorder(self) -> LayoutExpr {
        LayoutExpr::ZOrder {
            input: Box::new(self),
            fields: Vec::new(),
        }
    }

    /// `zorder` interleaving the named attributes directly.
    pub fn zorder_on<I, S>(self, fields: I) -> LayoutExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LayoutExpr::ZOrder {
            input: Box::new(self),
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }

    /// `transpose(self)`.
    pub fn transpose(self) -> LayoutExpr {
        LayoutExpr::Transpose {
            input: Box::new(self),
        }
    }

    /// Chunk into fixed-size pieces.
    pub fn chunk(self, size: usize) -> LayoutExpr {
        LayoutExpr::Chunk {
            input: Box::new(self),
            size,
        }
    }

    /// `index[fields](self)` — declare a secondary index over the fields.
    pub fn index<I, S>(self, fields: I) -> LayoutExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LayoutExpr::Index {
            input: Box::new(self),
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }

    /// `lsm[key](self)` — wrap in a write-optimized levelled tier whose runs
    /// are sorted on `key`.
    pub fn lsm<I, S>(self, key: I) -> LayoutExpr
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        LayoutExpr::Lsm {
            input: Box::new(self),
            key: key.into_iter().map(Into::into).collect(),
        }
    }

    /// The discriminant of this node.
    pub fn kind(&self) -> TransformKind {
        match self {
            LayoutExpr::Table(_) => TransformKind::Table,
            LayoutExpr::Project { .. } => TransformKind::Project,
            LayoutExpr::Append { .. } => TransformKind::Append,
            LayoutExpr::Select { .. } => TransformKind::Select,
            LayoutExpr::Partition { .. } => TransformKind::Partition,
            LayoutExpr::VerticalPartition { .. } => TransformKind::VerticalPartition,
            LayoutExpr::RowMajor { .. } => TransformKind::RowMajor,
            LayoutExpr::ColumnMajor { .. } => TransformKind::ColumnMajor,
            LayoutExpr::Pax { .. } => TransformKind::Pax,
            LayoutExpr::Fold { .. } => TransformKind::Fold,
            LayoutExpr::Unfold { .. } => TransformKind::Unfold,
            LayoutExpr::Prejoin { .. } => TransformKind::Prejoin,
            LayoutExpr::Compress { .. } => TransformKind::Compress,
            LayoutExpr::OrderBy { .. } => TransformKind::OrderBy,
            LayoutExpr::GroupBy { .. } => TransformKind::GroupBy,
            LayoutExpr::Limit { .. } => TransformKind::Limit,
            LayoutExpr::Grid { .. } => TransformKind::Grid,
            LayoutExpr::ZOrder { .. } => TransformKind::ZOrder,
            LayoutExpr::Transpose { .. } => TransformKind::Transpose,
            LayoutExpr::Chunk { .. } => TransformKind::Chunk,
            LayoutExpr::Index { .. } => TransformKind::Index,
            LayoutExpr::Lsm { .. } => TransformKind::Lsm,
            LayoutExpr::Comprehension(_) => TransformKind::Comprehension,
        }
    }

    /// Direct child expressions of this node.
    pub fn children(&self) -> Vec<&LayoutExpr> {
        match self {
            LayoutExpr::Table(_) | LayoutExpr::Comprehension(_) => Vec::new(),
            LayoutExpr::Prejoin { left, right, .. } => vec![left, right],
            LayoutExpr::Project { input, .. }
            | LayoutExpr::Append { input, .. }
            | LayoutExpr::Select { input, .. }
            | LayoutExpr::Partition { input, .. }
            | LayoutExpr::VerticalPartition { input, .. }
            | LayoutExpr::RowMajor { input }
            | LayoutExpr::ColumnMajor { input }
            | LayoutExpr::Pax { input, .. }
            | LayoutExpr::Fold { input, .. }
            | LayoutExpr::Unfold { input }
            | LayoutExpr::Compress { input, .. }
            | LayoutExpr::OrderBy { input, .. }
            | LayoutExpr::GroupBy { input, .. }
            | LayoutExpr::Limit { input, .. }
            | LayoutExpr::Grid { input, .. }
            | LayoutExpr::ZOrder { input, .. }
            | LayoutExpr::Transpose { input }
            | LayoutExpr::Chunk { input, .. }
            | LayoutExpr::Index { input, .. }
            | LayoutExpr::Lsm { input, .. } => vec![input],
        }
    }

    /// The single input expression, if this node has exactly one child.
    pub fn input(&self) -> Option<&LayoutExpr> {
        let children = self.children();
        if children.len() == 1 {
            Some(children[0])
        } else {
            None
        }
    }

    /// All base table names referenced anywhere in the expression.
    pub fn base_tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut Vec<String>) {
        match self {
            LayoutExpr::Table(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            LayoutExpr::Comprehension(c) => {
                for t in c.base_tables() {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
            _ => {
                for child in self.children() {
                    child.collect_tables(out);
                }
            }
        }
    }

    /// Number of nodes in the expression tree (used as a complexity measure
    /// by the design optimizer).
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Depth of the expression tree.
    pub fn depth(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.depth())
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if any node in the tree satisfies the predicate.
    pub fn any(&self, pred: &dyn Fn(&LayoutExpr) -> bool) -> bool {
        if pred(self) {
            return true;
        }
        self.children().iter().any(|c| c.any(pred))
    }

    /// Returns `true` if the expression contains a node of the given kind.
    pub fn contains_kind(&self, kind: TransformKind) -> bool {
        self.any(&|e| e.kind() == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's introductory example: `zorder(grid[y, z](N))` over sales
    /// records.
    fn sales_expr() -> LayoutExpr {
        LayoutExpr::table("Sales")
            .grid([("year", 1.0), ("zipcode", 100.0)])
            .zorder()
    }

    #[test]
    fn builder_produces_expected_tree() {
        let e = sales_expr();
        assert_eq!(e.kind(), TransformKind::ZOrder);
        let grid = e.input().unwrap();
        assert_eq!(grid.kind(), TransformKind::Grid);
        match grid {
            LayoutExpr::Grid { dims, .. } => {
                assert_eq!(dims.len(), 2);
                assert_eq!(dims[0].field, "year");
                assert_eq!(dims[1].stride, 100.0);
            }
            _ => panic!("expected grid"),
        }
        assert_eq!(grid.input().unwrap().kind(), TransformKind::Table);
    }

    #[test]
    fn case_study_n4_structure() {
        // N4 = delta(zorder(grid(project(orderby/groupby(Traces)))))
        let n4 = LayoutExpr::table("Traces")
            .order_by(["t"])
            .group_by(["id"])
            .project(["lat", "lon"])
            .grid([("lat", 0.002), ("lon", 0.002)])
            .zorder()
            .delta(["lat", "lon"]);
        assert_eq!(n4.node_count(), 7);
        assert_eq!(n4.depth(), 7);
        assert!(n4.contains_kind(TransformKind::Grid));
        assert!(n4.contains_kind(TransformKind::Compress));
        assert!(!n4.contains_kind(TransformKind::Fold));
        assert_eq!(n4.base_tables(), vec!["Traces"]);
    }

    #[test]
    fn prejoin_has_two_children() {
        let e = LayoutExpr::table("Orders").prejoin(LayoutExpr::table("Customers"), "cid");
        assert_eq!(e.children().len(), 2);
        assert_eq!(e.input(), None);
        assert_eq!(e.base_tables(), vec!["Orders", "Customers"]);
    }

    #[test]
    fn columns_builder_creates_singleton_groups() {
        let e = LayoutExpr::table("T").columns(["a", "b", "c"]);
        match &e {
            LayoutExpr::VerticalPartition { groups, .. } => {
                assert_eq!(groups.len(), 3);
                assert!(groups.iter().all(|g| g.len() == 1));
            }
            _ => panic!("expected vertical partition"),
        }
    }

    #[test]
    fn duplicate_table_references_deduplicated() {
        let e = LayoutExpr::table("T").prejoin(LayoutExpr::table("T"), "k");
        assert_eq!(e.base_tables(), vec!["T"]);
    }

    #[test]
    fn sort_key_constructors() {
        assert_eq!(SortKey::asc("a").order, SortOrder::Asc);
        assert_eq!(SortKey::desc("a").order, SortOrder::Desc);
    }
}
