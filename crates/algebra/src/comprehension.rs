//! List comprehensions and the small expression language used inside them.
//!
//! The storage algebra defines nestings through list comprehensions of the
//! generic form `e(v) | \v ← N, C` where `\v ← N` is a *generator* binding a
//! variable to successive elements of an existing nesting, `C` is a set of
//! *conditions* and *clauses* (`limit`, `orderby`, `groupby`, `partitionby`),
//! and `e` describes the elements of the resulting nesting.
//!
//! The same expression language ([`ElemExpr`]) and condition language
//! ([`Condition`]) are reused by `select` predicates throughout the system,
//! so evaluation helpers over records are provided here.

use crate::expr::{SortKey, SortOrder};
use crate::schema::Schema;
use crate::value::{Record, Value};
use crate::{AlgebraError, Result};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators usable in conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering result.
    pub fn matches(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Element expressions: the right-hand side of comprehension heads and the
/// operands of conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum ElemExpr {
    /// A literal value.
    Literal(Value),
    /// A field of the record bound by the (single, implicit) generator
    /// variable, e.g. `r.Zip`.
    Field(String),
    /// The position of the current element within its nesting, `pos()`.
    Pos,
    /// The number of elements in the input nesting, `count()`.
    Count,
    /// Binary representation of a numeric expression, `bin(e)` — evaluates
    /// to the integer value itself; the bit view is taken by `interleave`.
    Bin(Box<ElemExpr>),
    /// Bit interleaving of two or more expressions (used to express
    /// z-ordering), `interleave(a, b, …)`.
    Interleave(Vec<ElemExpr>),
    /// Subtraction, used by the delta transform definition.
    Sub(Box<ElemExpr>, Box<ElemExpr>),
    /// Addition.
    Add(Box<ElemExpr>, Box<ElemExpr>),
}

impl ElemExpr {
    /// Shorthand for a field reference.
    pub fn field(name: impl Into<String>) -> ElemExpr {
        ElemExpr::Field(name.into())
    }

    /// Shorthand for a literal.
    pub fn lit(value: impl Into<Value>) -> ElemExpr {
        ElemExpr::Literal(value.into())
    }

    /// All field names referenced by this expression.
    pub fn referenced_fields(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_fields(&mut out);
        out
    }

    fn collect_fields(&self, out: &mut Vec<String>) {
        match self {
            ElemExpr::Field(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            ElemExpr::Bin(inner) => inner.collect_fields(out),
            ElemExpr::Interleave(items) => {
                for item in items {
                    item.collect_fields(out);
                }
            }
            ElemExpr::Sub(a, b) | ElemExpr::Add(a, b) => {
                a.collect_fields(out);
                b.collect_fields(out);
            }
            ElemExpr::Literal(_) | ElemExpr::Pos | ElemExpr::Count => {}
        }
    }

    /// Evaluates the expression against a record. `pos` is the index of the
    /// record within its nesting and `count` the total number of records.
    pub fn eval(
        &self,
        schema: &Schema,
        record: &Record,
        pos: usize,
        count: usize,
    ) -> Result<Value> {
        match self {
            ElemExpr::Literal(v) => Ok(v.clone()),
            ElemExpr::Field(name) => {
                let idx = schema.index_of(name)?;
                Ok(record[idx].clone())
            }
            ElemExpr::Pos => Ok(Value::Int(pos as i64)),
            ElemExpr::Count => Ok(Value::Int(count as i64)),
            ElemExpr::Bin(inner) => {
                let v = inner.eval(schema, record, pos, count)?;
                let i = v.as_i64().ok_or_else(|| AlgebraError::TypeMismatch {
                    expected: "integer for bin()".into(),
                    found: v.data_type().to_string(),
                })?;
                Ok(Value::Int(i))
            }
            ElemExpr::Interleave(items) => {
                let mut parts = Vec::with_capacity(items.len());
                for item in items {
                    let v = item.eval(schema, record, pos, count)?;
                    let i = v.as_i64().ok_or_else(|| AlgebraError::TypeMismatch {
                        expected: "integer for interleave()".into(),
                        found: v.data_type().to_string(),
                    })?;
                    parts.push(i.unsigned_abs() as u32);
                }
                Ok(Value::Int(interleave_bits(&parts) as i64))
            }
            ElemExpr::Sub(a, b) => {
                let av = a.eval(schema, record, pos, count)?;
                let bv = b.eval(schema, record, pos, count)?;
                av.sub(&bv)
            }
            ElemExpr::Add(a, b) => {
                let av = a.eval(schema, record, pos, count)?;
                let bv = b.eval(schema, record, pos, count)?;
                av.add(&bv)
            }
        }
    }
}

/// Interleaves the bits of several non-negative integers, producing a Morton
/// (Z-order) code. Bit `k` of input `i` lands at position `k * n + i` of the
/// output, matching the paper's `interleave(bin(pos(r)), bin(pos(r')))`.
pub fn interleave_bits(parts: &[u32]) -> u64 {
    let n = parts.len();
    if n == 0 {
        return 0;
    }
    let mut out: u64 = 0;
    let bits_per_part = (64 / n).min(32);
    for bit in 0..bits_per_part {
        for (i, &p) in parts.iter().enumerate() {
            let b = ((p >> bit) & 1) as u64;
            out |= b << (bit * n + i);
        }
    }
    out
}

/// A boolean condition over a record.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Always true.
    True,
    /// A comparison between two element expressions.
    Cmp {
        /// Left operand.
        left: ElemExpr,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: ElemExpr,
    },
    /// A closed numeric range over a field (`lo <= field <= hi`). This is the
    /// common spatial/temporal predicate shape and is recognized specially by
    /// the access methods so they can prune grid cells and index ranges.
    Range {
        /// Field being constrained.
        field: String,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// Conjunction.
    And(Vec<Condition>),
    /// Disjunction.
    Or(Vec<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// Equality on a field: `field = value`.
    pub fn eq(field: impl Into<String>, value: impl Into<Value>) -> Condition {
        Condition::Cmp {
            left: ElemExpr::field(field),
            op: CmpOp::Eq,
            right: ElemExpr::lit(value),
        }
    }

    /// Closed range on a field.
    pub fn range(
        field: impl Into<String>,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Condition {
        Condition::Range {
            field: field.into(),
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Conjunction of two conditions.
    pub fn and(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::And(mut a), Condition::And(b)) => {
                a.extend(b);
                Condition::And(a)
            }
            (Condition::And(mut a), b) => {
                a.push(b);
                Condition::And(a)
            }
            (a, Condition::And(mut b)) => {
                b.insert(0, a);
                Condition::And(b)
            }
            (a, b) => Condition::And(vec![a, b]),
        }
    }

    /// Evaluates the condition against a record.
    pub fn eval(&self, schema: &Schema, record: &Record) -> Result<bool> {
        self.eval_at(schema, record, 0, 0)
    }

    /// Evaluates with positional context (for conditions using `pos()` /
    /// `count()`).
    pub fn eval_at(
        &self,
        schema: &Schema,
        record: &Record,
        pos: usize,
        count: usize,
    ) -> Result<bool> {
        match self {
            Condition::True => Ok(true),
            Condition::Cmp { left, op, right } => {
                let l = left.eval(schema, record, pos, count)?;
                let r = right.eval(schema, record, pos, count)?;
                Ok(op.matches(l.compare(&r)))
            }
            Condition::Range { field, lo, hi } => {
                let idx = schema.index_of(field)?;
                let v = &record[idx];
                Ok(v.compare(lo) != Ordering::Less && v.compare(hi) != Ordering::Greater)
            }
            Condition::And(items) => {
                for c in items {
                    if !c.eval_at(schema, record, pos, count)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Condition::Or(items) => {
                for c in items {
                    if c.eval_at(schema, record, pos, count)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Condition::Not(inner) => Ok(!inner.eval_at(schema, record, pos, count)?),
        }
    }

    /// All field names referenced by the condition.
    pub fn referenced_fields(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_fields(&mut out);
        out
    }

    fn collect_fields(&self, out: &mut Vec<String>) {
        match self {
            Condition::True => {}
            Condition::Cmp { left, right, .. } => {
                for f in left
                    .referenced_fields()
                    .into_iter()
                    .chain(right.referenced_fields())
                {
                    if !out.contains(&f) {
                        out.push(f);
                    }
                }
            }
            Condition::Range { field, .. } => {
                if !out.contains(field) {
                    out.push(field.clone());
                }
            }
            Condition::And(items) | Condition::Or(items) => {
                for c in items {
                    c.collect_fields(out);
                }
            }
            Condition::Not(inner) => inner.collect_fields(out),
        }
    }
}

/// Non-boolean clauses usable inside a comprehension.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `limit n` — keep only the first `n` elements.
    Limit(usize),
    /// `orderby keys` — reorder elements.
    OrderBy(Vec<SortKey>),
    /// `groupby keys` — regroup elements with equal keys into sub-nestings.
    GroupBy(Vec<String>),
    /// `partitionby field stride` — partition numeric values into buckets of
    /// the given stride.
    PartitionBy(String, f64),
}

/// A generator `\v ← source` binding a variable to successive elements.
#[derive(Debug, Clone, PartialEq)]
pub struct Generator {
    /// Variable name (without the leading backslash).
    pub var: String,
    /// Source nesting: either a base table or a previously bound variable.
    pub source: GeneratorSource,
}

/// Where a generator draws its elements from.
#[derive(Debug, Clone, PartialEq)]
pub enum GeneratorSource {
    /// A base table (canonical row-major nesting).
    Table(String),
    /// A variable bound by an enclosing generator (nested iteration).
    Var(String),
}

/// A list comprehension `[head | generators, conditions, clauses]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Comprehension {
    /// Head expressions: one output element per record, containing these
    /// components (a single-element head produces atoms, a multi-element
    /// head produces row nestings).
    pub head: Vec<ElemExpr>,
    /// Generators, outermost first.
    pub generators: Vec<Generator>,
    /// Boolean conditions.
    pub conditions: Vec<Condition>,
    /// Ordering/grouping/limit clauses, applied in order.
    pub clauses: Vec<Clause>,
}

impl Comprehension {
    /// Creates a comprehension over a single table generator with the given
    /// head fields — the common `[[r.A, r.B] | \r ← T]` shape.
    pub fn over_table<I, S>(table: impl Into<String>, head_fields: I) -> Comprehension
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Comprehension {
            head: head_fields
                .into_iter()
                .map(|f| ElemExpr::field(f))
                .collect(),
            generators: vec![Generator {
                var: "r".into(),
                source: GeneratorSource::Table(table.into()),
            }],
            conditions: Vec::new(),
            clauses: Vec::new(),
        }
    }

    /// Adds a boolean condition.
    pub fn filter(mut self, cond: Condition) -> Comprehension {
        self.conditions.push(cond);
        self
    }

    /// Adds an `orderby` clause (ascending).
    pub fn order_by<I, S>(mut self, fields: I) -> Comprehension
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.clauses.push(Clause::OrderBy(
            fields.into_iter().map(|f| SortKey::asc(f)).collect(),
        ));
        self
    }

    /// Adds a `limit` clause.
    pub fn limit(mut self, n: usize) -> Comprehension {
        self.clauses.push(Clause::Limit(n));
        self
    }

    /// Base tables referenced by the generators.
    pub fn base_tables(&self) -> Vec<String> {
        self.generators
            .iter()
            .filter_map(|g| match &g.source {
                GeneratorSource::Table(t) => Some(t.clone()),
                GeneratorSource::Var(_) => None,
            })
            .collect()
    }

    /// All fields referenced by head, conditions, and clauses.
    pub fn referenced_fields(&self) -> Vec<String> {
        let mut out = Vec::new();
        for h in &self.head {
            for f in h.referenced_fields() {
                if !out.contains(&f) {
                    out.push(f);
                }
            }
        }
        for c in &self.conditions {
            for f in c.referenced_fields() {
                if !out.contains(&f) {
                    out.push(f);
                }
            }
        }
        for clause in &self.clauses {
            let fields: Vec<String> = match clause {
                Clause::OrderBy(keys) => keys.iter().map(|k| k.field.clone()).collect(),
                Clause::GroupBy(keys) => keys.clone(),
                Clause::PartitionBy(f, _) => vec![f.clone()],
                Clause::Limit(_) => Vec::new(),
            };
            for f in fields {
                if !out.contains(&f) {
                    out.push(f);
                }
            }
        }
        out
    }

    /// Evaluates the comprehension over a set of records of the given schema,
    /// producing output records. Grouping clauses are not applied here (the
    /// layout interpreter handles grouping structurally); ordering, filtering
    /// and limiting are.
    pub fn eval_records(&self, schema: &Schema, records: &[Record]) -> Result<Vec<Record>> {
        let count = records.len();
        let mut out: Vec<Record> = Vec::new();
        'rec: for (pos, record) in records.iter().enumerate() {
            for cond in &self.conditions {
                if !cond.eval_at(schema, record, pos, count)? {
                    continue 'rec;
                }
            }
            let mut row = Vec::with_capacity(self.head.len());
            for h in &self.head {
                row.push(h.eval(schema, record, pos, count)?);
            }
            out.push(row);
        }

        // The output schema of the head is positional; clauses referring to
        // fields are resolved against the *input* schema by re-evaluating the
        // key expressions, so we sort using precomputed keys.
        for clause in &self.clauses {
            match clause {
                Clause::OrderBy(keys) => {
                    // Pair output rows with their source records to evaluate keys.
                    let mut indexed: Vec<(usize, Record)> =
                        out.drain(..).enumerate().collect();
                    // Recompute which source record produced each output row.
                    // Because filtering preserves order, we re-derive the map.
                    let mut source_rows: Vec<&Record> = Vec::new();
                    'rec2: for (pos, record) in records.iter().enumerate() {
                        for cond in &self.conditions {
                            if !cond.eval_at(schema, record, pos, count)? {
                                continue 'rec2;
                            }
                        }
                        source_rows.push(record);
                    }
                    let mut sort_keys: Vec<Vec<Value>> = Vec::with_capacity(source_rows.len());
                    for r in &source_rows {
                        let mut kv = Vec::with_capacity(keys.len());
                        for k in keys {
                            let idx = schema.index_of(&k.field)?;
                            kv.push(r[idx].clone());
                        }
                        sort_keys.push(kv);
                    }
                    indexed.sort_by(|(ia, _), (ib, _)| {
                        let ka = &sort_keys[*ia];
                        let kb = &sort_keys[*ib];
                        for (i, key) in keys.iter().enumerate() {
                            let ord = ka[i].compare(&kb[i]);
                            let ord = match key.order {
                                SortOrder::Asc => ord,
                                SortOrder::Desc => ord.reverse(),
                            };
                            if ord != Ordering::Equal {
                                return ord;
                            }
                        }
                        Ordering::Equal
                    });
                    out = indexed.into_iter().map(|(_, r)| r).collect();
                }
                Clause::Limit(n) => out.truncate(*n),
                Clause::GroupBy(_) | Clause::PartitionBy(_, _) => {
                    // Structural clauses: handled by the interpreter.
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::types::DataType;

    fn zip_schema() -> Schema {
        Schema::new(
            "T",
            vec![
                Field::new("Zip", DataType::Int),
                Field::new("Area", DataType::Int),
                Field::new("Addr", DataType::String),
            ],
        )
    }

    fn zip_records() -> Vec<Record> {
        vec![
            vec![Value::Int(2139), Value::Int(617), Value::Str("32 Vassar".into())],
            vec![Value::Int(2142), Value::Int(617), Value::Str("1 Broadway".into())],
            vec![Value::Int(10001), Value::Int(212), Value::Str("5th Ave".into())],
            vec![Value::Int(2115), Value::Int(617), Value::Str("Fenway".into())],
        ]
    }

    #[test]
    fn paper_nz_comprehension() {
        // Nz = [r.Zip | \r ← T, r.Area = 617, orderby r.Zip ASC]
        let c = Comprehension::over_table("T", ["Zip"])
            .filter(Condition::eq("Area", 617i64))
            .order_by(["Zip"]);
        let out = c.eval_records(&zip_schema(), &zip_records()).unwrap();
        assert_eq!(
            out,
            vec![
                vec![Value::Int(2115)],
                vec![Value::Int(2139)],
                vec![Value::Int(2142)],
            ]
        );
    }

    #[test]
    fn limit_clause_truncates() {
        let c = Comprehension::over_table("T", ["Zip"]).limit(2);
        let out = c.eval_records(&zip_schema(), &zip_records()).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn condition_range_and_combinators() {
        let schema = zip_schema();
        let rec = &zip_records()[0];
        assert!(Condition::range("Zip", 2000i64, 3000i64)
            .eval(&schema, rec)
            .unwrap());
        assert!(!Condition::range("Zip", 3000i64, 4000i64)
            .eval(&schema, rec)
            .unwrap());
        let c = Condition::eq("Area", 617i64).and(Condition::range("Zip", 0i64, 2140i64));
        assert!(c.eval(&schema, rec).unwrap());
        let n = Condition::Not(Box::new(Condition::eq("Area", 617i64)));
        assert!(!n.eval(&schema, rec).unwrap());
    }

    #[test]
    fn referenced_fields_collected() {
        let c = Comprehension::over_table("T", ["Zip", "Addr"])
            .filter(Condition::eq("Area", 617i64))
            .order_by(["Zip"]);
        assert_eq!(c.referenced_fields(), vec!["Zip", "Addr", "Area"]);
        assert_eq!(c.base_tables(), vec!["T"]);
    }

    #[test]
    fn interleave_bits_is_morton() {
        // x = 0b11, y = 0b01 → interleaved (x bit k at position 2k, y at 2k+1)
        // bit0: x=1 → pos0, y=1 → pos1; bit1: x=1 → pos2, y=0 → pos3
        assert_eq!(interleave_bits(&[0b11, 0b01]), 0b0111);
        assert_eq!(interleave_bits(&[]), 0);
        assert_eq!(interleave_bits(&[5]), 5);
    }

    #[test]
    fn elem_expr_eval_pos_count_and_arith() {
        let schema = zip_schema();
        let rec = &zip_records()[1];
        let e = ElemExpr::Sub(
            Box::new(ElemExpr::field("Zip")),
            Box::new(ElemExpr::lit(2000i64)),
        );
        assert_eq!(e.eval(&schema, rec, 0, 4).unwrap(), Value::Int(142));
        assert_eq!(
            ElemExpr::Pos.eval(&schema, rec, 3, 4).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            ElemExpr::Count.eval(&schema, rec, 3, 4).unwrap(),
            Value::Int(4)
        );
    }

    #[test]
    fn cmp_op_semantics() {
        assert!(CmpOp::Le.matches(Ordering::Equal));
        assert!(CmpOp::Le.matches(Ordering::Less));
        assert!(!CmpOp::Lt.matches(Ordering::Equal));
        assert!(CmpOp::Ne.matches(Ordering::Greater));
        assert!(CmpOp::Ge.matches(Ordering::Greater));
    }
}
