//! Data types supported by the storage algebra.
//!
//! The paper defines the type grammar
//! `τ := int | float | string | … | l:τ | [τ1, …, τn]`:
//! a collection of scalar types of fixed or variable size, a *naming* clause
//! that attaches a literal label to a type, and a *nesting* clause that
//! builds arbitrary nested list types.

use std::fmt;

/// A storage-algebra data type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point (the paper's `float`/`double` are both
    /// represented with full precision; width selection is a layout concern).
    Float,
    /// Boolean.
    Bool,
    /// Variable-length UTF-8 string.
    String,
    /// A timestamp, stored as microseconds since the Unix epoch.
    Timestamp,
    /// The naming clause `l : τ` — associates a literal label with a type.
    Named(String, Box<DataType>),
    /// The nesting clause `[τ1, …, τn]` — an ordered list of component types.
    List(Vec<DataType>),
}

impl DataType {
    /// Returns `true` for scalar (non-nested) types. `Named` is scalar when
    /// its inner type is.
    pub fn is_scalar(&self) -> bool {
        match self {
            DataType::Int
            | DataType::Float
            | DataType::Bool
            | DataType::String
            | DataType::Timestamp => true,
            DataType::Named(_, inner) => inner.is_scalar(),
            DataType::List(_) => false,
        }
    }

    /// Returns `true` if values of this type have a fixed byte width.
    pub fn is_fixed_width(&self) -> bool {
        match self {
            DataType::Int | DataType::Float | DataType::Bool | DataType::Timestamp => true,
            DataType::String => false,
            DataType::Named(_, inner) => inner.is_fixed_width(),
            DataType::List(items) => items.iter().all(DataType::is_fixed_width),
        }
    }

    /// Byte width of the type when serialized with the default encoding, or
    /// `None` for variable-width types. Used by the cost model for
    /// dense-packing estimates.
    pub fn fixed_width(&self) -> Option<usize> {
        match self {
            DataType::Int | DataType::Float | DataType::Timestamp => Some(8),
            DataType::Bool => Some(1),
            DataType::String => None,
            DataType::Named(_, inner) => inner.fixed_width(),
            DataType::List(items) => {
                let mut total = 0usize;
                for item in items {
                    total += item.fixed_width()?;
                }
                Some(total)
            }
        }
    }

    /// Average width estimate in bytes, used for costing variable-width data.
    /// Strings are assumed to average 16 bytes unless the caller knows better.
    pub fn estimated_width(&self) -> usize {
        match self {
            DataType::String => 16,
            DataType::Named(_, inner) => inner.estimated_width(),
            DataType::List(items) => items.iter().map(DataType::estimated_width).sum(),
            other => other.fixed_width().unwrap_or(8),
        }
    }

    /// Strips any number of `Named` wrappers, returning the underlying type.
    pub fn unwrap_named(&self) -> &DataType {
        match self {
            DataType::Named(_, inner) => inner.unwrap_named(),
            other => other,
        }
    }

    /// Returns `true` when two types are compatible for comparison and
    /// ordering purposes (ignoring names).
    pub fn comparable_with(&self, other: &DataType) -> bool {
        use DataType::*;
        match (self.unwrap_named(), other.unwrap_named()) {
            (Int, Int)
            | (Float, Float)
            | (Bool, Bool)
            | (String, String)
            | (Timestamp, Timestamp) => true,
            // Int/Float promote for comparisons, matching Value::compare.
            (Int, Float) | (Float, Int) => true,
            (Int, Timestamp) | (Timestamp, Int) => true,
            (List(a), List(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.comparable_with(y))
            }
            _ => false,
        }
    }

    /// Whether the type is numeric (supports delta compression, arithmetic).
    pub fn is_numeric(&self) -> bool {
        matches!(
            self.unwrap_named(),
            DataType::Int | DataType::Float | DataType::Timestamp
        )
    }

    /// Constructs a named type `l : τ`.
    pub fn named(label: impl Into<String>, inner: DataType) -> DataType {
        DataType::Named(label.into(), Box::new(inner))
    }

    /// Constructs a nested list type `[τ1, …, τn]`.
    pub fn list(items: impl IntoIterator<Item = DataType>) -> DataType {
        DataType::List(items.into_iter().collect())
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Bool => write!(f, "bool"),
            DataType::String => write!(f, "string"),
            DataType::Timestamp => write!(f, "timestamp"),
            DataType::Named(label, inner) => write!(f, "{label}:{inner}"),
            DataType::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_classification() {
        assert!(DataType::Int.is_scalar());
        assert!(DataType::String.is_scalar());
        assert!(!DataType::list([DataType::Int]).is_scalar());
        assert!(DataType::named("zip", DataType::Int).is_scalar());
    }

    #[test]
    fn fixed_width_of_nested_lists() {
        let t = DataType::list([DataType::Int, DataType::Float, DataType::Bool]);
        assert!(t.is_fixed_width());
        assert_eq!(t.fixed_width(), Some(17));

        let v = DataType::list([DataType::Int, DataType::String]);
        assert!(!v.is_fixed_width());
        assert_eq!(v.fixed_width(), None);
        assert_eq!(v.estimated_width(), 24);
    }

    #[test]
    fn named_types_unwrap_and_compare() {
        let zip = DataType::named("zip", DataType::Int);
        assert_eq!(zip.unwrap_named(), &DataType::Int);
        assert!(zip.comparable_with(&DataType::Int));
        assert!(zip.comparable_with(&DataType::Float));
        assert!(!zip.comparable_with(&DataType::String));
    }

    #[test]
    fn display_round_trips_structure() {
        let t = DataType::named(
            "cell",
            DataType::list([DataType::Float, DataType::Float, DataType::String]),
        );
        assert_eq!(t.to_string(), "cell:[float, float, string]");
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Timestamp.is_numeric());
        assert!(!DataType::String.is_numeric());
        assert!(DataType::named("t", DataType::Float).is_numeric());
    }

    #[test]
    fn list_comparability_requires_same_arity() {
        let a = DataType::list([DataType::Int, DataType::Int]);
        let b = DataType::list([DataType::Int]);
        let c = DataType::list([DataType::Float, DataType::Int]);
        assert!(!a.comparable_with(&b));
        assert!(a.comparable_with(&c));
    }
}
