//! Runtime values and records.
//!
//! A [`Value`] is a single element manipulated by the storage algebra; a
//! [`Record`] is an ordered collection of values conforming to a
//! [`crate::Schema`]. Values form a total order (numeric types promote to
//! `f64` for mixed comparisons, `Null` sorts first) so they can be used as
//! sort and grouping keys throughout the system.

use crate::types::DataType;
use crate::{AlgebraError, Result};
use std::cmp::Ordering;
use std::fmt;

/// A single storage-algebra value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent value. Sorts before every other value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
    /// Timestamp in microseconds since the Unix epoch.
    Timestamp(i64),
    /// A nested list of values (the runtime counterpart of the `[τ…]` type).
    List(Vec<Value>),
}

impl Value {
    /// Returns the [`DataType`] this value naturally carries.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::String,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Bool(_) => DataType::Bool,
            Value::Str(_) => DataType::String,
            Value::Timestamp(_) => DataType::Timestamp,
            Value::List(items) => DataType::List(items.iter().map(Value::data_type).collect()),
        }
    }

    /// Returns `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as `f64` where possible (numeric promotion).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Timestamp(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Interprets the value as `i64` where possible. Floats are truncated.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Timestamp(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Interprets the value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets the value as a nested list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes; used by the cost model and by
    /// dense-packing heuristics in the layout renderers.
    pub fn estimated_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => 4 + s.len(),
            Value::List(items) => 4 + items.iter().map(Value::estimated_size).sum::<usize>(),
        }
    }

    /// Total order over values. `Null` sorts first; numeric types are
    /// mutually comparable; otherwise values are ordered by a fixed type rank
    /// and then by their natural ordering.
    pub fn compare(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.compare(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            // Mixed numerics promote to f64.
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                _ => a.type_rank().cmp(&b.type_rank()),
            },
        }
    }

    /// Arithmetic subtraction used by the `delta` transform. Errors if either
    /// operand is not numeric.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a - b)),
            (Value::Timestamp(a), Value::Timestamp(b)) => Ok(Value::Int(a - b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Ok(Value::Float(a - b)),
                _ => Err(AlgebraError::TypeMismatch {
                    expected: "numeric".into(),
                    found: format!("{} - {}", self.data_type(), other.data_type()),
                }),
            },
        }
    }

    /// Arithmetic addition, the inverse of [`Value::sub`]; used to reverse
    /// delta compression.
    pub fn add(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
            (Value::Timestamp(a), Value::Int(b)) => Ok(Value::Timestamp(a + b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Ok(Value::Float(a + b)),
                _ => Err(AlgebraError::TypeMismatch {
                    expected: "numeric".into(),
                    found: format!("{} + {}", self.data_type(), other.data_type()),
                }),
            },
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Timestamp(_) => 4,
            Value::Str(_) => 5,
            Value::List(_) => 6,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.compare(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "\"{v}\""),
            Value::Timestamp(v) => write!(f, "@{v}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

/// A record (tuple): an ordered list of values conforming to a schema.
pub type Record = Vec<Value>;

/// Builds a record from anything convertible into values.
///
/// ```
/// use rodentstore_algebra::value::record;
/// let r = record([1i64.into(), "boston".into()]);
/// assert_eq!(r.len(), 2);
/// ```
pub fn record(values: impl IntoIterator<Item = Value>) -> Record {
    values.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(-1)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-1));
    }

    #[test]
    fn mixed_numeric_comparison_promotes() {
        assert_eq!(Value::Int(2).compare(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).compare(&Value::Int(3)), Ordering::Equal);
        assert_eq!(
            Value::Timestamp(10).compare(&Value::Int(5)),
            Ordering::Greater
        );
    }

    #[test]
    fn list_comparison_is_lexicographic() {
        let a = Value::List(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::List(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::List(vec![Value::Int(1)]);
        assert_eq!(a.compare(&b), Ordering::Less);
        assert_eq!(a.compare(&c), Ordering::Greater);
    }

    #[test]
    fn arithmetic_for_delta_round_trips() {
        let a = Value::Float(42.33);
        let b = Value::Float(42.30);
        let d = a.sub(&b).unwrap();
        let back = b.add(&d).unwrap();
        assert!((back.as_f64().unwrap() - 42.33).abs() < 1e-9);

        let x = Value::Int(100);
        let y = Value::Int(93);
        assert_eq!(x.sub(&y).unwrap(), Value::Int(7));
        assert_eq!(y.add(&Value::Int(7)).unwrap(), Value::Int(100));
    }

    #[test]
    fn arithmetic_rejects_strings() {
        let err = Value::Str("a".into()).sub(&Value::Int(1)).unwrap_err();
        assert!(matches!(err, AlgebraError::TypeMismatch { .. }));
    }

    #[test]
    fn estimated_sizes() {
        assert_eq!(Value::Int(7).estimated_size(), 8);
        assert_eq!(Value::Str("abcd".into()).estimated_size(), 8);
        let nested = Value::List(vec![Value::Int(1), Value::Bool(true)]);
        assert_eq!(nested.estimated_size(), 4 + 8 + 1);
    }

    #[test]
    fn display_nested() {
        let v = Value::List(vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(v.to_string(), "[1, \"x\"]");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(
            Value::from(vec![Value::Int(1)]),
            Value::List(vec![Value::Int(1)])
        );
    }
}
