//! Logical schemas.
//!
//! A [`Schema`] describes a logical table: an ordered list of named, typed
//! [`Field`]s. Storage-algebra expressions are validated against a schema and
//! the interpreter uses it to resolve field references to record positions.

use crate::types::DataType;
use crate::value::{Record, Value};
use crate::{AlgebraError, Result};
use std::fmt;

/// A single named, typed column of a logical table.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl Field {
    /// Creates a new field.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.ty)
    }
}

/// An ordered collection of fields together with the table name.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    name: String,
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema. Panics in debug builds if two fields share a name;
    /// use [`Schema::try_new`] for fallible construction.
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> Self {
        Self::try_new(name, fields).expect("duplicate field names in schema")
    }

    /// Fallible constructor that rejects duplicate field names.
    pub fn try_new(name: impl Into<String>, fields: Vec<Field>) -> Result<Self> {
        let name = name.into();
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(AlgebraError::DuplicateField(f.name.clone()));
            }
        }
        Ok(Schema { name, fields })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Field names in declaration order.
    pub fn field_names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }

    /// Position of a field by name.
    pub fn index_of(&self, field: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == field)
            .ok_or_else(|| AlgebraError::UnknownField {
                field: field.to_string(),
                within: self.name.clone(),
            })
    }

    /// Field descriptor by name.
    pub fn field(&self, field: &str) -> Result<&Field> {
        let idx = self.index_of(field)?;
        Ok(&self.fields[idx])
    }

    /// Resolves a list of names to positions, preserving order.
    pub fn indices_of(&self, fields: &[String]) -> Result<Vec<usize>> {
        fields.iter().map(|f| self.index_of(f)).collect()
    }

    /// Returns a new schema containing only the given fields, in the given
    /// order (the schema produced by `project`).
    pub fn project(&self, fields: &[String]) -> Result<Schema> {
        let mut projected = Vec::with_capacity(fields.len());
        for f in fields {
            projected.push(self.field(f)?.clone());
        }
        Schema::try_new(format!("{}#proj", self.name), projected)
    }

    /// Returns a schema with the given fields appended (the schema produced
    /// by `append`).
    pub fn append(&self, extra: &[Field]) -> Result<Schema> {
        let mut fields = self.fields.clone();
        for f in extra {
            fields.push(f.clone());
        }
        Schema::try_new(self.name.clone(), fields)
    }

    /// Returns a schema for the prejoin of two tables: the concatenation of
    /// both field lists, with right-side duplicates renamed `right.<name>`.
    pub fn prejoin(&self, right: &Schema) -> Result<Schema> {
        let mut fields = self.fields.clone();
        for f in right.fields() {
            let name = if self.index_of(&f.name).is_ok() {
                format!("{}.{}", right.name(), f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.ty.clone()));
        }
        Schema::try_new(format!("{}_{}", self.name, right.name), fields)
    }

    /// Estimated width in bytes of a record under the default row encoding.
    pub fn estimated_record_width(&self) -> usize {
        self.fields.iter().map(|f| f.ty.estimated_width()).sum()
    }

    /// Checks that a record conforms to the schema (arity and, for non-null
    /// scalar values, type compatibility).
    pub fn validate_record(&self, record: &Record) -> Result<()> {
        if record.len() != self.fields.len() {
            return Err(AlgebraError::ShapeMismatch(format!(
                "record arity {} does not match schema `{}` arity {}",
                record.len(),
                self.name,
                self.fields.len()
            )));
        }
        for (value, field) in record.iter().zip(self.fields.iter()) {
            if value.is_null() {
                continue;
            }
            let vt = value.data_type();
            if !vt.comparable_with(&field.ty) && vt.unwrap_named() != field.ty.unwrap_named() {
                return Err(AlgebraError::TypeMismatch {
                    expected: format!("{} for field `{}`", field.ty, field.name),
                    found: vt.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Extracts the values of the named fields from a record.
    pub fn extract(&self, record: &Record, fields: &[String]) -> Result<Vec<Value>> {
        let idx = self.indices_of(fields)?;
        Ok(idx.iter().map(|&i| record[i].clone()).collect())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traces() -> Schema {
        Schema::new(
            "Traces",
            vec![
                Field::new("t", DataType::Timestamp),
                Field::new("lat", DataType::Float),
                Field::new("lon", DataType::Float),
                Field::new("id", DataType::String),
            ],
        )
    }

    #[test]
    fn index_resolution() {
        let s = traces();
        assert_eq!(s.index_of("lat").unwrap(), 1);
        assert!(matches!(
            s.index_of("speed"),
            Err(AlgebraError::UnknownField { .. })
        ));
    }

    #[test]
    fn duplicate_fields_rejected() {
        let err = Schema::try_new(
            "T",
            vec![
                Field::new("a", DataType::Int),
                Field::new("a", DataType::Float),
            ],
        )
        .unwrap_err();
        assert_eq!(err, AlgebraError::DuplicateField("a".into()));
    }

    #[test]
    fn projection_preserves_order_given() {
        let s = traces();
        let p = s.project(&["lon".into(), "lat".into()]).unwrap();
        assert_eq!(p.field_names(), vec!["lon", "lat"]);
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn prejoin_renames_duplicates() {
        let left = traces();
        let right = Schema::new(
            "Vehicles",
            vec![
                Field::new("id", DataType::String),
                Field::new("make", DataType::String),
            ],
        );
        let joined = left.prejoin(&right).unwrap();
        assert_eq!(
            joined.field_names(),
            vec!["t", "lat", "lon", "id", "Vehicles.id", "make"]
        );
    }

    #[test]
    fn record_validation() {
        let s = traces();
        let good = vec![
            Value::Timestamp(1),
            Value::Float(42.3),
            Value::Float(-71.1),
            Value::Str("car-7".into()),
        ];
        s.validate_record(&good).unwrap();

        let wrong_arity = vec![Value::Int(1)];
        assert!(s.validate_record(&wrong_arity).is_err());

        let wrong_type = vec![
            Value::Timestamp(1),
            Value::Str("oops".into()),
            Value::Float(-71.1),
            Value::Str("car-7".into()),
        ];
        assert!(s.validate_record(&wrong_type).is_err());
    }

    #[test]
    fn extract_by_name() {
        let s = traces();
        let r = vec![
            Value::Timestamp(9),
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Str("v".into()),
        ];
        let vals = s.extract(&r, &["lon".into(), "t".into()]).unwrap();
        assert_eq!(vals, vec![Value::Float(2.0), Value::Timestamp(9)]);
    }

    #[test]
    fn estimated_width_accounts_for_strings() {
        let s = traces();
        assert_eq!(s.estimated_record_width(), 8 + 8 + 8 + 16);
    }
}
