//! Static validation of storage-algebra expressions.
//!
//! [`check`] walks an expression bottom-up against the logical schema(s) it
//! references and produces a [`DerivedLayout`]: the output schema plus the
//! physical properties declared by the expression (orderings, gridding,
//! compression, vertical groups, folding, …). The layout interpreter and the
//! access-method layer use the derived description to decide how data can be
//! pruned and in which orders it can be delivered efficiently, and the design
//! optimizer uses it to cost candidate expressions.

use crate::comprehension::Comprehension;
use crate::expr::{CodecSpec, GridDim, LayoutExpr, PartitionBy, PaxSpec, SortKey};
use crate::schema::{Field, Schema};
use crate::types::DataType;
use crate::{AlgebraError, Result};
use std::collections::HashMap;

/// Looks up logical schemas by table name. Implemented by single schemas,
/// maps, and the RodentStore catalog.
pub trait SchemaProvider {
    /// Returns the schema of `table`, if known.
    fn schema_for(&self, table: &str) -> Option<Schema>;
}

impl SchemaProvider for Schema {
    fn schema_for(&self, table: &str) -> Option<Schema> {
        if self.name() == table {
            Some(self.clone())
        } else {
            None
        }
    }
}

impl SchemaProvider for HashMap<String, Schema> {
    fn schema_for(&self, table: &str) -> Option<Schema> {
        self.get(table).cloned()
    }
}

impl SchemaProvider for Vec<Schema> {
    fn schema_for(&self, table: &str) -> Option<Schema> {
        self.iter().find(|s| s.name() == table).cloned()
    }
}

/// The physical properties derived from a validated expression.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedLayout {
    /// Output logical schema (what the access methods expose).
    pub schema: Schema,
    /// Field names of the output schema, in order.
    fields: Vec<String>,
    /// Sort orders the layout is efficient for (outermost `orderby` first).
    pub orderings: Vec<Vec<SortKey>>,
    /// Gridding dimensions, if the data is arranged on an n-dimensional
    /// lattice.
    pub grid: Option<Vec<GridDim>>,
    /// Whether grid cells (or attributes) are arranged along a Z-order curve.
    pub zordered: bool,
    /// Per-field compression schemes, outermost last.
    pub codecs: Vec<(String, CodecSpec)>,
    /// Vertical partition groups. Empty means a single row-oriented object;
    /// one singleton group per field is a full column decomposition.
    pub groups: Vec<Vec<String>>,
    /// `fold` structure: `(key fields, nested value fields)`.
    pub folded: Option<(Vec<String>, Vec<String>)>,
    /// Grouping keys declared by `groupby` clauses.
    pub grouped_by: Vec<String>,
    /// PAX parameters, when the layout stores mini-pages.
    pub pax: Option<PaxSpec>,
    /// Whether a horizontal partitioning step is present.
    pub partitioned: bool,
    /// Chunk size for array chunking, if any.
    pub chunk: Option<usize>,
    /// Whether the top two nesting levels were transposed.
    pub transposed: bool,
    /// Secondary index declared over the layout: the indexed field names
    /// (one field = B-tree, two fields = R-tree).
    pub index: Option<Vec<String>>,
    /// Levelled write-optimized tier (`lsm[...]`): the key fields runs are
    /// sorted on. `Some` means appends are absorbed by a memtable and
    /// spilled into immutable sorted runs instead of rewriting the base.
    pub lsm: Option<Vec<String>>,
}

impl DerivedLayout {
    fn from_schema(schema: Schema) -> Self {
        let fields = schema.field_names();
        DerivedLayout {
            schema,
            fields,
            orderings: Vec::new(),
            grid: None,
            zordered: false,
            codecs: Vec::new(),
            groups: Vec::new(),
            folded: None,
            grouped_by: Vec::new(),
            pax: None,
            partitioned: false,
            chunk: None,
            transposed: false,
            index: None,
            lsm: None,
        }
    }

    /// Output field names in order.
    pub fn fields(&self) -> &[String] {
        &self.fields
    }

    /// Estimated width in bytes of one logical record under this layout,
    /// before compression.
    pub fn estimated_record_width(&self) -> usize {
        self.schema.estimated_record_width()
    }

    /// Whether the layout stores each field (or group of fields) in its own
    /// object (column-store style).
    pub fn is_vertically_partitioned(&self) -> bool {
        !self.groups.is_empty()
    }

    /// Whether a codec is declared for the given field.
    pub fn codec_for(&self, field: &str) -> Option<CodecSpec> {
        self.codecs
            .iter()
            .rev()
            .find(|(f, _)| f == field)
            .map(|(_, c)| *c)
    }

    /// The outermost declared ordering, if any — the "default order" of the
    /// stored representation.
    pub fn primary_ordering(&self) -> Option<&[SortKey]> {
        self.orderings.last().map(|k| k.as_slice())
    }

    fn set_fields_from_schema(&mut self) {
        self.fields = self.schema.field_names();
    }
}

/// Validates `expr` against a single-table schema.
pub fn check(expr: &LayoutExpr, schema: &Schema) -> Result<DerivedLayout> {
    check_with(expr, schema)
}

/// Validates `expr`, resolving table references through `provider`.
pub fn check_with(expr: &LayoutExpr, provider: &dyn SchemaProvider) -> Result<DerivedLayout> {
    match expr {
        LayoutExpr::Table(name) => {
            let schema = provider
                .schema_for(name)
                .ok_or_else(|| AlgebraError::UnknownTable(name.clone()))?;
            Ok(DerivedLayout::from_schema(schema))
        }
        LayoutExpr::Project { input, fields } => {
            let mut d = check_with(input, provider)?;
            if fields.is_empty() {
                return Err(AlgebraError::InvalidParameter(
                    "project requires at least one field".into(),
                ));
            }
            d.schema = d.schema.project(fields)?;
            d.set_fields_from_schema();
            d.codecs.retain(|(f, _)| fields.contains(f));
            d.orderings
                .retain(|keys| keys.iter().all(|k| fields.contains(&k.field)));
            if let Some(dims) = &d.grid {
                if !dims.iter().all(|dim| fields.contains(&dim.field)) {
                    d.grid = None;
                    d.zordered = false;
                }
            }
            d.groups.retain_mut(|g| {
                g.retain(|f| fields.contains(f));
                !g.is_empty()
            });
            if let Some(idx) = &d.index {
                if !idx.iter().all(|f| fields.contains(f)) {
                    d.index = None;
                }
            }
            if let Some(key) = &d.lsm {
                if !key.iter().all(|f| fields.contains(f)) {
                    d.lsm = None;
                }
            }
            Ok(d)
        }
        LayoutExpr::Append { input, fields } => {
            let mut d = check_with(input, provider)?;
            d.schema = d.schema.append(fields)?;
            d.set_fields_from_schema();
            Ok(d)
        }
        LayoutExpr::Select { input, predicate } => {
            let d = check_with(input, provider)?;
            for f in predicate.referenced_fields() {
                d.schema.index_of(&f)?;
            }
            Ok(d)
        }
        LayoutExpr::Partition { input, by } => {
            let mut d = check_with(input, provider)?;
            match by {
                PartitionBy::Field(field) => {
                    d.schema.index_of(field)?;
                }
                PartitionBy::Stride(field, stride) => {
                    let f = d.schema.field(field)?;
                    if !f.ty.is_numeric() {
                        return Err(AlgebraError::InvalidParameter(format!(
                            "partition stride requires a numeric field, `{field}` is {}",
                            f.ty
                        )));
                    }
                    if *stride <= 0.0 {
                        return Err(AlgebraError::InvalidParameter(
                            "partition stride must be positive".into(),
                        ));
                    }
                }
                PartitionBy::Predicate(cond) => {
                    for f in cond.referenced_fields() {
                        d.schema.index_of(&f)?;
                    }
                }
            }
            d.partitioned = true;
            Ok(d)
        }
        LayoutExpr::VerticalPartition { input, groups } => {
            let mut d = check_with(input, provider)?;
            if groups.is_empty() {
                return Err(AlgebraError::InvalidParameter(
                    "vertical partition requires at least one group".into(),
                ));
            }
            let mut seen: Vec<&String> = Vec::new();
            for group in groups {
                for field in group {
                    d.schema.index_of(field)?;
                    if seen.contains(&field) {
                        return Err(AlgebraError::DuplicateField(field.clone()));
                    }
                    seen.push(field);
                }
            }
            d.groups = groups.clone();
            Ok(d)
        }
        LayoutExpr::RowMajor { input } => {
            let mut d = check_with(input, provider)?;
            d.groups = Vec::new();
            Ok(d)
        }
        LayoutExpr::ColumnMajor { input } => {
            let mut d = check_with(input, provider)?;
            d.groups = d.schema.field_names().into_iter().map(|f| vec![f]).collect();
            Ok(d)
        }
        LayoutExpr::Pax { input, spec } => {
            let mut d = check_with(input, provider)?;
            if spec.records_per_page == 0 {
                return Err(AlgebraError::InvalidParameter(
                    "pax requires a positive records-per-page".into(),
                ));
            }
            d.pax = Some(spec.clone());
            Ok(d)
        }
        LayoutExpr::Fold { input, key, values } => {
            let mut d = check_with(input, provider)?;
            if key.is_empty() || values.is_empty() {
                return Err(AlgebraError::InvalidParameter(
                    "fold requires non-empty key and value field lists".into(),
                ));
            }
            for f in key.iter().chain(values.iter()) {
                d.schema.index_of(f)?;
            }
            if key.iter().any(|k| values.contains(k)) {
                return Err(AlgebraError::InvalidParameter(
                    "fold key and value fields must be disjoint".into(),
                ));
            }
            let mut reordered: Vec<String> = key.clone();
            reordered.extend(values.clone());
            d.schema = d.schema.project(&reordered)?;
            d.set_fields_from_schema();
            d.folded = Some((key.clone(), values.clone()));
            Ok(d)
        }
        LayoutExpr::Unfold { input } => {
            let mut d = check_with(input, provider)?;
            if d.folded.is_none() {
                return Err(AlgebraError::ShapeMismatch(
                    "unfold applied to a layout that is not folded".into(),
                ));
            }
            d.folded = None;
            Ok(d)
        }
        LayoutExpr::Prejoin {
            left,
            right,
            join_attr,
        } => {
            let dl = check_with(left, provider)?;
            let dr = check_with(right, provider)?;
            dl.schema.index_of(join_attr)?;
            dr.schema.index_of(join_attr)?;
            let mut d = DerivedLayout::from_schema(dl.schema.prejoin(&dr.schema)?);
            d.partitioned = dl.partitioned || dr.partitioned;
            Ok(d)
        }
        LayoutExpr::Compress {
            input,
            fields,
            codec,
        } => {
            let mut d = check_with(input, provider)?;
            let targets: Vec<String> = if fields.is_empty() {
                d.schema.field_names()
            } else {
                fields.clone()
            };
            for f in &targets {
                let fd = d.schema.field(f)?;
                let needs_numeric = matches!(
                    codec,
                    CodecSpec::Delta | CodecSpec::BitPack | CodecSpec::FrameOfReference
                );
                if needs_numeric && !fd.ty.is_numeric() {
                    return Err(AlgebraError::InvalidParameter(format!(
                        "{codec} compression requires numeric fields, `{f}` is {}",
                        fd.ty
                    )));
                }
            }
            for f in targets {
                d.codecs.push((f, *codec));
            }
            Ok(d)
        }
        LayoutExpr::OrderBy { input, keys } => {
            let mut d = check_with(input, provider)?;
            if keys.is_empty() {
                return Err(AlgebraError::InvalidParameter(
                    "orderby requires at least one key".into(),
                ));
            }
            for k in keys {
                d.schema.index_of(&k.field)?;
            }
            d.orderings.push(keys.clone());
            Ok(d)
        }
        LayoutExpr::GroupBy { input, keys } => {
            let mut d = check_with(input, provider)?;
            for k in keys {
                d.schema.index_of(k)?;
            }
            d.grouped_by.extend(keys.clone());
            Ok(d)
        }
        LayoutExpr::Limit { input, .. } => check_with(input, provider),
        LayoutExpr::Grid { input, dims } => {
            let mut d = check_with(input, provider)?;
            if dims.is_empty() {
                return Err(AlgebraError::InvalidParameter(
                    "grid requires at least one dimension".into(),
                ));
            }
            for dim in dims {
                let f = d.schema.field(&dim.field)?;
                if !f.ty.is_numeric() {
                    return Err(AlgebraError::InvalidParameter(format!(
                        "grid dimension `{}` must be numeric, found {}",
                        dim.field, f.ty
                    )));
                }
                if dim.stride <= 0.0 || !dim.stride.is_finite() {
                    return Err(AlgebraError::InvalidParameter(format!(
                        "grid stride for `{}` must be positive and finite",
                        dim.field
                    )));
                }
            }
            d.grid = Some(dims.clone());
            d.partitioned = true;
            Ok(d)
        }
        LayoutExpr::ZOrder { input, fields } => {
            let mut d = check_with(input, provider)?;
            if fields.is_empty() {
                if d.grid.is_none() {
                    return Err(AlgebraError::ShapeMismatch(
                        "zorder() without fields requires an underlying grid".into(),
                    ));
                }
            } else {
                for f in fields {
                    let fd = d.schema.field(f)?;
                    if !fd.ty.is_numeric() {
                        return Err(AlgebraError::InvalidParameter(format!(
                            "zorder attribute `{f}` must be numeric, found {}",
                            fd.ty
                        )));
                    }
                }
            }
            d.zordered = true;
            Ok(d)
        }
        LayoutExpr::Transpose { input } => {
            let mut d = check_with(input, provider)?;
            d.transposed = !d.transposed;
            Ok(d)
        }
        LayoutExpr::Chunk { input, size } => {
            let mut d = check_with(input, provider)?;
            if *size == 0 {
                return Err(AlgebraError::InvalidParameter(
                    "chunk size must be positive".into(),
                ));
            }
            d.chunk = Some(*size);
            Ok(d)
        }
        LayoutExpr::Index { input, fields } => {
            let mut d = check_with(input, provider)?;
            if fields.is_empty() || fields.len() > 2 {
                return Err(AlgebraError::InvalidParameter(
                    "index requires one field (B-tree) or two fields (R-tree)".into(),
                ));
            }
            let mut seen: Vec<&String> = Vec::new();
            for field in fields {
                let fd = d.schema.field(field)?;
                if !fd.ty.is_numeric() {
                    return Err(AlgebraError::InvalidParameter(format!(
                        "index field `{field}` must be numeric, found {}",
                        fd.ty
                    )));
                }
                if seen.contains(&field) {
                    return Err(AlgebraError::DuplicateField(field.clone()));
                }
                seen.push(field);
            }
            if d.folded.is_some() {
                return Err(AlgebraError::ShapeMismatch(
                    "index cannot be declared over a folded layout".into(),
                ));
            }
            d.index = Some(fields.clone());
            Ok(d)
        }
        LayoutExpr::Lsm { input, key } => {
            let mut d = check_with(input, provider)?;
            if key.is_empty() {
                return Err(AlgebraError::InvalidParameter(
                    "lsm requires at least one key field".into(),
                ));
            }
            let mut seen: Vec<&String> = Vec::new();
            for field in key {
                d.schema.index_of(field)?;
                if seen.contains(&field) {
                    return Err(AlgebraError::DuplicateField(field.clone()));
                }
                seen.push(field);
            }
            if d.lsm.is_some() {
                return Err(AlgebraError::ShapeMismatch(
                    "nested lsm tiers are not supported (one write buffer per table)".into(),
                ));
            }
            // Memtable rows arrive in insertion order and runs are key-sorted,
            // so the layout as a whole can no longer deliver the inner
            // layout's declared orderings without re-sorting.
            d.orderings.clear();
            d.lsm = Some(key.clone());
            Ok(d)
        }
        LayoutExpr::Comprehension(c) => check_comprehension(c, provider),
    }
}

fn check_comprehension(
    c: &Comprehension,
    provider: &dyn SchemaProvider,
) -> Result<DerivedLayout> {
    let tables = c.base_tables();
    let table = tables.first().ok_or_else(|| {
        AlgebraError::InvalidParameter("comprehension requires at least one table generator".into())
    })?;
    let schema = provider
        .schema_for(table)
        .ok_or_else(|| AlgebraError::UnknownTable(table.clone()))?;
    for f in c.referenced_fields() {
        schema.index_of(&f)?;
    }
    // Derive the output schema from the head expressions.
    let mut out_fields = Vec::with_capacity(c.head.len());
    for (i, h) in c.head.iter().enumerate() {
        match h {
            crate::comprehension::ElemExpr::Field(name) => {
                out_fields.push(schema.field(name)?.clone());
            }
            other => {
                let ty = if other.referenced_fields().is_empty() {
                    DataType::Int
                } else {
                    DataType::Float
                };
                out_fields.push(Field::new(format!("expr{i}"), ty));
            }
        }
    }
    let out_schema = Schema::try_new(format!("{table}#compr"), out_fields)?;
    Ok(DerivedLayout::from_schema(out_schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comprehension::Condition;
    use crate::expr::SortOrder;

    fn traces() -> Schema {
        Schema::new(
            "Traces",
            vec![
                Field::new("t", DataType::Timestamp),
                Field::new("lat", DataType::Float),
                Field::new("lon", DataType::Float),
                Field::new("id", DataType::String),
            ],
        )
    }

    #[test]
    fn n4_layout_derivation() {
        let n4 = LayoutExpr::table("Traces")
            .order_by(["t"])
            .group_by(["id"])
            .project(["lat", "lon"])
            .grid([("lat", 0.002), ("lon", 0.002)])
            .zorder()
            .delta(["lat", "lon"]);
        let d = check(&n4, &traces()).unwrap();
        assert_eq!(d.fields(), &["lat".to_string(), "lon".to_string()]);
        assert!(d.zordered);
        assert!(d.grid.is_some());
        assert_eq!(d.codec_for("lat"), Some(CodecSpec::Delta));
        assert_eq!(d.codec_for("id"), None);
        assert_eq!(d.grouped_by, vec!["id"]);
        // the orderby on `t` does not survive the projection to lat/lon
        assert!(d.orderings.is_empty());
    }

    #[test]
    fn unknown_field_and_table_rejected() {
        let bad_field = LayoutExpr::table("Traces").project(["speed"]);
        assert!(matches!(
            check(&bad_field, &traces()),
            Err(AlgebraError::UnknownField { .. })
        ));
        let bad_table = LayoutExpr::table("Nope").project(["lat"]);
        assert!(matches!(
            check(&bad_table, &traces()),
            Err(AlgebraError::UnknownTable(_))
        ));
    }

    #[test]
    fn zorder_requires_grid_or_fields() {
        let bare = LayoutExpr::table("Traces").zorder();
        assert!(check(&bare, &traces()).is_err());
        let on_fields = LayoutExpr::table("Traces").zorder_on(["lat", "lon"]);
        assert!(check(&on_fields, &traces()).unwrap().zordered);
    }

    #[test]
    fn delta_requires_numeric_fields() {
        let bad = LayoutExpr::table("Traces").delta(["id"]);
        assert!(matches!(
            check(&bad, &traces()),
            Err(AlgebraError::InvalidParameter(_))
        ));
    }

    #[test]
    fn grid_parameter_validation() {
        let bad_stride = LayoutExpr::table("Traces").grid([("lat", 0.0)]);
        assert!(check(&bad_stride, &traces()).is_err());
        let bad_field = LayoutExpr::table("Traces").grid([("id", 1.0)]);
        assert!(check(&bad_field, &traces()).is_err());
    }

    #[test]
    fn vertical_groups_and_duplicates() {
        let ok = LayoutExpr::table("Traces").vertical([vec!["lat", "lon"], vec!["t"]]);
        let d = check(&ok, &traces()).unwrap();
        assert!(d.is_vertically_partitioned());
        assert_eq!(d.groups.len(), 2);

        let dup = LayoutExpr::table("Traces").vertical([vec!["lat"], vec!["lat"]]);
        assert!(matches!(
            check(&dup, &traces()),
            Err(AlgebraError::DuplicateField(_))
        ));
    }

    #[test]
    fn fold_and_unfold() {
        let schema = Schema::new(
            "T",
            vec![
                Field::new("Zip", DataType::Int),
                Field::new("Area", DataType::Int),
                Field::new("Addr", DataType::String),
            ],
        );
        let folded = LayoutExpr::table("T").fold(["Area"], ["Zip", "Addr"]);
        let d = check(&folded, &schema).unwrap();
        assert_eq!(
            d.folded,
            Some((vec!["Area".to_string()], vec!["Zip".to_string(), "Addr".to_string()]))
        );
        assert_eq!(d.fields(), &["Area".to_string(), "Zip".into(), "Addr".into()]);

        let unfolded = LayoutExpr::table("T")
            .fold(["Area"], ["Zip", "Addr"])
            .unfold();
        assert!(check(&unfolded, &schema).unwrap().folded.is_none());

        let bad_unfold = LayoutExpr::table("T").unfold();
        assert!(check(&bad_unfold, &schema).is_err());

        let overlapping = LayoutExpr::table("T").fold(["Area"], ["Area", "Zip"]);
        assert!(check(&overlapping, &schema).is_err());
    }

    #[test]
    fn prejoin_schema_and_attr_check() {
        let orders = Schema::new(
            "Orders",
            vec![
                Field::new("oid", DataType::Int),
                Field::new("cid", DataType::Int),
            ],
        );
        let customers = Schema::new(
            "Customers",
            vec![
                Field::new("cid", DataType::Int),
                Field::new("name", DataType::String),
            ],
        );
        let provider: Vec<Schema> = vec![orders, customers];
        let e = LayoutExpr::table("Orders").prejoin(LayoutExpr::table("Customers"), "cid");
        let d = check_with(&e, &provider).unwrap();
        assert_eq!(d.fields().len(), 4);

        let bad = LayoutExpr::table("Orders").prejoin(LayoutExpr::table("Customers"), "zip");
        assert!(check_with(&bad, &provider).is_err());
    }

    #[test]
    fn orderby_recorded_and_primary_ordering() {
        let e = LayoutExpr::table("Traces")
            .order_by(["id"])
            .order_by_keys(vec![SortKey::desc("t")]);
        let d = check(&e, &traces()).unwrap();
        assert_eq!(d.orderings.len(), 2);
        let primary = d.primary_ordering().unwrap();
        assert_eq!(primary[0].field, "t");
        assert_eq!(primary[0].order, SortOrder::Desc);
    }

    #[test]
    fn select_validates_predicate_fields() {
        let ok = LayoutExpr::table("Traces").select(Condition::range("lat", 42.0, 42.5));
        assert!(check(&ok, &traces()).is_ok());
        let bad = LayoutExpr::table("Traces").select(Condition::eq("speed", 1i64));
        assert!(check(&bad, &traces()).is_err());
    }

    #[test]
    fn comprehension_output_schema() {
        let c = Comprehension::over_table("Traces", ["lat", "lon"]);
        let d = check(&LayoutExpr::Comprehension(c), &traces()).unwrap();
        assert_eq!(d.fields(), &["lat".to_string(), "lon".to_string()]);
    }

    #[test]
    fn pax_and_chunk_validation() {
        let ok = LayoutExpr::table("Traces").pax_with(64).chunk(128);
        let d = check(&ok, &traces()).unwrap();
        assert_eq!(d.pax.as_ref().unwrap().records_per_page, 64);
        assert_eq!(d.chunk, Some(128));
        assert!(check(&LayoutExpr::table("Traces").pax_with(0), &traces()).is_err());
        assert!(check(&LayoutExpr::table("Traces").chunk(0), &traces()).is_err());
    }

    #[test]
    fn transpose_toggles() {
        let once = LayoutExpr::table("Traces").transpose();
        assert!(check(&once, &traces()).unwrap().transposed);
        let twice = LayoutExpr::table("Traces").transpose().transpose();
        assert!(!check(&twice, &traces()).unwrap().transposed);
    }
}
