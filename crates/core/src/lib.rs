//! # RodentStore — an adaptive, declarative storage system
//!
//! RodentStore is a storage system in which the physical representation of a
//! logical table is described declaratively with a *storage algebra*:
//! expressions such as `zorder(grid[lat,lon; 0.002,0.002](project[lat,lon](Traces)))`
//! tell the system how to group tuples into rows, columns, arrays and grid
//! cells, in which order to place them on disk, and which compression schemes
//! to apply. An algebra interpreter renders expressions into page-based
//! storage; a small access-method API (`scan`, `get_element`, `next`,
//! `scan_cost`, `get_element_cost`, `order_list`) exposes the data to any
//! front end; and a cost-based design advisor recommends layouts for a given
//! workload.
//!
//! This crate is the user-facing façade tying the subsystems together:
//!
//! * [`Database`] — create tables, load data, apply or change layouts
//!   (eagerly, lazily, or only for new data), and run queries; in-memory
//!   ([`Database::in_memory`]) or durable ([`Database::create`] /
//!   [`Database::open`], with write-ahead logging, checkpoints, and crash
//!   recovery);
//! * [`CatalogView`] — a lock-free, point-in-time view of the table/layout
//!   metadata (per-table [`TableState`]s published through atomic snapshot
//!   swaps — see [`catalog`]);
//! * [`durability`] — the on-disk manifest and logical WAL operations;
//! * [`reorg`] — the reorganization strategies of Section 5 of the paper.
//!
//! ```
//! use rodentstore::{Database, ScanRequest, Condition};
//! use rodentstore_workload::{generate_traces, traces_schema, CartelConfig};
//!
//! let mut db = Database::in_memory();
//! db.create_table(traces_schema()).unwrap();
//! db.insert("Traces", generate_traces(&CartelConfig {
//!     observations: 2_000, vehicles: 10, ..CartelConfig::default()
//! })).unwrap();
//!
//! // Declare the case-study layout N3: grid the coordinates.
//! db.apply_layout_text("Traces", "grid[lat,lon;0.02,0.02](project[lat,lon](Traces))")
//!     .unwrap();
//!
//! let rows = db.scan("Traces", &ScanRequest::all()
//!     .predicate(Condition::range("lat", 42.30, 42.35))).unwrap();
//! assert!(rows.iter().all(|r| (42.30..=42.35).contains(&r[0].as_f64().unwrap())));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod database;
pub mod durability;
pub mod monitor;
pub mod observe;
pub mod reorg;

#[doc = include_str!("../../../docs/LAYOUT_ALGEBRA.md")]
/// (Operator reference, doc-tested — the module exists to carry the
/// documentation; see `docs/LAYOUT_ALGEBRA.md` in the repository.)
pub mod layout_algebra {}

pub use catalog::{CatalogView, LayoutStats, Rows, TableState};
pub use database::{
    AccessPath, AdaptOutcome, AdaptivePolicy, Database, Explain, TableSnapshot,
};
pub use durability::DurabilityOptions;
pub use monitor::{QueryTemplate, WorkloadProfile};
pub use observe::metric_names;
pub use reorg::ReorgStrategy;

// Re-export the pieces users need to drive the system without importing
// every sub-crate explicitly.
pub use rodentstore_algebra::{parse, Condition, DataType, Field, LayoutExpr, Schema, Value};
pub use rodentstore_exec::{
    AccessMethods, CostParams, Cursor, ScanRequest, WindowAccumulator, WindowRow,
    WindowedAggregate,
};
pub use rodentstore_layout::{PhysicalLayout, RenderOptions};
pub use rodentstore_obs::{
    CostedAlternative, Event, EventKind, HistogramSummary, MetricsSnapshot,
};
pub use rodentstore_optimizer::{advise, AdvisorOptions, Recommendation, Workload};
pub use rodentstore_storage::{IoSnapshot, IoStats, SyncPolicy};

use std::fmt;

/// Errors surfaced by the RodentStore façade.
#[derive(Debug)]
pub enum RodentError {
    /// Algebra parsing or validation failed.
    Algebra(rodentstore_algebra::AlgebraError),
    /// Rendering or reading a layout failed.
    Layout(rodentstore_layout::LayoutError),
    /// The access-method layer rejected a request.
    Exec(rodentstore_exec::ExecError),
    /// The design advisor failed.
    Optimizer(rodentstore_optimizer::OptimizerError),
    /// The storage backend (pages, WAL, manifest I/O) failed.
    Storage(rodentstore_storage::StorageError),
    /// A table was not found in the catalog.
    UnknownTable(String),
    /// A table with the same name already exists.
    TableExists(String),
    /// The operation is invalid in the current state.
    Invalid(String),
}

impl fmt::Display for RodentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RodentError::Algebra(e) => write!(f, "{e}"),
            RodentError::Layout(e) => write!(f, "{e}"),
            RodentError::Exec(e) => write!(f, "{e}"),
            RodentError::Optimizer(e) => write!(f, "{e}"),
            RodentError::Storage(e) => write!(f, "{e}"),
            RodentError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            RodentError::TableExists(t) => write!(f, "table `{t}` already exists"),
            RodentError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for RodentError {}

impl From<rodentstore_algebra::AlgebraError> for RodentError {
    fn from(e: rodentstore_algebra::AlgebraError) -> Self {
        RodentError::Algebra(e)
    }
}
impl From<rodentstore_layout::LayoutError> for RodentError {
    fn from(e: rodentstore_layout::LayoutError) -> Self {
        RodentError::Layout(e)
    }
}
impl From<rodentstore_exec::ExecError> for RodentError {
    fn from(e: rodentstore_exec::ExecError) -> Self {
        RodentError::Exec(e)
    }
}
impl From<rodentstore_optimizer::OptimizerError> for RodentError {
    fn from(e: rodentstore_optimizer::OptimizerError) -> Self {
        RodentError::Optimizer(e)
    }
}
impl From<rodentstore_storage::StorageError> for RodentError {
    fn from(e: rodentstore_storage::StorageError) -> Self {
        RodentError::Storage(e)
    }
}

/// Result alias for RodentStore operations.
pub type Result<T> = std::result::Result<T, RodentError>;
