//! The RodentStore database façade.

use crate::catalog::{CatalogView, Registry, Rows, TableMap, TableSlot, TableState};
use crate::durability::{self, Durability, DurabilityOptions, DurableOp, ManifestContext};
use crate::observe::EngineObs;
use crate::reorg::ReorgStrategy;
use crate::{Result, RodentError};
use parking_lot::{Mutex, RwLock};
use rodentstore_algebra::comprehension::Condition;
use rodentstore_algebra::expr::{LayoutExpr, SortOrder};
use rodentstore_algebra::parse;
use rodentstore_algebra::schema::Schema;
use rodentstore_algebra::validate;
use rodentstore_algebra::value::Record;
use rodentstore_exec::{
    AccessMethods, CostParams, Cursor, ScanRequest, WindowAccumulator, WindowRow,
    WindowedAggregate,
};
use rodentstore_layout::{
    render, AppendOutcome, LsmActivity, LsmRun, LsmState, MemTableProvider, PhysicalLayout,
    RenderOptions, StoredIndex, StoredObject,
};
use rodentstore_optimizer::{
    advise, advise_with_baseline, AdvisorOptions, Recommendation, Workload,
};
use rodentstore_storage::heap::HeapFile;
use rodentstore_storage::pager::{FileStore, PageStore, Pager};
use rodentstore_obs::{CostedAlternative, Event, EventKind, JsonWriter, MetricsSnapshot};
use rodentstore_storage::stats::{IoSnapshot, OpStatsScope};
use rodentstore_storage::wal::{Wal, WalInstruments};
use rodentstore_storage::PageId;
use rodentstore_sync::{AtomicArc, EpochRegistry};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the closed-loop self-adaptation machinery.
///
/// The loop is: every query is recorded into the table's
/// [`crate::monitor::WorkloadProfile`]; every `check_every` queries (in auto
/// mode) — or whenever [`Database::maybe_adapt`] is called — the profile is
/// fed to the storage design advisor, the recommended design is costed
/// against the *current* design on the same data sample, and the layout is
/// re-declared only when the predicted improvement clears the `hysteresis`
/// threshold. The transition itself goes through the ordinary
/// [`ReorgStrategy`] machinery, so reads stay correct mid-transition.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Run the adaptation check automatically from inside
    /// `scan`/`open_cursor`/`get_element` every `check_every` queries.
    /// When `false`, the profile is still maintained but adaptation only
    /// happens on explicit [`Database::maybe_adapt`] calls.
    pub auto: bool,
    /// Auto mode: queries between adaptation checks.
    pub check_every: u64,
    /// Minimum queries observed on a table before the advisor is consulted
    /// at all (prevents adapting to the first few requests).
    pub min_queries: u64,
    /// Required relative improvement before a new layout is applied: adapt
    /// only if `best_cost < current_cost × (1 − hysteresis)`. Damps
    /// oscillation between near-equal designs.
    pub hysteresis: f64,
    /// Reorganization strategy used for adaptation-driven layout changes.
    pub strategy: ReorgStrategy,
    /// Advisor configuration (cost model, annealing budget, seed).
    pub advisor: AdvisorOptions,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            auto: false,
            check_every: 64,
            min_queries: 16,
            hysteresis: 0.15,
            strategy: ReorgStrategy::Eager,
            advisor: AdvisorOptions::default(),
        }
    }
}

/// What an adaptation check decided.
#[derive(Debug, Clone)]
pub enum AdaptOutcome {
    /// Too little traffic observed to trust the profile.
    InsufficientData {
        /// Queries observed so far.
        queries_observed: u64,
    },
    /// The advisor's best design did not beat the current one by more than
    /// the hysteresis threshold (or *was* the current design).
    KeptCurrent {
        /// Predicted workload cost of the current design, in ms
        /// (`f64::INFINITY` when the current design could not be costed).
        current_ms: f64,
        /// Predicted workload cost of the advisor's best design, in ms.
        best_ms: f64,
    },
    /// A better design was found and applied.
    Adapted {
        /// The newly declared layout expression.
        expr: LayoutExpr,
        /// Predicted workload cost of the previous design, in ms.
        from_ms: f64,
        /// Predicted workload cost of the new design, in ms.
        to_ms: f64,
    },
}

/// Runtime configuration knobs (cost model, render options, adaptation
/// policy). Published through an [`AtomicArc`] like everything else on the
/// read path, so queries pick up the current parameters without locking;
/// setters serialize on a dedicated mutex.
#[derive(Clone, Default)]
struct Config {
    cost_params: CostParams,
    render_options: RenderOptions,
    adaptive: AdaptivePolicy,
}

/// A superseded rendering on its way to page reclamation. Built by the
/// writer that replaced it (while still holding the table's writer mutex)
/// and pushed onto [`Database::retired`] together with the epoch at which
/// the replacement was published.
struct RetiredAccess {
    access: Arc<AccessMethods>,
    /// The chain token of the [`TableState`] that owned `access` (see
    /// [`TableState::chain`]). Incrementally forked renderings share sealed
    /// pages, so a *fully* retired rendering's extent may still be read
    /// through pins on other generations of the same chain.
    chain: Arc<()>,
    /// The pages this retirement owns: for `whole_chain` retirements the
    /// rendering's entire extent (heaps and index tree); for shared
    /// retirements only the pages its successor fork vacated (the relocated
    /// tail and index pages — generation-exclusive, shared with nobody).
    pages: Vec<PageId>,
    whole_chain: bool,
}

/// Epoch-tagged garbage: anything a writer unlinked from the published
/// structures but that a reader pinned *before* the swap may still hold.
/// Dropped (and, for renderings, its pages reclaimed) once every epoch pin
/// taken before the swap has been released — see [`Database::reap_retired`].
enum Retired {
    /// A superseded table state. Holding it keeps its `records`/`pending`
    /// chunks and its `access` alive for late readers.
    State {
        _state: Arc<TableState>,
        epoch: u64,
    },
    /// A superseded table map (from `create_table`/`drop_table`).
    Map {
        _map: Arc<TableMap>,
        epoch: u64,
    },
    /// A superseded configuration value.
    Config {
        _config: Arc<Config>,
        epoch: u64,
    },
    /// A superseded rendering with the pages it owns (see [`RetiredAccess`]).
    Access {
        access: Arc<AccessMethods>,
        chain: Arc<()>,
        pages: Vec<PageId>,
        epoch: u64,
        whole_chain: bool,
    },
}

/// A RodentStore database: a registry of per-table slots, a shared pager,
/// and the machinery to declare and change physical layouts.
///
/// # Concurrency model
///
/// `Database` is `Send + Sync`: wrap it in an [`Arc`] and share it across
/// threads. Every entry point takes `&self`. The read path (`scan`,
/// `open_cursor`, `get_element`, `scan_cost`, `scan_pages`) acquires **no
/// lock at all**: pinning a [`TableSnapshot`] is an epoch pin (two atomic
/// operations) plus three atomic pointer loads — the table map, the table's
/// published [`TableState`], and the current `Config` (see
/// `rodentstore_sync`). The query is then served entirely from the pinned
/// immutable state, so reads scale linearly across cores and are never
/// stalled by writers, checkpoint fsyncs, or re-renders of *any* table —
/// including their own (a reader pinned to the previous state keeps it).
///
/// Writers build the replacement `TableState` aside, swap it in with one
/// atomic store while holding that table's short writer mutex, and retire
/// the superseded state through the epoch scheme: each retirement is tagged
/// with the publication epoch, and its memory (and, for renderings, its
/// pages) is reclaimed only once every reader pin older than that epoch has
/// been released. Per-table writer mutexes mean a re-render or absorption of
/// table A never delays a write — let alone a read — on table B.
///
/// Lock hierarchy (outer to inner); readers take none of these:
///
/// 1. `commit_fence` (`RwLock`) — *read* side held by every durable
///    mutation (insert, layout change, create/drop, lazy render) from
///    before it applies until its WAL commit resolves; *write* side held by
///    `checkpoint`, making the manifest a consistent cut of states,
///    retirement list, and commit outcomes.
/// 2. `registry.structural` (`Mutex`) — serializes `create_table` /
///    `drop_table` (map publication).
/// 3. per-table `TableSlot::writer` (`Mutex`) — serializes state
///    publication for one table (held across build + swap; `drop_table`
///    takes it too, so a concurrent insert cannot apply to a dropped slot
///    after its drop was logged).
/// 4. leaf mutexes — `TableSlot::profile`, the `retired` list,
///    `pending_free`, config writes, and storage-level locks (WAL state,
///    heap files, pager).
///
/// The expensive half of adaptation — the advisor search — runs with no
/// lock held; only the final re-render holds the affected table's writer
/// mutex, and even then readers of that table proceed against the pinned
/// previous state.
pub struct Database {
    registry: Registry,
    /// Epoch clock + reader slots backing all lock-free publication.
    epochs: EpochRegistry,
    pager: Arc<Pager>,
    wal: Wal,
    config: AtomicArc<Config>,
    /// Serializes read-modify-write config updates (readers load `config`
    /// lock-free).
    config_write: Mutex<()>,
    durability: Option<Durability>,
    /// Epoch-tagged superseded states, maps, configs, and renderings whose
    /// reclamation waits for old reader pins to drain. Replaces the old
    /// graveyard; reaped opportunistically by every write path.
    retired: Mutex<Vec<Retired>>,
    /// Durable databases only: pages freed since the last checkpoint. They
    /// must not be reallocated until the *next* checkpoint writes a
    /// manifest that no longer references them — a crash before that would
    /// make `open` reattach manifest extents whose pages were reused and
    /// overwritten. In-memory databases bypass this (no recovery to
    /// protect) and free straight to the pager.
    pending_free: Mutex<Vec<PageId>>,
    /// Extents vacated by levelled-tier compaction, parked until their run
    /// token is unique. A compacted run's sealed pages are shared by every
    /// published generation since the run was created, so they cannot ride
    /// a single generation's retirement — a reader decoding any older
    /// generation still reaches them. Each reap re-checks the tokens and
    /// quarantines the extents whose last holder dropped.
    parked_extents: Mutex<Vec<(Arc<()>, Vec<PageId>)>>,
    /// Fences durable mutation windows against checkpoints. A durable
    /// mutation holds the *read* side from before it applies until its
    /// commit resolves (acknowledged or rolled back); a checkpoint holds
    /// the *write* side, so it never cuts a manifest while an applied-but-
    /// unresolved insert is in flight, and the retirement list it folds
    /// into the manifest's free list is consistent with the states it
    /// encodes. Also serializes checkpoints.
    commit_fence: RwLock<()>,
    /// True while [`Database::open`] replays the WAL tail: mutations must
    /// not be re-logged, but the database already counts as durable (so
    /// freed pages are quarantined, not reused — the manifest being
    /// replayed against may still reference them).
    replaying: std::sync::atomic::AtomicBool,
    /// Metrics registry, event ring, and pre-resolved instrument handles.
    obs: EngineObs,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog().table_names())
            .field("pages", &self.pager.page_count())
            .finish()
    }
}

/// A pinned, immutable view of one table at a point in time: the canonical
/// rows, the pending buffer, and the rendered layout as they were when the
/// snapshot was taken. Produced by [`Database::snapshot`] with **no lock**
/// — pinning is an epoch pin plus atomic loads — and concurrent layout
/// swaps, inserts, or checkpoints never affect it: the pinned state is
/// immutable, and the epoch scheme keeps its pages alive until the snapshot
/// is dropped. This is what keeps scans consistent (and scalable) while the
/// system adapts underneath them.
pub struct TableSnapshot {
    state: Arc<TableState>,
    cost_params: CostParams,
}

impl Database {
    /// Creates an in-memory database with the default (16 KiB) page size.
    pub fn in_memory() -> Database {
        Database::with_pager(Arc::new(Pager::in_memory()))
    }

    /// Creates an in-memory database with an explicit page size.
    pub fn with_page_size(page_size: usize) -> Database {
        Database::with_pager(Arc::new(Pager::in_memory_with_page_size(page_size)))
    }

    /// Creates a database over an arbitrary pager (e.g. file-backed).
    pub fn with_pager(pager: Arc<Pager>) -> Database {
        let db = Database {
            registry: Registry::new(),
            epochs: EpochRegistry::new(),
            pager,
            wal: Wal::new(),
            config: AtomicArc::new(Arc::new(Config::default())),
            config_write: Mutex::new(()),
            durability: None,
            retired: Mutex::new(Vec::new()),
            pending_free: Mutex::new(Vec::new()),
            parked_extents: Mutex::new(Vec::new()),
            commit_fence: RwLock::new(()),
            replaying: std::sync::atomic::AtomicBool::new(false),
            obs: EngineObs::new(),
        };
        db.install_wal_instruments();
        db
    }

    /// Hands the WAL the engine's commit/fsync histograms. Called once per
    /// WAL instance — the constructors that replace `self.wal` (durable
    /// create/open) re-install after the swap.
    fn install_wal_instruments(&self) {
        self.wal.set_instruments(WalInstruments {
            commit_micros: Arc::clone(&self.obs.ins.wal_commit_micros),
            fsync_micros: Arc::clone(&self.obs.ins.wal_fsync_micros),
        });
    }

    /// Creates (or resets) a durable database in directory `dir` with the
    /// default [`DurabilityOptions`] (16 KiB pages, durable group commit).
    /// Three files are created: `data.rodent` (pages, with a validated
    /// superblock), `wal.rodent` (the write-ahead log), and
    /// `manifest.rodent` (the catalog checkpoint). Every mutation is logged
    /// through the WAL before pages are touched; call
    /// [`Database::checkpoint`] to bound the log, and [`Database::open`] to
    /// come back after a restart or crash.
    pub fn create(dir: impl AsRef<Path>) -> Result<Database> {
        Database::create_with(dir, DurabilityOptions::default())
    }

    /// [`Database::create`] with explicit page size and sync policy.
    pub fn create_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| RodentError::Storage(rodentstore_storage::StorageError::Io(e)))?;
        let (data_path, wal_path, manifest_path) = durability::db_paths(&dir);
        // Resetting an existing database: remove its manifest *before*
        // truncating the data/WAL files. A crash mid-create then leaves a
        // directory that cleanly fails to open (no manifest), never an old
        // manifest pointing page extents into an emptied data file.
        if manifest_path.exists() {
            std::fs::remove_file(&manifest_path)
                .map_err(|e| RodentError::Storage(rodentstore_storage::StorageError::Io(e)))?;
        }
        let mut store =
            FileStore::create(&data_path, options.page_size).map_err(RodentError::Storage)?;
        store.set_mmap_reads(options.mmap_reads);
        let store = Arc::new(store);
        let pager = Arc::new(Pager::with_store(
            Arc::clone(&store) as Arc<dyn PageStore>
        ));
        let mut db = Database::with_pager(pager);
        db.wal = Wal::create(&wal_path, options.sync).map_err(RodentError::Storage)?;
        db.install_wal_instruments();
        // An initial (empty) manifest makes the directory openable even if
        // the process dies before the first checkpoint.
        let config = db.config_snapshot();
        let manifest = durability::encode_manifest(
            &db.catalog(),
            &ManifestContext {
                page_size: options.page_size,
                page_count: 0,
                replay_from_lsn: 0,
                free_pages: Vec::new(),
                policy: config.adaptive.clone(),
                cost_params: config.cost_params,
            },
        )?;
        durability::write_manifest_file(&dir, &manifest)?;
        db.durability = Some(Durability { dir });
        Ok(db)
    }

    /// Opens a durable database directory: validates the data file's
    /// superblock against the manifest, reattaches every rendered layout
    /// from its persisted page extents (**no re-rendering**), restores each
    /// table's workload profile and layout statistics, discards data pages
    /// written after the last checkpoint, and replays the WAL tail —
    /// committed transactions win, torn or corrupt tails are discarded.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Database::open_with(dir, DurabilityOptions::default())
    }

    /// [`Database::open`] with an explicit sync policy for future commits
    /// (the page size always comes from the manifest).
    pub fn open_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Database> {
        let dir = dir.as_ref().to_path_buf();
        let (data_path, wal_path, _) = durability::db_paths(&dir);
        let manifest = durability::decode_manifest(&durability::read_manifest_file(&dir)?)?;
        let mut store = FileStore::open_expecting(&data_path, manifest.page_size)
            .map_err(RodentError::Storage)?;
        store.set_mmap_reads(options.mmap_reads);
        let store = Arc::new(store);
        // Pages written after the checkpoint are not described by the
        // manifest; drop them — the WAL replay below re-derives their
        // contents from the logged logical operations.
        store
            .truncate(manifest.page_count)
            .map_err(RodentError::Storage)?;
        let pager = Arc::new(Pager::with_store(
            Arc::clone(&store) as Arc<dyn PageStore>
        ));
        // The checkpointed free list becomes usable again the moment the
        // data file is truncated back to the checkpoint: pages retired
        // before the checkpoint are dead (or were pinned by readers that no
        // longer exist), so WAL replay below may re-render into them.
        pager.restore_free_list(manifest.free_pages.iter().copied());
        let mut db = Database::with_pager(Arc::clone(&pager));
        // Single-owner phase throughout `open`: no concurrent readers can
        // exist before the database is returned, so superseded values are
        // dropped directly instead of routed through the epoch scheme.
        drop(db.config.swap(Arc::new(Config {
            cost_params: manifest.cost_params,
            adaptive: manifest.policy.clone(),
            render_options: RenderOptions::default(),
        })));
        let cost_params = manifest.cost_params;

        let mut orphaned_index_pages: Vec<PageId> = Vec::new();
        {
            // Pass 1: every table's schema, rows, profile, and counters.
            let mut entries: Vec<(String, Arc<TableSlot>)> = Vec::new();
            let mut rendered = Vec::new();
            for table in manifest.tables {
                let name = table.schema.name().to_string();
                if entries.iter().any(|(n, _)| n == &name) {
                    return Err(RodentError::TableExists(name));
                }
                let mut state = TableState::new(table.schema);
                state.strategy = table.strategy;
                state.records = Rows::from_vec(table.records);
                state.pending = Rows::from_vec(table.pending);
                state.stats = table.stats;
                if let Some(expr_text) = table.layout_expr {
                    state.layout_expr = Some(parse(&expr_text)?);
                }
                entries.push((
                    name.clone(),
                    Arc::new(TableSlot::with_state(state, table.profile.into_profile())),
                ));
                if let Some(r) = table.rendered {
                    rendered.push((name, r));
                }
            }
            drop(db.registry.publish(TableMap { entries }));

            // Pass 2: reattach rendered layouts (after *all* schemas exist,
            // so multi-table expressions like prejoin validate).
            let view = db.catalog();
            let schemas = view.schemas();
            for (name, r) in rendered {
                let expr = view.get(&name)?.layout_expr.clone().ok_or_else(|| {
                    RodentError::Invalid(format!(
                        "manifest has a rendered layout for `{name}` but no expression"
                    ))
                })?;
                let mut derived = validate::check_with(&expr, &schemas)?;
                // Incremental appends clear native-order claims; restore
                // what was actually true at checkpoint time, not what the
                // expression would promise after a fresh render.
                derived.orderings = r.orderings;
                let schema = derived.schema.clone();
                let objects: Vec<StoredObject> = r
                    .objects
                    .into_iter()
                    .map(|o| {
                        // Reopen each object's last page as a refillable
                        // tail; orphan slots from discarded post-checkpoint
                        // appends are cut before replay re-applies them.
                        let heap = HeapFile::from_pages_with_tail(
                            o.name.clone(),
                            Arc::clone(&pager),
                            o.pages,
                            o.heap_records,
                            o.tail_valid_slots,
                        )
                        .map_err(RodentError::Storage)?;
                        Ok(StoredObject {
                            heap,
                            name: o.name,
                            fields: o.fields,
                            encoding: o.encoding,
                            codecs: o.codecs.into_iter().collect(),
                            cell: o.cell,
                            row_count: o.row_count as usize,
                            ordering: o.ordering,
                        })
                    })
                    .collect::<Result<_>>()?;
                let mut layout = PhysicalLayout::new(
                    r.name,
                    expr,
                    schema,
                    derived,
                    objects,
                    r.row_count as usize,
                    Arc::clone(&pager),
                );
                // Reattach the declared index. The checkpointed tree content
                // is trustworthy because post-checkpoint maintenance never
                // mutates manifest-referenced tree pages in place — it
                // rebuilds into fresh ones (see `StoredIndex::protect`), and
                // those fresh pages were truncated away above. `from_parts`
                // reattaches protected, so replayed appends below relocate
                // the tree before touching it. If the manifest disagrees
                // with the declared layout, its pages are quarantined and
                // the fallback after replay rebuilds from the recovered
                // heaps.
                if let Some(im) = r.index {
                    let manifest_pages = im.pages.clone();
                    if layout.derived.index.as_deref() == Some(&im.fields[..]) {
                        layout.index = Some(
                            StoredIndex::from_parts(
                                Arc::clone(&pager),
                                &im.kind,
                                im.fields,
                                im.key_kinds,
                                im.root,
                                im.len,
                                im.height as usize,
                                im.outliers,
                            )
                            .map_err(RodentError::Layout)?,
                        );
                    } else {
                        orphaned_index_pages.extend(manifest_pages);
                    }
                }
                // Reattach the levelled tier. Runs are immutable once sealed
                // — a spill writes, flushes, and re-opens them with every
                // page sealed — so recovery re-opens each run over its
                // recorded extent: zero page allocation, zero re-rendering,
                // whether the crash hit mid-spill or mid-compaction (the
                // manifest describes whichever generation last
                // checkpointed; later spills replay from the WAL). If the
                // declared layout no longer carries a tier, the run pages
                // quarantine like orphaned index pages.
                if let Some(lm) = r.lsm {
                    if let Some(key) = layout.derived.lsm.clone() {
                        let runs = lm
                            .runs
                            .into_iter()
                            .map(|run| LsmRun {
                                heap: HeapFile::from_pages(
                                    format!("{}.run{}", layout.name, run.seq),
                                    Arc::clone(&pager),
                                    run.pages,
                                    run.heap_records,
                                ),
                                level: run.level,
                                seq: run.seq,
                                row_count: run.row_count as usize,
                                key_bounds: run.key_bounds,
                                token: Arc::new(()),
                            })
                            .collect();
                        layout.lsm = Some(
                            LsmState::restore(
                                key,
                                lm.memtable_cap as usize,
                                lm.fanout as usize,
                                lm.next_seq,
                                &layout.schema,
                                lm.memtable,
                                runs,
                            )
                            .map_err(RodentError::Layout)?,
                        );
                    } else {
                        for run in lm.runs {
                            orphaned_index_pages.extend(run.pages);
                        }
                    }
                }
                let slot = db.slot(&name)?;
                let cur = db.pin_state(&slot);
                let mut next = (*cur).clone();
                next.access = Some(Arc::new(AccessMethods::with_cost_params(
                    layout,
                    cost_params,
                )));
                next.chain = Arc::new(());
                drop(slot.state.swap(Arc::new(next)));
            }
        }

        // Replay the WAL tail past the checkpoint. The `replaying` flag
        // suppresses re-logging, while `durability` is already set so that
        // pages freed by replayed layout swaps are *quarantined* — the
        // manifest we just reattached from still references them, and a
        // crash during or after replay (before the next checkpoint) must
        // find them intact.
        db.wal = Wal::open(&wal_path, options.sync).map_err(RodentError::Storage)?;
        db.install_wal_instruments();
        db.durability = Some(Durability { dir });
        // Manifest tree pages that could not be reattached: the on-disk
        // manifest still references them until the next checkpoint, so they
        // quarantine rather than free.
        db.quarantine(std::mem::take(&mut orphaned_index_pages));
        db.replaying.store(true, Ordering::SeqCst);
        for (lsn, _tx, payload) in db.wal.committed_ops().map_err(RodentError::Storage)? {
            if lsn < manifest.replay_from_lsn {
                continue;
            }
            let op = DurableOp::decode(&payload)?;
            db.apply_op(op)?;
        }
        db.replaying.store(false, Ordering::SeqCst);

        // Fallback: anything still indexless but declared indexed (the
        // manifest disagreed with the declared layout above) rebuilds from
        // the recovered stored objects. The rebuild happens on a fork — the
        // recovered rendering may be shared with states superseded during
        // replay — and publishes through the normal retirement route.
        db.reap_retired();
        let view = db.catalog();
        for (_, slot, state) in view.entries().iter() {
            let Some(access) = state.access.clone() else {
                continue;
            };
            if access.layout().derived.index.is_none() || access.layout().index.is_some() {
                continue;
            }
            let mut forked_layout = access.layout().fork_for_append().map_err(RodentError::Layout)?;
            forked_layout.rebuild_index().map_err(RodentError::Layout)?;
            let vacated = forked_layout.take_relocated();
            let forked = AccessMethods::with_cost_params(forked_layout, cost_params);
            let _w = slot.writer.lock();
            let cur = db.pin_state(slot);
            let mut next = (*cur).clone();
            let chain = Arc::clone(&next.chain);
            next.access = Some(Arc::new(forked));
            db.publish_state(
                slot,
                next,
                vec![RetiredAccess {
                    access,
                    chain,
                    pages: vacated,
                    whole_chain: false,
                }],
            );
        }
        drop(view);
        Ok(db)
    }

    /// Whether this database is file-backed (created via
    /// [`Database::create`]/[`Database::open`]).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Checkpoints a durable database: flushes every rendered object's tail
    /// page, syncs the data file, atomically rewrites the manifest (catalog,
    /// canonical rows, layout page extents, workload profiles, the free-page
    /// list, and the adaptive policy / cost parameters), and truncates the
    /// WAL. After a checkpoint, [`Database::open`] needs no replay and no
    /// re-rendering. Errors on in-memory databases.
    ///
    /// Holds the commit fence's **write** side for the duration: every
    /// durable mutation holds the read side across its apply-and-commit
    /// window, so the captured [`CatalogView`] is a consistent cut
    /// *including* commit outcomes, and the retirement list folded into the
    /// manifest's free list cannot gain entries that the captured states
    /// still reference. Readers take no lock and are never stalled behind
    /// the checkpoint's fsyncs.
    pub fn checkpoint(&self) -> Result<()> {
        let dir = match &self.durability {
            Some(d) => d.dir.clone(),
            None => {
                return Err(RodentError::Invalid(
                    "checkpoint requires a durable database (Database::create/open)".into(),
                ))
            }
        };
        let _fence = self.commit_fence.write();
        // Phase timings feed the `checkpoint` event; a few `Instant` reads
        // are noise next to the fsyncs they bracket.
        let cp_started = Instant::now();
        let mut phases: Vec<(String, u64)> = Vec::new();
        let mut phase_started = Instant::now();
        let mark = |phases: &mut Vec<(String, u64)>, started: &mut Instant, name: &str| {
            phases.push((name.to_string(), started.elapsed().as_micros() as u64));
            *started = Instant::now();
        };
        self.reap_retired();
        mark(&mut phases, &mut phase_started, "reap_retired");
        let mut notes = Vec::new();
        let view = self.catalog();
        // Write out partially filled heap tails so every page extent is
        // complete (tails stay open: later appends keep refilling them, and
        // the manifest records their valid slot counts), then *protect*
        // each tail: once the manifest references it, it is never
        // rewritten in place — the next append relocates it. Pages already
        // superseded by earlier relocations join the quarantine *before*
        // the snapshot below, so a checkpoint that fails later cannot lose
        // track of them — they simply wait for the next attempt.
        {
            let mut pending = self.pending_free.lock();
            for (_, _, state) in view.entries().iter() {
                if let Some(access) = &state.access {
                    for obj in &access.layout().objects {
                        obj.heap.flush().map_err(RodentError::Storage)?;
                        obj.heap.protect_tail();
                        pending.extend(obj.heap.take_relocated());
                    }
                    // Index trees get the same treatment at whole-tree
                    // granularity: the manifest below references the current
                    // pages, so the next maintenance rebuilds into fresh ones
                    // and the vacated pages quarantine here next time.
                    if let Some(idx) = &access.layout().index {
                        pending.extend(idx.take_relocated());
                        idx.protect();
                    }
                    // Sealed lsm runs carry no refillable tails and were
                    // flushed when sealed; extents vacated by tier
                    // compaction ride the token-guarded parking lot and are
                    // swept below once no generation can still read them.
                    if let Some(lsm) = &access.layout().lsm {
                        notes.extend(lsm.take_relocation_notes());
                    }
                }
            }
            // Relocation notes of retired-but-pinned renderings are dead
            // too (pins read sealed pages, never relocation bookkeeping);
            // same quarantine route.
            for retired in self.retired.lock().iter() {
                if let Retired::Access { access, .. } = retired {
                    pending.extend(access.layout().take_relocated());
                    notes.extend(access.layout().take_lsm_relocation_notes());
                }
            }
        }
        self.park_lsm_notes(notes);
        // Sweep the parking lot: extents whose run token drained join this
        // checkpoint's quarantine (and thus this manifest's free list).
        {
            let mut parked = self.parked_extents.lock();
            let mut freed = Vec::new();
            parked.retain_mut(|(token, pages)| {
                if Arc::strong_count(token) == 1 {
                    freed.append(pages);
                    false
                } else {
                    true
                }
            });
            self.pending_free.lock().extend(freed);
        }
        mark(&mut phases, &mut phase_started, "flush_tails");
        self.pager.sync().map_err(RodentError::Storage)?;
        mark(&mut phases, &mut phase_started, "pager_sync");
        let replay_from = self.wal.next_lsn();
        // The manifest's free list: pages free right now, plus everything
        // quarantined since the last checkpoint (this manifest is the one
        // that stops referencing them), plus the pages owned by retired
        // renderings still pinned by in-flight readers — pins cannot
        // survive a restart, so after recovery those pages are genuinely
        // free (and do not leak across restarts).
        let quarantined = self.pending_free.lock().clone();
        let mut free_pages = self.pager.free_list();
        free_pages.extend(quarantined.iter().copied());
        for retired in self.retired.lock().iter() {
            if let Retired::Access { pages, .. } = retired {
                free_pages.extend(pages.iter().copied());
            }
        }
        // Parked compaction extents are likewise only held back by
        // in-process readers; after a restart nothing references them.
        for (_, pages) in self.parked_extents.lock().iter() {
            free_pages.extend(pages.iter().copied());
        }
        free_pages.sort_unstable();
        free_pages.dedup();
        let config = self.config_snapshot();
        let manifest = durability::encode_manifest(
            &view,
            &ManifestContext {
                page_size: self.pager.page_size(),
                page_count: self.pager.page_count(),
                replay_from_lsn: replay_from,
                free_pages,
                policy: config.adaptive.clone(),
                cost_params: config.cost_params,
            },
        )?;
        durability::write_manifest_file(&dir, &manifest)?;
        mark(&mut phases, &mut phase_started, "write_manifest");
        // The manifest on disk no longer references the quarantined pages:
        // they are now safe to reallocate. `quarantine` only appends and
        // checkpoints are serialized, so the snapshot taken above is
        // exactly the current prefix of the list — pages quarantined
        // *during* the manifest write stay behind for the next checkpoint.
        let pages_freed = quarantined.len() as u64;
        self.pending_free.lock().drain(..quarantined.len());
        self.pager.free_pages(quarantined);
        mark(&mut phases, &mut phase_started, "release_quarantine");
        if let Some(last) = self.wal.last_lsn() {
            let bytes_before = self.wal.bytes_len().map_err(RodentError::Storage)?;
            self.wal.truncate(last).map_err(RodentError::Storage)?;
            if self.obs.enabled() {
                let bytes_after = self.wal.bytes_len().map_err(RodentError::Storage)?;
                self.obs.ins.wal_truncations.incr();
                self.obs
                    .ins
                    .wal_truncated_bytes
                    .add(bytes_before.saturating_sub(bytes_after));
                self.obs.events.push(EventKind::WalTruncate {
                    bytes_before,
                    bytes_after,
                });
            }
        }
        mark(&mut phases, &mut phase_started, "wal_truncate");
        // The copying vacuum's payoff: compaction and retirement leave free
        // pages behind, and when a contiguous run of them forms the file's
        // tail, the data file can actually shrink. Safe only *now*: the
        // manifest just written lists these pages as free, so a crash after
        // the truncate recovers by extending the file back with zeroed
        // pages nothing references.
        let mut free = self.pager.free_list();
        free.sort_unstable();
        let mut keep = self.pager.page_count();
        while keep > 0 && free.last() == Some(&(keep - 1)) {
            free.pop();
            keep -= 1;
        }
        if keep < self.pager.page_count() {
            self.pager
                .truncate_pages(keep)
                .map_err(RodentError::Storage)?;
        }
        mark(&mut phases, &mut phase_started, "shrink_data_file");
        if self.obs.enabled() {
            self.obs.ins.checkpoint_count.incr();
            self.obs.ins.checkpoint_pages_freed.add(pages_freed);
            self.obs
                .ins
                .checkpoint_micros
                .record(cp_started.elapsed().as_micros() as u64);
            self.obs.events.push(EventKind::Checkpoint {
                micros: cp_started.elapsed().as_micros() as u64,
                pages_freed,
                phases,
            });
        }
        Ok(())
    }

    /// Looks up a table's slot (lock-free).
    fn slot(&self, table: &str) -> Result<Arc<TableSlot>> {
        let guard = self.epochs.pin();
        self.registry
            .load(&guard)
            .get(table)
            .map(Arc::clone)
            .ok_or_else(|| RodentError::UnknownTable(table.to_string()))
    }

    /// Whether `slot` is still the one registered under `table`. Writers
    /// that looked a slot up before taking its writer mutex re-check with
    /// this: a concurrent `drop_table` (or drop + recreate) detaches the
    /// slot, and applying to a detached slot would silently lose the write
    /// (or, on rollback, free another incarnation's pages).
    fn slot_is_current(&self, table: &str, slot: &Arc<TableSlot>) -> bool {
        let guard = self.epochs.pin();
        self.registry
            .load(&guard)
            .get(table)
            .is_some_and(|current| Arc::ptr_eq(current, slot))
    }

    /// Pins a table's current published state (lock-free).
    fn pin_state(&self, slot: &TableSlot) -> Arc<TableState> {
        let guard = self.epochs.pin();
        slot.load(&guard)
    }

    /// The current configuration (lock-free).
    fn config_snapshot(&self) -> Arc<Config> {
        let guard = self.epochs.pin();
        self.config.load(&guard)
    }

    /// Read-modify-write of the configuration: serialized by `config_write`,
    /// published atomically, superseded value retired through the epochs.
    fn update_config(&self, mutate: impl FnOnce(&mut Config)) {
        let _w = self.config_write.lock();
        let mut config = (*self.config_snapshot()).clone();
        mutate(&mut config);
        let old = self.config.swap(Arc::new(config));
        let epoch = self.epochs.advance();
        self.retired.lock().push(Retired::Config {
            _config: old,
            epoch,
        });
    }

    /// Publishes `state` as `slot`'s current state (caller holds the slot's
    /// writer mutex), retiring the superseded state — and any renderings the
    /// writer replaced — at the publication epoch.
    fn publish_state(&self, slot: &TableSlot, state: TableState, retire: Vec<RetiredAccess>) {
        let old = slot.state.swap(Arc::new(state));
        let epoch = self.epochs.advance();
        let mut retired = self.retired.lock();
        retired.push(Retired::State {
            _state: old,
            epoch,
        });
        for r in retire {
            retired.push(Retired::Access {
                access: r.access,
                chain: r.chain,
                pages: r.pages,
                epoch,
                whole_chain: r.whole_chain,
            });
        }
    }

    /// Publishes a new table map (create/drop; caller holds `structural`),
    /// retiring the superseded map.
    fn publish_map(&self, map: TableMap) {
        let old = self.registry.publish(map);
        let epoch = self.epochs.advance();
        self.retired.lock().push(Retired::Map { _map: old, epoch });
    }

    /// Retires renderings outside a state publication (drop_table: the
    /// state itself stays reachable through the retired map).
    fn retire_accesses(&self, retire: Vec<RetiredAccess>) {
        if retire.is_empty() {
            return;
        }
        let epoch = self.epochs.advance();
        let mut retired = self.retired.lock();
        for r in retire {
            retired.push(Retired::Access {
                access: r.access,
                chain: r.chain,
                pages: r.pages,
                epoch,
                whole_chain: r.whole_chain,
            });
        }
    }

    /// Hands freed pages toward reuse. In-memory databases free straight to
    /// the pager; durable databases quarantine them until the next
    /// checkpoint, because the last on-disk manifest may still reference
    /// them as live extents — reusing such a page before a new manifest
    /// lands would make crash recovery reattach a layout over overwritten
    /// bytes.
    fn quarantine(&self, pages: Vec<PageId>) {
        if self.durability.is_some() {
            self.pending_free.lock().extend(pages);
        } else {
            self.pager.free_pages(pages);
        }
    }

    /// Reclaims retired values whose epoch has passed every live reader
    /// pin. Called opportunistically from every write path; cheap when the
    /// list is empty.
    ///
    /// Order matters: superseded states/maps/configs drop first (releasing
    /// their references on renderings and chain tokens), then shared
    /// retirements (releasing chain tokens), then whole-chain retirements —
    /// so one pass reclaims as much as the refcounts allow. A whole-chain
    /// retirement additionally waits for its chain token to be unique:
    /// incrementally forked generations share sealed pages, and a pin on
    /// *any* generation (or a not-yet-reclaimed shared retirement of the
    /// chain) may still read pages owned by the chain's terminal
    /// retirement.
    fn reap_retired(&self) {
        let min_active = self.epochs.min_active();
        let mut reclaimed = Vec::new();
        let mut notes = Vec::new();
        let mut accesses_reclaimed = 0u64;
        {
            let mut retired = self.retired.lock();
            retired.retain(|r| match r {
                Retired::State { epoch, .. }
                | Retired::Map { epoch, .. }
                | Retired::Config { epoch, .. } => *epoch >= min_active,
                Retired::Access { .. } => true,
            });
            for reap_whole_chain in [false, true] {
                retired.retain(|r| {
                    let Retired::Access {
                        access,
                        chain,
                        pages,
                        epoch,
                        whole_chain,
                    } = r
                    else {
                        return true;
                    };
                    if *whole_chain != reap_whole_chain {
                        return true;
                    }
                    if *epoch >= min_active || Arc::strong_count(access) != 1 {
                        return true; // an old pin (or late holder) remains
                    }
                    if *whole_chain && Arc::strong_count(chain) != 1 {
                        return true; // another chain generation is reachable
                    }
                    reclaimed.extend(pages.iter().copied());
                    reclaimed.extend(access.layout().take_relocated());
                    notes.extend(access.layout().take_lsm_relocation_notes());
                    accesses_reclaimed += 1;
                    false
                });
            }
        }
        self.park_lsm_notes(notes);
        // Parked compaction extents: free the ones whose run token just
        // became unique (every generation that shared the run has dropped).
        {
            let mut parked = self.parked_extents.lock();
            parked.retain_mut(|(token, pages)| {
                if Arc::strong_count(token) == 1 {
                    reclaimed.append(pages);
                    false
                } else {
                    true
                }
            });
        }
        if !reclaimed.is_empty() {
            if self.obs.enabled() {
                let pages = reclaimed.len() as u64;
                let bytes = pages * self.pager.page_size() as u64;
                self.obs.ins.epoch_reaps.incr();
                self.obs.ins.epoch_reclaimed_pages.add(pages);
                self.obs.ins.epoch_retired_bytes.add(bytes);
                self.obs.events.push(EventKind::EpochReclaim {
                    accesses: accesses_reclaimed,
                    pages,
                    bytes,
                });
            }
            self.quarantine(reclaimed);
        }
    }

    /// Parks compaction-vacated extents until their run tokens drain (see
    /// the `parked_extents` field).
    fn park_lsm_notes(&self, notes: Vec<(Arc<()>, Vec<PageId>)>) {
        if !notes.is_empty() {
            self.parked_extents.lock().extend(notes);
        }
    }

    /// Folds a levelled tier's drained structural-work journal into the
    /// metrics registry and event ring: absorb timings become the
    /// tail-latency histograms, spills and merges become counters plus
    /// structured events.
    fn record_lsm_activity(&self, table: &str, activity: Vec<LsmActivity>) {
        if !self.obs.enabled() || activity.is_empty() {
            return;
        }
        let ins = &self.obs.ins;
        for entry in activity {
            match entry {
                LsmActivity::Absorb { micros, merges, .. } => {
                    ins.lsm_absorb_micros.record(micros);
                    ins.lsm_absorb_merges.record(merges);
                }
                LsmActivity::Spill { level, rows, pages } => {
                    ins.lsm_spills.incr();
                    ins.lsm_spill_rows.add(rows);
                    ins.lsm_spill_pages.add(pages);
                    self.obs.events.push(EventKind::LsmSpill {
                        table: table.to_string(),
                        level,
                        rows,
                        pages,
                    });
                }
                LsmActivity::Merge {
                    level,
                    runs_merged,
                    rows,
                    pages_written,
                    pages_freed,
                } => {
                    ins.lsm_merges.incr();
                    ins.lsm_pages_written.add(pages_written);
                    ins.lsm_pages_freed.add(pages_freed);
                    ins.lsm_compaction_levels.record(u64::from(level));
                    self.obs.events.push(EventKind::LsmMerge {
                        table: table.to_string(),
                        level,
                        runs_merged,
                        rows,
                        pages_written,
                        pages_freed,
                    });
                }
            }
        }
    }

    /// Number of retired-but-unreclaimed values (states, maps, configs, and
    /// renderings, and parked compaction extents) currently deferred behind
    /// reader pins. Diagnostic: tests assert it stays bounded and drains
    /// once pins are released.
    pub fn retired_snapshots(&self) -> usize {
        self.retired.lock().len() + self.parked_extents.lock().len()
    }

    /// Writes a mutation's op record to the WAL (no-op for in-memory
    /// databases — the payload closure is never even evaluated, so the
    /// default mode pays no serialization cost). Called *before* the
    /// mutation touches any published state or page — the write-ahead rule.
    /// The transaction is left open; pass the returned id to
    /// [`Database::log_op_commit`] / [`Database::log_op_abort`] with the
    /// mutation's outcome, so an op whose apply step fails is recorded as
    /// aborted and recovery replay skips it instead of re-failing on it
    /// forever.
    fn log_op_begin(
        &self,
        payload: impl FnOnce() -> Vec<u8>,
    ) -> Result<Option<rodentstore_storage::TxId>> {
        if self.durability.is_none() || self.replaying.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let tx = self.wal.begin().map_err(RodentError::Storage)?;
        self.wal.log_op(tx, &payload()).map_err(RodentError::Storage)?;
        Ok(Some(tx))
    }

    /// Commits the transaction opened by [`Database::log_op_begin`].
    /// Durability is acknowledged at commit time per the configured
    /// [`rodentstore_storage::SyncPolicy`]; a crash (or write failure)
    /// before the commit record lands makes the op invisible to replay, so
    /// callers whose mutation already applied must roll it back on error —
    /// otherwise live state would diverge from both the reported error and
    /// the recovered state.
    fn log_op_commit(&self, tx: Option<rodentstore_storage::TxId>) -> Result<()> {
        if let Some(tx) = tx {
            self.wal.commit(tx).map_err(RodentError::Storage)?;
        }
        Ok(())
    }

    /// Marks the transaction aborted after its mutation failed (or, as a
    /// *compensation*, after its commit record's sync failed — aborts void
    /// a transaction even when a commit record exists). Best effort: if the
    /// abort record cannot be written, the op simply stays uncommitted,
    /// which replay treats identically in the no-commit case. The sync
    /// pushes the abort toward disk so a commit record that landed before
    /// its own failed sync is voided durably, not just in the page cache —
    /// if that sync fails too, the storage is already failing and the
    /// narrow commit-persists-abort-doesn't window is irreducible.
    fn log_op_abort(&self, tx: Option<rodentstore_storage::TxId>) {
        if let Some(tx) = tx {
            let _ = self.wal.abort(tx);
            let _ = self.wal.sync();
        }
    }

    /// Re-executes a logged operation during recovery — through the same
    /// public mutation paths normal operation uses (the `replaying` flag
    /// suppresses re-logging inside them).
    fn apply_op(&self, op: DurableOp) -> Result<()> {
        match op {
            DurableOp::CreateTable(schema) => self.create_table(schema),
            DurableOp::DropTable(table) => self.drop_table(&table),
            DurableOp::Insert { table, rows } => self.insert(&table, rows),
            DurableOp::ApplyLayout {
                table,
                expr,
                strategy,
                adapted,
            } => {
                let parsed = parse(&expr)?;
                self.apply_layout_inner(&table, parsed, strategy, adapted, None)
                    .map(|_| ())
            }
        }
    }

    /// Overrides the disk-model parameters used for cost estimates.
    pub fn set_cost_params(&self, cost_params: CostParams) {
        self.update_config(|c| c.cost_params = cost_params);
    }

    /// Overrides the memtable spill threshold and level fanout used when
    /// rendering *new* `lsm` tiers (tests shrink them to exercise
    /// multi-level shapes with few rows). Already-rendered tiers keep the
    /// parameters they were created — or reattached — with.
    pub fn set_lsm_params(&self, memtable_cap: usize, fanout: usize) {
        self.update_config(|c| {
            c.render_options.lsm_memtable_cap = memtable_cap;
            c.render_options.lsm_fanout = fanout;
        });
    }

    /// Replaces the self-adaptation policy.
    pub fn set_adaptive_policy(&self, policy: AdaptivePolicy) {
        self.update_config(|c| c.adaptive = policy);
    }

    /// The current self-adaptation policy.
    pub fn adaptive_policy(&self) -> AdaptivePolicy {
        self.config_snapshot().adaptive.clone()
    }

    /// Switches automatic adaptation on or off (keeping the rest of the
    /// policy unchanged). With auto mode on, every `check_every`-th query
    /// against a table runs the advisor over that table's live workload
    /// profile and re-declares the layout when the predicted improvement
    /// clears the hysteresis threshold — no manual `advise`/`apply_layout`
    /// calls needed.
    pub fn set_auto_adapt(&self, auto: bool) {
        self.update_config(|c| c.adaptive.auto = auto);
    }

    /// The shared pager (for I/O statistics, page counts, …).
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Forces every page read back onto the legacy copy-out path: scans
    /// copy page bytes out of the store and eagerly decode whole records,
    /// instead of borrowing shared frames. Reads return identical bytes
    /// either way — this exists as the A/B baseline for the zero-copy read
    /// path (`scan_hot_path` bench) and as a correctness oracle in property
    /// tests.
    pub fn set_copy_reads(&self, on: bool) {
        self.pager.set_force_copy(on);
    }

    /// Whether forced-copy reads are on (see [`Database::set_copy_reads`]).
    pub fn copy_reads(&self) -> bool {
        self.pager.force_copy()
    }

    /// Snapshot of the I/O statistics.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.pager.stats().snapshot()
    }

    /// A consistent, materialized view of the catalog (every table's
    /// published state at the time of the call). Taken lock-free; holding
    /// it blocks nobody — but it is a *snapshot*, so state published after
    /// the call is not visible through it.
    pub fn catalog(&self) -> CatalogView {
        let guard = self.epochs.pin();
        let map = self.registry.load(&guard);
        CatalogView::capture(&map, &guard)
    }

    /// The write-ahead log (substrate for transactional page writes).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }
}

impl Database {
    /// Creates a table from its logical schema.
    pub fn create_table(&self, schema: Schema) -> Result<()> {
        let _fence = self
            .durability
            .is_some()
            .then(|| self.commit_fence.read());
        let _structural = self.registry.structural.lock();
        self.reap_retired();
        let entries = {
            let guard = self.epochs.pin();
            let map = self.registry.load(&guard);
            if map.get(schema.name()).is_some() {
                return Err(RodentError::TableExists(schema.name().to_string()));
            }
            map.entries.clone()
        };
        // Commit before applying: the map publication cannot fail after the
        // existence pre-check, so a commit-record failure leaves nothing
        // applied (and a crash after the commit is healed by replay). A
        // failed commit is compensated with an abort so a commit record
        // that landed before its sync failed cannot replay a table the
        // caller was told does not exist.
        let tx = self.log_op_begin(|| durability::encode_create_table(&schema))?;
        if let Err(e) = self.log_op_commit(tx) {
            self.log_op_abort(tx);
            return Err(e);
        }
        let mut entries = entries;
        entries.push((
            schema.name().to_string(),
            Arc::new(TableSlot::new(schema)),
        ));
        self.publish_map(TableMap { entries });
        Ok(())
    }

    /// Drops a table. Its rendered pages are returned to the pager's free
    /// list for reuse once no in-flight reader pins them.
    pub fn drop_table(&self, table: &str) -> Result<()> {
        let _fence = self
            .durability
            .is_some()
            .then(|| self.commit_fence.read());
        let _structural = self.registry.structural.lock();
        self.reap_retired();
        let slot = self.slot(table)?;
        // Hold the slot's writer mutex across the drop: a concurrent insert
        // on this table either publishes (and WAL-logs) before our drop
        // record, or blocks here and fails the currency re-check after the
        // map swap — its rows can never apply to a slot whose drop is
        // already logged ahead of them.
        let _w = slot.writer.lock();
        // Commit-before-apply, as in `create_table`: the drop is infallible
        // after the existence pre-check (and a failed commit is compensated
        // with an abort, as there).
        let tx = self.log_op_begin(|| durability::encode_drop_table(table))?;
        if let Err(e) = self.log_op_commit(tx) {
            self.log_op_abort(tx);
            return Err(e);
        }
        let state = self.pin_state(&slot);
        let mut retire = Vec::new();
        if let Some(access) = state.access.clone() {
            retire.push(RetiredAccess {
                pages: owned_pages(&access),
                chain: Arc::clone(&state.chain),
                access,
                whole_chain: true,
            });
        }
        let entries = {
            let guard = self.epochs.pin();
            self.registry
                .load(&guard)
                .entries
                .iter()
                .filter(|(name, _)| name != table)
                .cloned()
                .collect()
        };
        self.publish_map(TableMap { entries });
        // The dropped state stays reachable through the retired map until
        // old pins drain; its rendering's pages follow the same clock.
        self.retire_accesses(retire);
        Ok(())
    }

    /// Inserts records into a table. If a layout is declared with the eager
    /// strategy, the rows are absorbed into the rendered representation
    /// immediately — *incrementally* where the layout shape allows (new heap
    /// records, column blocks, grid cells, or per-group vertical rows
    /// appended to a private fork of the rendering), falling back to a full
    /// re-render only for shapes that cannot take appends (fold, prejoin,
    /// limit). The lazy strategy defers the same absorption to the next
    /// access; with the new-data-only strategy the records are kept in a
    /// separate row-oriented buffer that scans merge in.
    ///
    /// Absorption and re-rendering happen *aside*, on state no reader can
    /// see, and land as one atomic publication — concurrent scans of this
    /// table keep streaming from the previous rendering throughout.
    ///
    /// On a durable database the rows are committed to the WAL *before*
    /// anything is published (write-ahead logging); how quickly the commit
    /// reaches the disk platter is governed by the
    /// [`rodentstore_storage::SyncPolicy`] chosen at create/open time.
    pub fn insert(&self, table: &str, records: Vec<Record>) -> Result<()> {
        let inserted = records.len();
        let started = self.obs.enabled().then(Instant::now);
        // Durable inserts hold the commit fence (shared side) from before
        // the rows apply until the commit resolves, so a checkpoint can
        // never persist rows whose commit might still fail and roll back.
        // Uncontended except while a checkpoint runs.
        let _fence = self
            .durability
            .is_some()
            .then(|| self.commit_fence.read());
        let slot = self.slot(table)?;
        let (tx, records_before, queue) = {
            let _w = slot.writer.lock();
            if !self.slot_is_current(table, &slot) {
                return Err(RodentError::UnknownTable(table.to_string()));
            }
            self.reap_retired();
            let state = self.pin_state(&slot);
            for r in &records {
                state.schema.validate_record(r)?;
            }
            let records_before = state.records.len();
            let tx = self.log_op_begin(|| durability::encode_insert(table, &records))?;
            if let Err(e) = self.insert_applied(&slot, &state, table, records) {
                self.log_op_abort(tx);
                return Err(e);
            }
            // Durable inserts resolve in apply order (see `CommitQueue`):
            // take the ticket while still holding the writer mutex, so
            // ticket order ≡ row-position order.
            let queue = tx.map(|_| {
                let queue = Arc::clone(&slot.commit_queue);
                let (ticket, removed_at_apply) = queue.take_ticket();
                (queue, ticket, removed_at_apply)
            });
            (tx, records_before, queue)
        };
        // Commit *outside* the writer mutex: under durable policies the
        // commit can fsync (and, with `SyncPolicy::GroupDurable`, park on a
        // shared fsync with other committers) — later writers of this table
        // must not queue behind the disk, and readers never waited in the
        // first place. WAL replay order still matches application order
        // because op records are appended while the writer mutex is held.
        let commit_result = self.log_op_commit(tx);
        if let Some((queue, ticket, removed_at_apply)) = queue {
            // Resolve in apply order: every earlier insert has confirmed or
            // rolled back by now, and `removed_since` rows — all positioned
            // before ours — are gone, shifting our rows down by exactly
            // that much.
            let removed_since = queue.await_turn(ticket, removed_at_apply);
            match &commit_result {
                Ok(()) => queue.finish(ticket, 0),
                Err(_) => {
                    // The commit's sync failed — but its *record* may have
                    // reached the log before the failure, and could still
                    // become durable. Compensate with an abort record
                    // (aborts void a transaction even after a commit
                    // record), then roll the live state back to match what
                    // recovery will now replay.
                    self.log_op_abort(tx);
                    let start = records_before.saturating_sub(removed_since as usize);
                    self.rollback_insert(table, &slot, start, inserted, &queue, ticket);
                }
            }
        }
        commit_result?;
        // Inserts feed the profile the way queries do: the decayed write
        // weight is what lets the advisor propose — and later retire — the
        // levelled tier, and a write flood must be able to trip the
        // auto-adaptation check without a single read in between. Replay
        // re-records too (reconstructing the post-checkpoint in-memory
        // weight) but never re-runs the advisor: the adaptations it decided
        // are already in the log as `ApplyLayout` ops.
        let config = self.config_snapshot();
        let run_check = {
            let mut profile = slot.profile.lock();
            profile.record_insert();
            config.adaptive.auto && profile.queries_since_check >= config.adaptive.check_every
        };
        if let Some(started) = started {
            self.obs.ins.insert_batches.incr();
            self.obs.ins.insert_rows.add(inserted as u64);
            self.obs
                .ins
                .insert_micros
                .record(started.elapsed().as_micros() as u64);
        }
        if run_check && !self.replaying.load(Ordering::SeqCst) {
            // The check may re-declare the layout, which takes the commit
            // fence itself — release ours first (read-reacquisition would
            // deadlock behind a waiting checkpoint).
            drop(_fence);
            self.auto_adapt_check(table)?;
        }
        Ok(())
    }

    /// The apply half of [`Database::insert`]: validation and WAL logging
    /// already happened (or are skipped — recovery replay trusts the log).
    /// The caller holds the table's writer mutex. The successor state —
    /// rows, pending buffer, and (for the eager strategy) the absorbed or
    /// re-rendered layout — is built entirely aside and published once; if
    /// any step fails, nothing is published and the table is untouched.
    fn insert_applied(
        &self,
        slot: &TableSlot,
        state: &Arc<TableState>,
        table: &str,
        records: Vec<Record>,
    ) -> Result<()> {
        let mut next = (**state).clone();
        let has_layout = next.access.is_some() || next.layout_expr.is_some();
        let mut retire = Vec::new();
        if has_layout {
            next.records.push_rows(records.clone());
            next.pending.push_rows(records);
            if next.strategy == ReorgStrategy::Eager {
                self.render_or_absorb(table, &mut next, &mut retire)?;
            }
        } else {
            next.records.push_rows(records);
        }
        self.publish_state(slot, next, retire);
        // Any table whose layout joins this one rendered from our *previous*
        // rows; flag it so its next access rebuilds (see
        // `mark_dependents_dirty`).
        self.mark_dependents_dirty(table);
        Ok(())
    }

    /// Removes the `count` rows starting at `start` from a table's live
    /// state after their commit record failed to land, then finishes the
    /// caller's [`crate::catalog::CommitQueue`] ticket. The caller owns the
    /// resolution turn, so `start` (already adjusted for earlier rollbacks)
    /// is exact; the finish happens *while the writer mutex is still held*,
    /// so a racing insert taking its ticket under that mutex sees the row
    /// removal and the queue's `removed` counter move together — never one
    /// without the other. The rendering is discarded only when it already
    /// absorbed the doomed rows (pending rows are a suffix of the canonical
    /// rows — rows still pending were never rendered).
    fn rollback_insert(
        &self,
        table: &str,
        slot: &Arc<TableSlot>,
        start: usize,
        count: usize,
        queue: &Arc<crate::catalog::CommitQueue>,
        ticket: u64,
    ) {
        let _w = slot.writer.lock();
        let removed = 'remove: {
            // Same name is not enough: the table may have been dropped (and
            // recreated) while our commit was in flight, and the new slot's
            // rows are not ours to drain — slot identity tells them apart.
            if !self.slot_is_current(table, slot)
                || !Arc::ptr_eq(&slot.commit_queue, queue)
            {
                break 'remove 0; // our table is gone; rows went with it
            }
            let state = self.pin_state(slot);
            let len = state.records.len();
            if start + count > len {
                // Unreachable while resolution order holds; never panic on
                // the error path (the commit failure is already reported).
                debug_assert!(false, "rollback window [{start}, +{count}) exceeds {len} rows");
                break 'remove 0;
            }
            let pending_start = len - state.pending.len();
            let mut next = (*state).clone();
            next.records.remove_range(start..start + count);
            let mut retire = Vec::new();
            if start >= pending_start {
                let offset = start - pending_start;
                next.pending.remove_range(offset..offset + count);
            } else if let Some(access) = next.access.take() {
                // The rendering absorbed the doomed rows; discard it. The
                // next access re-renders from the canonical rows, which now
                // match exactly what recovery would replay.
                retire.push(RetiredAccess {
                    pages: owned_pages(&access),
                    chain: std::mem::replace(&mut next.chain, Arc::new(())),
                    access,
                    whole_chain: true,
                });
            }
            self.publish_state(slot, next, retire);
            self.mark_dependents_dirty(table);
            count as u64
        };
        queue.finish(ticket, removed);
    }

    /// Flags every table whose declared layout reads `table` as a joined
    /// base (prejoin is the only multi-table operator) as having stale
    /// joined inputs. Prejoins capture their base tables *outside* those
    /// tables' writer mutexes, so a base-table publish that races a
    /// dependent's render would otherwise leave the dependent trailing by
    /// one batch until its own next write; the flag makes the dependent's
    /// next access — and the publish-time re-validation in
    /// `render_or_absorb` — rebuild from fresh captures instead.
    fn mark_dependents_dirty(&self, table: &str) {
        let guard = self.epochs.pin();
        let map = self.registry.load(&guard);
        for (name, slot) in map.entries.iter() {
            if name == table {
                continue;
            }
            let state = slot.load(&guard);
            let depends = state
                .layout_expr
                .as_ref()
                .is_some_and(|e| e.base_tables().iter().any(|t| t == table));
            if depends {
                slot.deps_dirty.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Number of logical rows in a table.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        let slot = self.slot(table)?;
        Ok(self.pin_state(&slot).row_count())
    }

    /// Declares the physical layout of a table using the textual algebra
    /// syntax, with the eager reorganization strategy.
    pub fn apply_layout_text(&self, table: &str, expr: &str) -> Result<()> {
        let expr = parse(expr)?;
        self.apply_layout(table, expr, ReorgStrategy::Eager)
    }

    /// Declares the physical layout of a table. The render happens aside,
    /// under the table's writer mutex only — scans of this table keep
    /// streaming from the previous rendering until the new one is published
    /// in a single atomic swap, and scans of *other* tables are entirely
    /// unaffected. The superseded rendering's pages are reclaimed once the
    /// last reader pinned to it drains.
    pub fn apply_layout(
        &self,
        table: &str,
        expr: LayoutExpr,
        strategy: ReorgStrategy,
    ) -> Result<()> {
        self.apply_layout_inner(table, expr, strategy, false, None)
            .map(|_| ())
    }

    /// The full layout-change path: validate, log, render aside, commit,
    /// publish — shared by [`Database::apply_layout`], adaptation, and
    /// recovery replay.
    ///
    /// With `expected` set (the adaptation path), the change only applies
    /// if the table's declared expression still equals `expected` when the
    /// writer mutex is taken; returns `Ok(false)` if another layout change
    /// won the race (the caller's cost comparison was computed against a
    /// stale baseline).
    ///
    /// Publication is strictly *after* the WAL commit resolves, and the
    /// commit itself runs without any reader-visible structure touched — a
    /// reader never observes a layout whose durability is still undecided,
    /// so there is no restore path: on any failure (render error, commit
    /// error) nothing was published and the table is exactly as before.
    fn apply_layout_inner(
        &self,
        table: &str,
        expr: LayoutExpr,
        strategy: ReorgStrategy,
        adapted: bool,
        expected: Option<&LayoutExpr>,
    ) -> Result<bool> {
        let _fence = self
            .durability
            .is_some()
            .then(|| self.commit_fence.read());
        // Validate against the whole catalog so prejoins across tables work
        // — and so invalid expressions are rejected *before* they are
        // logged.
        validate::check_with(&expr, &self.catalog().schemas())?;
        let slot = self.slot(table)?;
        let _w = slot.writer.lock();
        if !self.slot_is_current(table, &slot) {
            return Err(RodentError::UnknownTable(table.to_string()));
        }
        self.reap_retired();
        let state = self.pin_state(&slot);
        if let Some(expected) = expected {
            let current = state
                .layout_expr
                .clone()
                .unwrap_or_else(|| LayoutExpr::table(table));
            if &current != expected {
                return Ok(false);
            }
        }
        let mut next = (*state).clone();
        let mut retire = Vec::new();
        if let Some(old) = next.access.take() {
            retire.push(RetiredAccess {
                pages: owned_pages(&old),
                chain: std::mem::replace(&mut next.chain, Arc::new(())),
                access: old,
                whole_chain: true,
            });
        }
        next.layout_expr = Some(expr);
        next.strategy = strategy;
        next.pending.clear();
        if adapted {
            next.stats.adaptations += 1;
        }
        let tx = self.log_op_begin(|| {
            durability::encode_apply_layout(
                table,
                &next.layout_expr.as_ref().expect("just set").to_string(),
                strategy,
                adapted,
            )
        })?;
        if strategy.renders_immediately() {
            if let Err(e) = self.render_or_absorb(table, &mut next, &mut retire) {
                self.log_op_abort(tx);
                return Err(e); // nothing published; old rendering stays live
            }
        }
        if let Err(e) = self.log_op_commit(tx) {
            // The commit record may have landed before its sync failed; a
            // compensating abort keeps replay from resurrecting the layout
            // change we are abandoning. The new rendering was never
            // published, so discarding is just returning its pages.
            self.log_op_abort(tx);
            if let Some(new_access) = next.access.take() {
                self.quarantine(owned_pages(&new_access));
            }
            return Err(e);
        }
        self.publish_state(&slot, next, retire);
        Ok(true)
    }

    /// Renders the declared layout of `table` if it is not already rendered,
    /// or absorbs pending inserts into the existing rendering (no-op for
    /// tables without a declared layout).
    ///
    /// Absorption is incremental whenever the layout shape allows it: the
    /// pending rows are pipelined (selection, projection, …) and appended to
    /// a private *fork* of the stored objects — new heap records for row
    /// layouts, new column blocks for columnar ones, routed into (possibly
    /// new) cells for grids, projected onto every field group for vertical
    /// partitions — which is then swapped in atomically. Only shapes whose
    /// invariants cannot be maintained row-at-a-time (fold, prejoin, limit)
    /// fall back to a full re-render. Because the work happens on the fork,
    /// it proceeds under *any* concurrent read load: readers pinned to the
    /// published rendering never block it and are never blocked by it.
    pub fn ensure_rendered(&self, table: &str) -> Result<()> {
        let slot = self.slot(table)?;
        // Fast path — lock-free: nothing to do for tables without a
        // declared layout, or whose rendering is current.
        {
            let state = self.pin_state(&slot);
            if state.layout_expr.is_none() {
                return Ok(());
            }
            if state.access.is_some()
                && (state.pending.is_empty() || !state.strategy.absorbs_new_data_on_access())
                && !slot.deps_dirty.load(Ordering::SeqCst)
            {
                return Ok(());
            }
        }
        // Slow path: this is a write (it publishes a new rendering and
        // retires pages), so it runs under the commit fence like every
        // durable mutation — a checkpoint's manifest cut must not interleave
        // with the retirement it produces.
        let _fence = self
            .durability
            .is_some()
            .then(|| self.commit_fence.read());
        let _w = slot.writer.lock();
        if !self.slot_is_current(table, &slot) {
            return Err(RodentError::UnknownTable(table.to_string()));
        }
        self.reap_retired();
        let state = self.pin_state(&slot);
        // Re-check under the mutex: another thread may have rendered or
        // absorbed while we waited.
        if state.layout_expr.is_none()
            || (state.access.is_some()
                && (state.pending.is_empty() || !state.strategy.absorbs_new_data_on_access())
                && !slot.deps_dirty.load(Ordering::SeqCst))
        {
            return Ok(());
        }
        let mut next = (*state).clone();
        let mut retire = Vec::new();
        let result = self.render_or_absorb(table, &mut next, &mut retire);
        // Publish even when absorption failed: `render_or_absorb` then left
        // `next` with the rendering discarded (`access: None`), which is
        // the contract — a failed partial append must invalidate, and the
        // canonical rows remain the consistent source of truth.
        self.publish_state(&slot, next, retire);
        result
    }

    /// The build half of rendering/absorption: mutates the *aside* state
    /// `next` (never anything published) and records superseded renderings
    /// in `retire` for the caller's publication. The caller holds the
    /// table's writer mutex.
    ///
    /// On an absorption error the fork is discarded, `next.access` is set
    /// to `None` (the old rendering joins `retire` — a failed partial
    /// append invalidates rather than risk serving misaligned objects), and
    /// the error is returned; whether anything is published is the caller's
    /// decision.
    fn render_or_absorb(
        &self,
        table: &str,
        next: &mut TableState,
        retire: &mut Vec<RetiredAccess>,
    ) -> Result<()> {
        if next.layout_expr.is_none() {
            return Ok(());
        }
        let absorbs = next.strategy.absorbs_new_data_on_access();
        let slot = self.slot(table)?;
        // A joined base table published rows after this table's rendering
        // captured them (see `mark_dependents_dirty`): the rendering is
        // stale no matter how current it looks — skip the absorb fast path
        // and fall through to the full render, which retires it whole and
        // rebuilds from fresh captures.
        let stale_deps = slot.deps_dirty.load(Ordering::SeqCst);
        if let Some(access) = next.access.clone().filter(|_| !stale_deps) {
            if !absorbs || next.pending.is_empty() {
                return Ok(()); // rendering is current
            }
            // Incremental absorption on a fork: the fork shares the
            // published rendering's sealed pages (never mutating them — the
            // adopted tail is protected, so the first append relocates it)
            // and appends into fresh ones.
            let cost_params = self.config_snapshot().cost_params;
            let forked_layout = access
                .layout()
                .fork_for_append()
                .map_err(RodentError::Layout)?;
            let mut forked = AccessMethods::with_cost_params(forked_layout, cost_params);
            let provider =
                MemTableProvider::single(next.schema.clone(), next.pending.to_vec());
            match forked.append_rows(&provider) {
                Ok(AppendOutcome::Appended { .. }) => {
                    // Pages the fork vacated (the relocated tail, index
                    // pages it rebuilt away from) still back the published
                    // rendering for pinned readers: they are owned by the
                    // *old* rendering's shared retirement, reclaimed when
                    // its last pin drains. The chain token is shared — the
                    // fork and the original are generations of one page
                    // chain.
                    let vacated = forked.layout().take_relocated();
                    // Extents vacated by tier compaction are shared with
                    // every older generation and take the token-guarded
                    // parking route instead of the per-generation one.
                    self.park_lsm_notes(forked.layout().take_lsm_relocation_notes());
                    self.record_lsm_activity(table, forked.layout().take_lsm_activity());
                    next.access = Some(Arc::new(forked));
                    next.pending.clear();
                    next.stats.incremental_appends += 1;
                    retire.push(RetiredAccess {
                        access,
                        chain: Arc::clone(&next.chain),
                        pages: vacated,
                        whole_chain: false,
                    });
                    return Ok(());
                }
                Ok(AppendOutcome::NeedsRebuild(_)) => {
                    self.discard_fork(&forked, &access);
                    next.access = Some(access);
                    // Fall through to the full render below.
                }
                Err(e) => {
                    // A failed append may have grown some of the fork's
                    // objects and not others, which would misalign the
                    // positional stitch of every later read. Discard the
                    // fork *and* retire the old rendering: callers either
                    // publish the invalidated state (lazy absorption — the
                    // next access rebuilds from the canonical rows) or
                    // publish nothing at all (eager insert — the doomed
                    // rows never land).
                    self.discard_fork(&forked, &access);
                    next.access = None;
                    retire.push(RetiredAccess {
                        pages: owned_pages(&access),
                        chain: std::mem::replace(&mut next.chain, Arc::new(())),
                        access,
                        whole_chain: true,
                    });
                    return Err(e.into());
                }
            }
        }
        // Full render, built aside from the canonical rows.
        let expr = next.layout_expr.clone().expect("checked above");
        let config = self.config_snapshot();
        // A provider holding only the tables the expression actually
        // references (prejoin may need more than one; everything else needs
        // exactly one — unrelated tables are never copied). Under the
        // new-data-only strategy, rows inserted after the layout was
        // declared stay in the row buffer and are excluded. Other tables
        // are read at their currently published states — *outside* their
        // writer mutexes, so an insert into a joined table can publish
        // between our capture and our publication, and the rendering would
        // trail it by one batch until this table's own next write.
        // Re-validate at publish: after rendering, re-pin every joined
        // table and re-render from fresh captures if any moved. The retries
        // are bounded — a joined table that outruns them has set
        // `deps_dirty` (its publish precedes the mark), so the next access
        // heals the rendering anyway.
        let referenced = expr.base_tables();
        let joins_others = referenced.iter().any(|n| n != table);
        let mut attempts = 0;
        let layout = loop {
            if joins_others {
                slot.deps_dirty.store(false, Ordering::SeqCst);
            }
            let view = self.catalog();
            let mut provider = MemTableProvider::new();
            let mut captured: Vec<(String, Arc<TableState>)> = Vec::new();
            for (name, _, state) in view.entries().iter() {
                if !referenced.contains(name) {
                    continue;
                }
                if name == table {
                    let mut records = next.records.to_vec();
                    if !absorbs {
                        records.truncate(records.len().saturating_sub(next.pending.len()));
                    }
                    provider.add(next.schema.clone(), records);
                } else {
                    provider.add(state.schema.clone(), state.records.to_vec());
                    captured.push((name.clone(), Arc::clone(state)));
                }
            }
            let layout = render(
                &expr,
                &provider,
                Arc::clone(&self.pager),
                RenderOptions {
                    name: Some(format!("{table}__layout")),
                    ..config.render_options
                },
            )?;
            if !joins_others {
                break layout;
            }
            let fresh = self.catalog();
            let moved = captured.iter().any(|(name, seen)| {
                fresh
                    .entries()
                    .iter()
                    .find(|(n, _, _)| n == name)
                    .map_or(true, |(_, _, cur)| !Arc::ptr_eq(seen, cur))
            });
            attempts += 1;
            if !moved || attempts >= 3 {
                break layout;
            }
            // Never published: quarantine the stale rendering's pages and
            // capture again.
            self.quarantine(layout.extent_pages().unwrap_or_default());
        };
        if let Some(old) = next.access.take() {
            retire.push(RetiredAccess {
                pages: owned_pages(&old),
                chain: std::mem::replace(&mut next.chain, Arc::new(())),
                access: old,
                whole_chain: true,
            });
        } else {
            next.chain = Arc::new(());
        }
        next.access = Some(Arc::new(AccessMethods::with_cost_params(
            layout,
            config.cost_params,
        )));
        next.stats.full_renders += 1;
        if absorbs {
            next.pending.clear();
        }
        Ok(())
    }

    /// Discards a never-published fork: quarantines the pages it allocated
    /// (anything outside the original's extent) and drops its relocation
    /// notes — the pages *those* name were vacated from the shared extent
    /// and still back the published rendering.
    fn discard_fork(&self, fork: &AccessMethods, original: &AccessMethods) {
        let shared: std::collections::HashSet<PageId> = original
            .layout()
            .extent_pages()
            .unwrap_or_default()
            .into_iter()
            .collect();
        let fresh: Vec<PageId> = fork
            .layout()
            .extent_pages()
            .unwrap_or_default()
            .into_iter()
            .filter(|p| !shared.contains(p))
            .collect();
        let _ = fork.layout().take_relocated();
        self.quarantine(fresh);
    }

    /// Pins a consistent snapshot of a table — rendering the declared
    /// layout or absorbing pending rows first if needed. The pin itself is
    /// lock-free (an epoch pin plus atomic loads); queries served from it
    /// never block on (and are never corrupted by) concurrent inserts,
    /// layout swaps, adaptation, or checkpoints.
    pub fn snapshot(&self, table: &str) -> Result<TableSnapshot> {
        self.ensure_rendered(table)?;
        let slot = self.slot(table)?;
        Ok(TableSnapshot {
            state: self.pin_state(&slot),
            cost_params: self.config_snapshot().cost_params,
        })
    }

    /// Scans a table. Tables without a declared layout are scanned from their
    /// canonical row-major representation; tables with a layout use the
    /// rendered objects (rendering lazily if necessary). Under the
    /// new-data-only strategy, rows inserted after the layout was declared
    /// are merged in from the row buffer — order-aware when the request asks
    /// for a sort order, so the merged result is globally ordered.
    ///
    /// Every scan is recorded into the table's live workload profile; in
    /// auto-adapt mode, every [`AdaptivePolicy::check_every`]-th query also
    /// runs the adaptation check after serving the scan.
    pub fn scan(&self, table: &str, request: &ScanRequest) -> Result<Vec<Record>> {
        let run_check = self.observe(table, request)?;
        let snapshot = self.snapshot(table)?;
        // When recording, run the scan under a per-operation I/O scope: the
        // pager mirrors this thread's reads into the scope, so `scan.pages`
        // (the paper's headline metric) and the table's calibration totals
        // count exactly the pages *this* scan read — concurrent readers
        // sharing the pager no longer bleed into each other's attribution.
        let recording = self
            .obs
            .enabled()
            .then(|| (Instant::now(), OpStatsScope::enter()));
        let rows = snapshot.scan(request)?;
        if let Some((started, scope)) = recording {
            let op = scope.stats().snapshot();
            drop(scope);
            let ins = &self.obs.ins;
            ins.scan_count.incr();
            ins.scan_rows.add(rows.len() as u64);
            ins.scan_pages.add(op.pages_read);
            ins.scan_frame_hits.add(op.frame_hits);
            ins.scan_frame_copies.add(op.frame_copies);
            ins.scan_micros.record(started.elapsed().as_micros() as u64);
            if let (Ok(predicted), Ok(slot)) = (snapshot.scan_pages(request), self.slot(table)) {
                slot.predicted_pages_total.fetch_add(predicted, Ordering::Relaxed);
                slot.actual_pages_total.fetch_add(op.pages_read, Ordering::Relaxed);
                slot.calibration_samples.fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(snapshot); // release the pin before adaptation may re-render
        if run_check {
            self.auto_adapt_check(table)?;
        }
        Ok(rows)
    }

    /// Folds a table's rows into fixed-width buckets (`count/sum/min/max`
    /// grouped by `floor(bucket_field / bucket_width)`) without materializing
    /// a result set. The fold is pushed into the scan: it reads exactly the
    /// pages a projected scan of the two fields would read, and on the
    /// borrowed-frame row path no output row is ever allocated. Pending rows
    /// not yet absorbed into the layout are folded from the snapshot's row
    /// buffers, so the result always reflects the full table.
    ///
    /// Folded rows are recorded under `scan.agg_rows_folded` (not
    /// `scan.rows`, which counts materialized rows only); the query feeds
    /// the workload profile and adaptation loop exactly like a projected
    /// scan of the bucket and value fields.
    pub fn scan_aggregate(
        &self,
        table: &str,
        spec: &WindowedAggregate,
        predicate: Option<&Condition>,
    ) -> Result<Vec<WindowRow>> {
        // Profile the query as the projected scan it replaces.
        let mut request = ScanRequest::all().fields([&spec.bucket_field, &spec.value_field]);
        request.predicate = predicate.cloned();
        let run_check = self.observe(table, &request)?;
        let snapshot = self.snapshot(table)?;
        let recording = self
            .obs
            .enabled()
            .then(|| (Instant::now(), OpStatsScope::enter()));
        let acc = snapshot.scan_aggregate(spec, predicate)?;
        if let Some((started, scope)) = recording {
            let op = scope.stats().snapshot();
            drop(scope);
            let ins = &self.obs.ins;
            ins.scan_count.incr();
            ins.scan_pages.add(op.pages_read);
            ins.scan_frame_hits.add(op.frame_hits);
            ins.scan_frame_copies.add(op.frame_copies);
            ins.scan_agg_rows_folded.add(acc.rows_folded());
            ins.scan_micros.record(started.elapsed().as_micros() as u64);
        }
        drop(snapshot);
        if run_check {
            self.auto_adapt_check(table)?;
        }
        Ok(acc.finish())
    }

    /// Opens a (materialized) cursor over a scan. The facade merges freshly
    /// inserted pending rows into layout scans, so the merged result is
    /// materialized here; use [`TableSnapshot::open_cursor`] on a pinned
    /// snapshot for a streaming cursor.
    pub fn open_cursor(&self, table: &str, request: &ScanRequest) -> Result<Cursor<'static>> {
        // Profiling (and the auto-adapt hook) happens inside `scan`.
        Ok(Cursor::new(self.scan(table, request)?))
    }

    /// Returns the element at `index` of the table's stored representation
    /// (layout storage order first, then any pending row buffer).
    pub fn get_element(
        &self,
        table: &str,
        index: usize,
        fields: Option<&[String]>,
    ) -> Result<Record> {
        let slot = self.slot(table)?;
        let run_check = {
            let config = self.config_snapshot();
            let state = self.pin_state(&slot);
            let mut profile = slot.profile.lock();
            // Unknown fields error below and must not poison the profile.
            if fields.map_or(true, |fields| {
                fields.iter().all(|f| state.schema.index_of(f).is_ok())
            }) {
                profile.record_get_element(fields);
            }
            config.adaptive.auto && profile.queries_since_check >= config.adaptive.check_every
        };
        let snapshot = self.snapshot(table)?;
        let element = snapshot.get_element(index, fields)?;
        if self.obs.enabled() {
            self.obs.ins.get_element_count.incr();
        }
        drop(snapshot);
        if run_check {
            self.auto_adapt_check(table)?;
        }
        Ok(element)
    }

    /// Estimated cost of a scan in milliseconds (the `scan_cost` access
    /// method). Tables without a rendered layout — or requests the layout
    /// cannot serve (fields it projected away) — report a cost proportional
    /// to their canonical size.
    pub fn scan_cost(&self, table: &str, request: &ScanRequest) -> Result<f64> {
        self.snapshot(table)?.scan_cost(request)
    }

    /// Estimated number of pages a scan would read (0 when the scan would be
    /// served from the in-memory canonical rows).
    pub fn scan_pages(&self, table: &str, request: &ScanRequest) -> Result<u64> {
        self.snapshot(table)?.scan_pages(request)
    }

    /// A point-in-time snapshot of every engine metric: the registered
    /// counters and histograms (see [`crate::observe::metric_names`] for the
    /// stable catalog), the pager's I/O statistics under `io.*`, and each
    /// table's predicted-vs-actual scan-page calibration under
    /// `calibration.<table>.*` (only for tables with at least one
    /// instrumented scan). Serialize with [`MetricsSnapshot::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.obs.registry.snapshot();
        let io = self.pager.stats().snapshot();
        snap.set_counter("io.pages_read", io.pages_read);
        snap.set_counter("io.pages_written", io.pages_written);
        snap.set_counter("io.seeks", io.seeks);
        snap.set_counter("io.bytes_read", io.bytes_read);
        snap.set_counter("io.bytes_written", io.bytes_written);
        snap.set_counter("io.cache_hits", io.cache_hits);
        snap.set_counter("io.cache_misses", io.cache_misses);
        snap.set_counter("io.frame_hits", io.frame_hits);
        snap.set_counter("io.frame_copies", io.frame_copies);
        for (name, slot, _) in self.catalog().entries().iter() {
            let samples = slot.calibration_samples.load(Ordering::Relaxed);
            if samples == 0 {
                continue;
            }
            snap.set_counter(
                &format!("calibration.{name}.predicted_pages"),
                slot.predicted_pages_total.load(Ordering::Relaxed),
            );
            snap.set_counter(
                &format!("calibration.{name}.actual_pages"),
                slot.actual_pages_total.load(Ordering::Relaxed),
            );
            snap.set_counter(&format!("calibration.{name}.samples"), samples);
        }
        snap
    }

    /// Drains the engine's decision-trace event ring: adaptation decisions
    /// (with their costed alternatives), lsm spills and merges, checkpoint
    /// phase timings, WAL truncations, and epoch reclamation batches, oldest
    /// first. Each [`Event`] serializes itself with [`Event::to_json`];
    /// [`Database::events_json`] dumps the whole drain at once.
    pub fn events(&self) -> Vec<Event> {
        self.obs.events.drain()
    }

    /// Drains the event ring and dumps it as one JSON array.
    pub fn events_json(&self) -> String {
        let events = self.events();
        let mut out = String::from("[");
        for (i, event) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push(']');
        out
    }

    /// Events discarded because the ring filled before a drain (monotone).
    pub fn events_dropped(&self) -> u64 {
        self.obs.events.dropped()
    }

    /// Whether metric/event recording is currently on (the default).
    pub fn metrics_enabled(&self) -> bool {
        self.obs.enabled()
    }

    /// Turns metric and event recording on or off. Off reduces every
    /// instrumentation site to one relaxed atomic load — the configuration
    /// the `scan_hot_path` bench compares against to bound the overhead.
    /// Already-recorded values are kept.
    pub fn set_metrics_enabled(&self, enabled: bool) {
        self.obs.set_enabled(enabled);
    }

    /// Explains how a scan would be served *without running it*: the chosen
    /// access path, the predicted page count (the same
    /// `estimate_scan_pages` number the cost model uses — compare with the
    /// `calibration.<table>.*` metrics for how honest it is), and how much
    /// auxiliary merging (levelled-tier runs, memtable rows, pending buffer
    /// rows) the scan would fold in.
    pub fn explain(&self, table: &str, request: &ScanRequest) -> Result<Explain> {
        let snapshot = self.snapshot(table)?;
        let state = &snapshot.state;
        let layout_expr = state.layout_expr.as_ref().map(|e| e.to_string());
        let pending_rows = state.pending.len() as u64;
        match &state.access {
            Some(access) if layout_serves(access, request) => {
                let layout = access.layout();
                let fields = request.fields.as_deref();
                let predicate = request.predicate.as_ref();
                // Mirror the scan dispatch exactly: opening the iterator is
                // what decides between the streaming, probing, and
                // materializing paths.
                let iter = layout
                    .scan_iter(fields, predicate)
                    .map_err(RodentError::Layout)?;
                let access_path = if iter.uses_index() {
                    AccessPath::IndexProbe
                } else if iter.is_lazy() {
                    AccessPath::Streaming
                } else {
                    AccessPath::Materialized
                };
                drop(iter);
                let (lsm_runs_total, lsm_runs_pruned, lsm_memtable_rows) = match &layout.lsm {
                    Some(lsm) => {
                        let ranges = predicate
                            .map(rodentstore_layout::extract_ranges)
                            .unwrap_or_default();
                        let total = lsm.runs.len() as u64;
                        let scanned = lsm
                            .runs
                            .iter()
                            .filter(|r| r.may_match(&lsm.key, &ranges))
                            .count() as u64;
                        (total, total - scanned, lsm.memtable.len() as u64)
                    }
                    None => (0, 0, 0),
                };
                Ok(Explain {
                    table: table.to_string(),
                    layout_expr,
                    access_path,
                    predicted_pages: layout.estimate_scan_pages(fields, predicate),
                    lsm_runs_total,
                    lsm_runs_pruned,
                    lsm_memtable_rows,
                    pending_rows,
                })
            }
            _ => Ok(Explain {
                table: table.to_string(),
                layout_expr,
                access_path: AccessPath::Canonical,
                predicted_pages: 0,
                lsm_runs_total: 0,
                lsm_runs_pruned: 0,
                lsm_memtable_rows: 0,
                pending_rows,
            }),
        }
    }

    /// The sort orders the table's current organization is efficient for.
    pub fn order_list(&self, table: &str) -> Result<Vec<Vec<rodentstore_algebra::expr::SortKey>>> {
        self.ensure_rendered(table)?;
        let slot = self.slot(table)?;
        Ok(self
            .pin_state(&slot)
            .access
            .as_ref()
            .map(|a| a.order_list())
            .unwrap_or_default())
    }

    /// Runs the storage design advisor for a table and workload, returning
    /// the recommendation without applying it.
    pub fn recommend_layout(
        &self,
        table: &str,
        workload: &Workload,
        options: &AdvisorOptions,
    ) -> Result<Recommendation> {
        // Pin the schema and rows, then run the (expensive) advisor search
        // with no lock held and nobody blocked on us.
        let slot = self.slot(table)?;
        let state = self.pin_state(&slot);
        Ok(advise(&state.schema, &state.records.to_vec(), workload, options)?)
    }

    /// Runs the advisor and applies the recommended layout eagerly.
    pub fn auto_tune(
        &self,
        table: &str,
        workload: &Workload,
        options: &AdvisorOptions,
    ) -> Result<Recommendation> {
        let recommendation = self.recommend_layout(table, workload, options)?;
        self.apply_layout(table, recommendation.best.expr.clone(), ReorgStrategy::Eager)?;
        Ok(recommendation)
    }

    /// A point-in-time copy of the live workload profile captured for a
    /// table.
    pub fn workload_profile(&self, table: &str) -> Result<crate::monitor::WorkloadProfile> {
        Ok(self.slot(table)?.profile.lock().clone())
    }

    /// Render/append/adaptation counters for a table.
    pub fn layout_stats(&self, table: &str) -> Result<crate::catalog::LayoutStats> {
        let slot = self.slot(table)?;
        Ok(self.pin_state(&slot).stats)
    }

    /// Runs one adaptation check against the table's *live* workload profile
    /// — no user-built [`Workload`] needed. The advisor's best design and the
    /// currently declared design are costed over the same data sample; the
    /// layout is re-declared (via [`AdaptivePolicy::strategy`]) only when the
    /// predicted improvement clears [`AdaptivePolicy::hysteresis`].
    ///
    /// In auto mode this runs by itself every [`AdaptivePolicy::check_every`]
    /// queries; calling it explicitly is always allowed. The advisor search
    /// runs against a pinned state with no lock held — concurrent scans
    /// *and writes* proceed while the annealing runs; only the final
    /// re-render takes this table's writer mutex.
    pub fn maybe_adapt(&self, table: &str) -> Result<AdaptOutcome> {
        let policy = self.config_snapshot().adaptive.clone();
        let slot = self.slot(table)?;
        let recording = self.obs.enabled();
        if recording {
            self.obs.ins.adapt_checks.incr();
        }
        let (workload, observed) = {
            let mut profile = slot.profile.lock();
            profile.end_check_window();
            (profile.to_workload(), profile.queries_observed)
        };
        if observed < policy.min_queries || workload.is_empty() {
            if recording {
                // Even no-op checks leave a trace: an operator asking "why
                // has this table never adapted?" reads the answer here.
                self.obs.events.push(EventKind::AdaptDecision {
                    table: table.to_string(),
                    outcome: "insufficient_data".into(),
                    current_expr: String::new(),
                    best_expr: String::new(),
                    current_ms: 0.0,
                    best_ms: 0.0,
                    hysteresis: policy.hysteresis,
                    alternatives: Vec::new(),
                });
            }
            return Ok(AdaptOutcome::InsufficientData {
                queries_observed: observed,
            });
        }
        let state = self.pin_state(&slot);
        let current_expr = state
            .layout_expr
            .clone()
            .unwrap_or_else(|| LayoutExpr::table(table));
        let advise_started = Instant::now();
        let (recommendation, baseline) = advise_with_baseline(
            &state.schema,
            &state.records.to_vec(),
            &workload,
            &policy.advisor,
            &current_expr,
        )?;
        drop(state);
        if recording {
            self.obs
                .ins
                .adapt_advise_micros
                .record(advise_started.elapsed().as_micros() as u64);
        }
        // Captured before `best` moves out of the recommendation: the top
        // explored designs (best first, capped) become the decision trace's
        // costed alternatives.
        let alternatives: Vec<CostedAlternative> = if recording { {
                recommendation
                    .explored
                    .iter()
                    .take(8)
                    .map(|d| CostedAlternative {
                        expr: d.expr.to_string(),
                        total_ms: d.total_ms,
                    })
                    .collect()
            } } else { Default::default() };
        let best = recommendation.best;
        let current_ms = baseline.map(|c| c.total_ms).unwrap_or(f64::INFINITY);
        let improves = best.total_ms < current_ms * (1.0 - policy.hysteresis);
        let decision = |outcome: &str| {
            self.obs.events.push(EventKind::AdaptDecision {
                table: table.to_string(),
                outcome: outcome.into(),
                current_expr: current_expr.to_string(),
                best_expr: best.expr.to_string(),
                current_ms,
                best_ms: best.total_ms,
                hysteresis: policy.hysteresis,
                alternatives: alternatives.clone(),
            });
        };
        if best.expr == current_expr || !improves {
            if recording {
                decision("kept_current");
            }
            return Ok(AdaptOutcome::KeptCurrent {
                current_ms,
                best_ms: best.total_ms,
            });
        }
        // Adaptation is logged as an `apply_layout` with the `adapted` flag
        // set, so replay after a crash maintains the adaptation counter.
        // `expected` guards the race: if another thread re-declared the
        // layout while the advisor ran, our recommendation was costed
        // against a stale baseline — keep what is there and let the next
        // check window re-evaluate.
        if self.apply_layout_inner(
            table,
            best.expr.clone(),
            policy.strategy,
            true,
            Some(&current_expr),
        )? {
            if recording {
                self.obs.ins.adapt_adaptations.incr();
                decision("adapted");
            }
            Ok(AdaptOutcome::Adapted {
                expr: best.expr,
                from_ms: current_ms,
                to_ms: best.total_ms,
            })
        } else {
            if recording {
                decision("kept_current");
            }
            Ok(AdaptOutcome::KeptCurrent {
                current_ms,
                best_ms: best.total_ms,
            })
        }
    }

    /// Records a scan into the profile, returning whether the auto-adapt
    /// check should run after the query is served. Requests referencing
    /// fields the table does not have are *not* recorded — they error on the
    /// query path anyway, and a poisoned template would make every later
    /// advisor run fail on the unknown field.
    fn observe(&self, table: &str, request: &ScanRequest) -> Result<bool> {
        let config = self.config_snapshot();
        let slot = self.slot(table)?;
        let state = self.pin_state(&slot);
        let known = |f: &String| state.schema.index_of(f).is_ok();
        let valid = request.fields.iter().flatten().all(known)
            && request
                .predicate
                .as_ref()
                .map_or(true, |p| p.referenced_fields().iter().all(known))
            && request
                .order
                .iter()
                .flatten()
                .all(|k| known(&k.field));
        let mut profile = slot.profile.lock();
        if valid {
            profile.record_scan(request);
        }
        Ok(config.adaptive.auto && profile.queries_since_check >= config.adaptive.check_every)
    }

    /// Auto-mode wrapper around [`Database::maybe_adapt`]: an adaptation
    /// check the advisor cannot complete (empty candidate set, a template it
    /// cannot cost, …) must not fail the user's query, so optimizer errors
    /// are swallowed here; catalog and rendering errors still surface. At
    /// most one check runs per table at a time — when many reader threads
    /// cross the `check_every` threshold together, one runs the advisor and
    /// the rest skip.
    fn auto_adapt_check(&self, table: &str) -> Result<()> {
        let Ok(slot) = self.slot(table) else {
            return Ok(()); // dropped meanwhile
        };
        if slot.adapting.swap(true, Ordering::SeqCst) {
            return Ok(()); // another thread's check is in flight
        }
        let result = self.maybe_adapt(table);
        slot.adapting.store(false, Ordering::SeqCst);
        match result {
            Ok(_) | Err(RodentError::Optimizer(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }
}

impl TableSnapshot {
    /// The table's logical schema.
    pub fn schema(&self) -> &Schema {
        &self.state.schema
    }

    /// Number of logical rows visible to this snapshot.
    pub fn row_count(&self) -> usize {
        self.state.records.len()
    }

    /// The pinned rendered layout, if the table had one when the snapshot
    /// was taken.
    pub fn layout(&self) -> Option<&PhysicalLayout> {
        self.state.access.as_deref().map(AccessMethods::layout)
    }

    /// Scans the snapshot. Tables without a declared layout are scanned
    /// from their canonical row-major representation; tables with a layout
    /// use the pinned rendered objects, merging any pending row buffer in
    /// (order-aware when the request asks for a sort). No database lock is
    /// held.
    pub fn scan(&self, request: &ScanRequest) -> Result<Vec<Record>> {
        match &self.state.access {
            // A layout can only serve requests over the fields it kept; a
            // query referencing a field the (possibly auto-adapted) layout
            // projected away falls back to the canonical rows — and, having
            // been recorded in the profile, steers the next adaptation back
            // toward a layout that covers it.
            Some(access) if layout_serves(access, request) => {
                let mut rows = access.scan(request)?;
                if !self.state.pending.is_empty() {
                    // Pending rows must come out in the *layout's* output
                    // shape (a projection layout exposes fewer fields than
                    // the canonical schema), so the merge compares and
                    // returns uniformly shaped records.
                    let out_fields: Vec<String> = request
                        .fields
                        .clone()
                        .unwrap_or_else(|| access.layout().schema.field_names());
                    let pending_request = ScanRequest {
                        fields: Some(out_fields.clone()),
                        predicate: request.predicate.clone(),
                        order: request.order.clone(),
                    };
                    let pending = scan_canonical(
                        &self.state.schema,
                        self.state.pending.iter(),
                        &pending_request,
                    )?;
                    rows = merge_by_order(&out_fields, request.order.as_deref(), rows, pending);
                }
                Ok(rows)
            }
            _ => scan_canonical(&self.state.schema, self.state.records.iter(), request),
        }
    }

    /// Folds the snapshot's rows into fixed-width buckets without
    /// materializing a result set. Dispatch mirrors [`TableSnapshot::scan`]:
    /// a layout that serves the (bucket, value) projection folds inside its
    /// scan (zero rows materialized on the borrowed row path), pending rows
    /// not yet absorbed fold from the in-memory buffer, and everything else
    /// folds from the canonical rows.
    pub fn scan_aggregate(
        &self,
        spec: &WindowedAggregate,
        predicate: Option<&Condition>,
    ) -> Result<WindowAccumulator> {
        spec.validate().map_err(RodentError::Layout)?;
        let bucket_idx = self
            .state
            .schema
            .index_of(&spec.bucket_field)
            .map_err(RodentError::Algebra)?;
        let value_idx = self
            .state
            .schema
            .index_of(&spec.value_field)
            .map_err(RodentError::Algebra)?;
        let fold_rows = |acc: &mut WindowAccumulator, rows: &Rows| -> Result<()> {
            for row in rows.iter() {
                if let Some(pred) = predicate {
                    if !pred.eval(&self.state.schema, row).map_err(RodentError::Algebra)? {
                        continue;
                    }
                }
                acc.fold_values(&row[bucket_idx], &row[value_idx]);
            }
            Ok(())
        };
        let mut request = ScanRequest::all().fields([&spec.bucket_field, &spec.value_field]);
        request.predicate = predicate.cloned();
        match &self.state.access {
            Some(access) if layout_serves(access, &request) => {
                let mut acc = access.scan_aggregate(spec, predicate)?;
                fold_rows(&mut acc, &self.state.pending)?;
                Ok(acc)
            }
            _ => {
                let mut acc = WindowAccumulator::new(spec);
                fold_rows(&mut acc, &self.state.records)?;
                Ok(acc)
            }
        }
    }

    /// Opens a cursor over the snapshot. When the pinned layout can serve
    /// the request natively and no pending rows need merging, the cursor
    /// *streams* — tuples decode from pages on demand, borrowing from the
    /// snapshot (not from the database, so concurrent writers are never
    /// blocked). Otherwise the merged result is materialized.
    pub fn open_cursor(&self, request: &ScanRequest) -> Result<Cursor<'_>> {
        match &self.state.access {
            Some(access) if layout_serves(access, request) && self.state.pending.is_empty() => {
                Ok(access.open_cursor(request)?)
            }
            _ => Ok(Cursor::new(self.scan(request)?)),
        }
    }

    /// Returns the element at `index` of the snapshot's stored
    /// representation (layout storage order first, then any pending row
    /// buffer).
    pub fn get_element(&self, index: usize, fields: Option<&[String]>) -> Result<Record> {
        match &self.state.access {
            // Fields the layout projected away are served from the canonical
            // rows (in canonical order — a storage order over fields the
            // layout does not store is not meaningful).
            Some(access)
                if fields.map_or(true, |fields| {
                    fields
                        .iter()
                        .all(|f| access.layout().schema.index_of(f).is_ok())
                }) =>
            {
                let layout_rows = access.layout().row_count;
                if index >= layout_rows && index - layout_rows < self.state.pending.len() {
                    // Pending rows (new-data-only buffer) extend the storage
                    // order past the rendered representation; project them to
                    // the layout's exposed fields so the record shape does
                    // not change at the layout/pending boundary.
                    let layout_fields;
                    let effective: &[String] = match fields {
                        Some(fields) => fields,
                        None => {
                            layout_fields = access.layout().schema.field_names();
                            &layout_fields
                        }
                    };
                    project_record(
                        &self.state.schema,
                        self.state
                            .pending
                            .get(index - layout_rows)
                            .cloned()
                            .expect("bounds checked above"),
                        Some(effective),
                    )
                } else {
                    Ok(access.get_element(index, fields)?)
                }
            }
            _ => self
                .state
                .records
                .get(index)
                .cloned()
                .map(|r| project_record(&self.state.schema, r, fields))
                .transpose()?
                .ok_or_else(|| RodentError::Invalid(format!("element {index} out of range"))),
        }
    }

    /// Estimated cost of a scan over this snapshot, in milliseconds.
    pub fn scan_cost(&self, request: &ScanRequest) -> Result<f64> {
        match &self.state.access {
            Some(access) if layout_serves(access, request) => Ok(access.scan_cost(request)?),
            _ => {
                let bytes = self.state.records.len() as f64
                    * self.state.schema.estimated_record_width() as f64;
                Ok(self.cost_params.seek_ms
                    + bytes / (self.cost_params.transfer_mb_per_s * 1024.0 * 1024.0) * 1000.0)
            }
        }
    }

    /// Estimated number of pages a scan over this snapshot would read.
    pub fn scan_pages(&self, request: &ScanRequest) -> Result<u64> {
        match &self.state.access {
            Some(access) if layout_serves(access, request) => Ok(access.scan_pages(request)),
            _ => Ok(0),
        }
    }
}

/// The access path [`Database::explain`] predicts a scan would take —
/// mirroring the dispatch [`TableSnapshot::scan`] actually performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Served from the in-memory canonical rows: no rendered layout, or the
    /// layout projected away a field the request references.
    Canonical,
    /// Streamed from the rendered layout's pages in storage order,
    /// decoding on demand.
    Streaming,
    /// The declared index covers the predicate: tree probe plus targeted
    /// heap page reads.
    IndexProbe,
    /// The layout shape forces up-front materialization (vertical
    /// partitions stitch their groups positionally before yielding).
    Materialized,
}

impl AccessPath {
    /// Stable machine-readable name (the JSON `"access_path"` field).
    pub fn name(&self) -> &'static str {
        match self {
            AccessPath::Canonical => "canonical",
            AccessPath::Streaming => "streaming",
            AccessPath::IndexProbe => "index_probe",
            AccessPath::Materialized => "materialized",
        }
    }
}

/// What [`Database::explain`] reports about a prospective scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Explain {
    /// Table the request targets.
    pub table: String,
    /// The declared layout expression, if any.
    pub layout_expr: Option<String>,
    /// The predicted access path.
    pub access_path: AccessPath,
    /// Pages the cost model predicts the scan reads
    /// (`estimate_scan_pages`; 0 for canonical scans, which touch no
    /// pages). Compare against the `calibration.<table>.*` metrics.
    pub predicted_pages: u64,
    /// Sealed levelled-tier runs in the pinned state.
    pub lsm_runs_total: u64,
    /// Runs the predicate's key range proves irrelevant (skipped without
    /// reading a page).
    pub lsm_runs_pruned: u64,
    /// Rows buffered in the tier's in-memory memtable.
    pub lsm_memtable_rows: u64,
    /// Rows in the new-data-only pending buffer the scan would merge in.
    pub pending_rows: u64,
}

impl Explain {
    /// Serializes the explanation as one JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.str_field("table", &self.table);
        match &self.layout_expr {
            Some(expr) => w.str_field("layout_expr", expr),
            None => w.raw_field("layout_expr", "null"),
        };
        w.str_field("access_path", self.access_path.name())
            .u64_field("predicted_pages", self.predicted_pages)
            .u64_field("lsm_runs_total", self.lsm_runs_total)
            .u64_field("lsm_runs_pruned", self.lsm_runs_pruned)
            .u64_field("lsm_memtable_rows", self.lsm_memtable_rows)
            .u64_field("pending_rows", self.pending_rows);
        w.finish()
    }
}

/// Every page a rendering's extent owns: heap pages plus index tree pages.
/// (Relocation notes are drained separately at reclamation time.)
fn owned_pages(access: &AccessMethods) -> Vec<PageId> {
    access.layout().extent_pages().unwrap_or_default()
}

/// Whether the rendered layout can serve every field the request references
/// (projection, predicate, and order keys). A layout that projected a field
/// away cannot — such requests fall back to the canonical rows.
fn layout_serves(access: &AccessMethods, request: &ScanRequest) -> bool {
    let schema = &access.layout().schema;
    if let Some(fields) = &request.fields {
        if !fields.iter().all(|f| schema.index_of(f).is_ok()) {
            return false;
        }
    }
    if let Some(pred) = &request.predicate {
        if !pred
            .referenced_fields()
            .iter()
            .all(|f| schema.index_of(f).is_ok())
        {
            return false;
        }
    }
    if let Some(order) = &request.order {
        if !order.iter().all(|k| schema.index_of(&k.field).is_ok()) {
            return false;
        }
    }
    true
}

/// Projects a canonical record to the requested fields.
fn project_record(
    schema: &Schema,
    record: Record,
    fields: Option<&[String]>,
) -> Result<Record> {
    match fields {
        Some(fields) => schema.extract(&record, fields).map_err(RodentError::Algebra),
        None => Ok(record),
    }
}

/// Compares two equally shaped records on `(position, direction)` sort keys
/// — the single comparator shared by the canonical scan sort and the
/// pending-row merge.
fn compare_by_keys(
    key_positions: &[(usize, SortOrder)],
    a: &Record,
    b: &Record,
) -> std::cmp::Ordering {
    for (pos, dir) in key_positions {
        let ord = a[*pos].compare(&b[*pos]);
        let ord = match dir {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Merges pending-buffer rows into a layout scan's result. Both inputs carry
/// records in the `out_fields` shape. When the request asks for a sort
/// order, both inputs are already sorted on the order keys (the access
/// methods sort non-native orders; [`scan_canonical`] sorts the buffer), so
/// a two-way merge keeps the combined result globally ordered — blindly
/// appending the buffer (the old behavior) broke any `ScanRequest` ordering.
/// Without an order (or when no order key survives the projection), the
/// buffer is appended after the layout rows.
fn merge_by_order(
    out_fields: &[String],
    order: Option<&[rodentstore_algebra::expr::SortKey]>,
    base: Vec<Record>,
    extra: Vec<Record>,
) -> Vec<Record> {
    let key_positions: Vec<(usize, SortOrder)> = order
        .unwrap_or_default()
        .iter()
        .filter_map(|k| {
            out_fields
                .iter()
                .position(|f| *f == k.field)
                .map(|pos| (pos, k.order))
        })
        .collect();
    if key_positions.is_empty() {
        let mut rows = base;
        rows.extend(extra);
        return rows;
    }
    let mut merged = Vec::with_capacity(base.len() + extra.len());
    let mut a = base.into_iter().peekable();
    let mut b = extra.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                // `<=` keeps the merge stable: layout rows win ties.
                if compare_by_keys(&key_positions, x, y) != std::cmp::Ordering::Greater {
                    merged.push(a.next().expect("peeked"));
                } else {
                    merged.push(b.next().expect("peeked"));
                }
            }
            (Some(_), None) => merged.push(a.next().expect("peeked")),
            (None, Some(_)) => merged.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    merged
}

/// Scans in-memory canonical records (used before any layout is declared and
/// for the new-data-only pending buffer).
fn scan_canonical<'a>(
    schema: &Schema,
    records: impl IntoIterator<Item = &'a Record>,
    request: &ScanRequest,
) -> Result<Vec<Record>> {
    let out_fields: Vec<String> = request
        .fields
        .clone()
        .unwrap_or_else(|| schema.field_names());
    let indices = schema.indices_of(&out_fields)?;
    let mut rows = Vec::new();
    for r in records {
        if let Some(pred) = &request.predicate {
            if !pred.eval(schema, r)? {
                continue;
            }
        }
        rows.push(indices.iter().map(|&i| r[i].clone()).collect());
    }
    if let Some(order) = &request.order {
        let mut key_positions = Vec::new();
        for key in order {
            if let Some(pos) = out_fields.iter().position(|f| *f == key.field) {
                key_positions.push((pos, key.order));
            }
        }
        rows.sort_by(|a: &Record, b: &Record| compare_by_keys(&key_positions, a, b));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::comprehension::Condition;
    use rodentstore_algebra::schema::Field;
    use rodentstore_algebra::types::DataType;
    use rodentstore_algebra::value::Value;
    use rodentstore_workload::{generate_traces, traces_schema, CartelConfig};

    fn small_db() -> Database {
        let db = Database::with_page_size(2048);
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 1_500,
                vehicles: 10,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db
    }

    #[test]
    fn scan_without_layout_uses_canonical_rows() {
        let db = small_db();
        let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 1_500);
        let narrow = db
            .scan("Traces", &ScanRequest::all().fields(["lat"]))
            .unwrap();
        assert!(narrow.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn textual_layout_changes_the_physical_representation() {
        let db = small_db();
        // Center the query box on a point the table actually contains, so
        // the test does not depend on the exact random stream.
        let (lat0, lon0) = {
            let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
            (rows[750][1].as_f64().unwrap(), rows[750][2].as_f64().unwrap())
        };
        let (lat_lo, lat_hi) = (lat0 - 0.02, lat0 + 0.02);
        let (lon_lo, lon_hi) = (lon0 - 0.025, lon0 + 0.025);
        db.apply_layout_text(
            "Traces",
            "zorder(grid[lat,lon;0.02,0.02](project[lat,lon](Traces)))",
        )
        .unwrap();
        let pred =
            Condition::range("lat", lat_lo, lat_hi).and(Condition::range("lon", lon_lo, lon_hi));
        let rows = db
            .scan("Traces", &ScanRequest::all().predicate(pred.clone()))
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .all(|r| (lat_lo..=lat_hi).contains(&r[0].as_f64().unwrap())));
        // Pruned scans should touch fewer pages than the whole layout.
        let total = db.scan_pages("Traces", &ScanRequest::all()).unwrap();
        let pruned = db
            .scan_pages("Traces", &ScanRequest::all().predicate(pred))
            .unwrap();
        assert!(pruned < total);
    }

    #[test]
    fn lazy_layouts_render_on_first_access() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").columns(["t", "lat", "lon", "id"]),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        // Nothing rendered yet.
        assert!(db.catalog().get("Traces").unwrap().access.is_none());
        db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        assert!(db.catalog().get("Traces").unwrap().access.is_some());
    }

    #[test]
    fn new_data_only_strategy_merges_pending_rows() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        let before = db.scan("Traces", &ScanRequest::all()).unwrap().len();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let after = db.scan("Traces", &ScanRequest::all()).unwrap().len();
        assert_eq!(after, before + 1);
        // The pending row is still buffered, not folded into the layout.
        assert_eq!(db.catalog().get("Traces").unwrap().pending.len(), 1);
    }

    #[test]
    fn eager_strategy_absorbs_inserts() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        assert!(db.catalog().get("Traces").unwrap().pending.is_empty());
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
    }

    #[test]
    fn schema_violations_and_unknown_tables_are_rejected() {
        let db = small_db();
        assert!(db.insert("Traces", vec![vec![Value::Int(1)]]).is_err());
        assert!(db.scan("Nope", &ScanRequest::all()).is_err());
        assert!(db
            .apply_layout_text("Traces", "project[altitude](Traces)")
            .is_err());
    }

    #[test]
    fn get_element_and_order_list() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").order_by(["t"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let first = db.get_element("Traces", 0, None).unwrap();
        assert_eq!(first.len(), 4);
        let orders = db.order_list("Traces").unwrap();
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0][0].field, "t");
    }

    #[test]
    fn eager_inserts_are_absorbed_incrementally() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let after_apply = db.layout_stats("Traces").unwrap();
        assert_eq!(after_apply.full_renders, 1);

        let written_before = db.io_snapshot().pages_written;
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 1, "no full re-render on insert");
        assert_eq!(stats.incremental_appends, 1);
        // An incremental append of one row touches a handful of pages, not
        // the whole layout.
        let written = db.io_snapshot().pages_written - written_before;
        assert!(written <= 4, "append wrote {written} pages");
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
        assert!(db.catalog().get("Traces").unwrap().pending.is_empty());
    }

    #[test]
    fn lazy_inserts_absorb_incrementally_on_next_access() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        db.scan("Traces", &ScanRequest::all()).unwrap(); // first render
        assert_eq!(db.layout_stats("Traces").unwrap().full_renders, 1);
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_001),
                Value::Float(42.32),
                Value::Float(-71.07),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        // Pending until the next access; then absorbed without a re-render.
        assert_eq!(db.catalog().get("Traces").unwrap().pending.len(), 1);
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 1);
        assert_eq!(stats.incremental_appends, 1);
    }

    #[test]
    fn vertical_partitions_absorb_inserts_incrementally() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").vertical([vec!["lat", "lon"], vec!["t", "id"]]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_002),
                Value::Float(42.33),
                Value::Float(-71.08),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 1, "vertical appends in place now");
        assert_eq!(stats.incremental_appends, 1);
        let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 1_501);
        // The appended row is stitched back whole across both objects.
        let last = db.get_element("Traces", 1_500, None).unwrap();
        assert_eq!(last[0], Value::Timestamp(10_002));
        assert_eq!(last[3], Value::Str("car-new".into()));
    }

    #[test]
    fn failed_partial_append_invalidates_instead_of_corrupting() {
        // A vertical append writes object-by-object; if one group fails
        // (here: a string too large for the page) after another succeeded,
        // the per-object row sets diverge. The absorb path must discard the
        // rendering rather than leave positionally misaligned objects.
        let db = Database::with_page_size(1024);
        db.create_table(Schema::new(
            "Docs",
            vec![
                Field::new("x", DataType::Float),
                Field::new("body", DataType::String),
            ],
        ))
        .unwrap();
        let rows: Vec<Record> = (0..50)
            .map(|i| vec![Value::Float(i as f64), Value::Str(format!("doc-{i}"))])
            .collect();
        db.insert("Docs", rows).unwrap();
        db.apply_layout(
            "Docs",
            LayoutExpr::table("Docs").vertical([vec!["x"], vec!["body"]]),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        assert_eq!(db.scan("Docs", &ScanRequest::all()).unwrap().len(), 50);
        // Passes schema validation, fails in the `body` object's heap.
        db.insert(
            "Docs",
            vec![vec![Value::Float(99.0), Value::Str("y".repeat(5_000))]],
        )
        .unwrap();
        let err = db.scan("Docs", &ScanRequest::all());
        assert!(err.is_err(), "absorbing the oversized row must fail");
        assert!(
            db.catalog().get("Docs").unwrap().access.is_none(),
            "the partially appended rendering must be discarded"
        );
        // Declaring a layout that can hold the data recovers the table with
        // every row intact and aligned.
        db.apply_layout(
            "Docs",
            LayoutExpr::table("Docs").project(["x"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let rows = db.scan("Docs", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 51);
        assert_eq!(rows[50], vec![Value::Float(99.0)]);
    }

    #[test]
    fn appendless_shapes_still_rebuild_on_insert() {
        let db = small_db();
        // Fold groups are single heap records; inserts must re-render.
        // (Folding only `t` keeps each group under the 2 KiB test pages.)
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").fold(["id"], ["t"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_002),
                Value::Float(42.33),
                Value::Float(-71.08),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 2, "folded layouts fall back to rebuild");
        assert_eq!(stats.incremental_appends, 0);
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
    }

    #[test]
    fn new_data_only_merges_pending_rows_order_aware() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["t", "lat"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        // A pending row whose timestamp sorts *before* every layout row.
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(-5),
                Value::Float(42.0),
                Value::Float(-71.0),
                Value::Str("car-early".into()),
            ]],
        )
        .unwrap();
        let rows = db
            .scan("Traces", &ScanRequest::all().fields(["t", "lat"]).order(["t"]))
            .unwrap();
        assert_eq!(rows.len(), 1_501);
        assert_eq!(rows[0][0], Value::Timestamp(-5), "pending row merged into place");
        assert!(
            rows.windows(2).all(|w| w[0][0] <= w[1][0]),
            "merged result must be globally ordered"
        );
    }

    #[test]
    fn ordered_scan_over_projection_layout_merges_pending_in_layout_shape() {
        let db = small_db();
        // The layout exposes only [lat, lon]; order key positions must be
        // resolved against that shape, not the 4-field canonical schema.
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_004),
                Value::Float(-90.0), // sorts before every generated lat
                Value::Float(0.0),
                Value::Str("car-south".into()),
            ]],
        )
        .unwrap();
        let rows = db
            .scan("Traces", &ScanRequest::all().order(["lat"]))
            .unwrap();
        assert_eq!(rows.len(), 1_501);
        assert!(rows.iter().all(|r| r.len() == 2), "uniform layout shape");
        assert_eq!(rows[0][0], Value::Float(-90.0), "pending row merged first");
        assert!(rows.windows(2).all(|w| w[0][0] <= w[1][0]));
    }

    #[test]
    fn unknown_field_requests_do_not_poison_auto_adaptation() {
        let db = small_db();
        db.set_adaptive_policy(AdaptivePolicy {
            auto: true,
            check_every: 4,
            min_queries: 4,
            advisor: AdvisorOptions {
                cost_model: rodentstore_optimizer::CostModel {
                    sample_size: 500,
                    page_size: 1024,
                    cost_params: CostParams {
                        seek_ms: 1.0,
                        transfer_mb_per_s: 2.0,
                    },
                },
                anneal_iterations: 1,
                seed: 5,
            },
            ..AdaptivePolicy::default()
        });
        // A bad request errors, but must not be recorded as a template.
        assert!(db.scan("Traces", &ScanRequest::all().fields(["nope"])).is_err());
        assert!(db
            .get_element("Traces", 0, Some(&["nope".to_string()]))
            .is_err());
        // Valid queries keep working straight through the adaptation checks.
        for _ in 0..12 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        assert!(db
            .workload_profile("Traces")
            .unwrap()
            .templates()
            .iter()
            .all(|t| !t.fingerprint.contains("nope")));
    }

    #[test]
    fn get_element_reaches_pending_rows() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_003),
                Value::Float(1.5),
                Value::Float(2.5),
                Value::Str("car-pending".into()),
            ]],
        )
        .unwrap();
        // Index 1500 is past the rendered layout (1500 rows) → pending row,
        // shaped like the layout's output ([lat, lon]) — the record shape
        // must not change at the layout/pending boundary.
        let row = db.get_element("Traces", 1_500, None).unwrap();
        assert_eq!(row, vec![Value::Float(1.5), Value::Float(2.5)]);
        assert_eq!(row.len(), db.get_element("Traces", 0, None).unwrap().len());
        let narrow = db
            .get_element("Traces", 1_500, Some(&["lon".to_string()]))
            .unwrap();
        assert_eq!(narrow, vec![Value::Float(2.5)]);
        assert!(db.get_element("Traces", 1_501, None).is_err());
    }

    #[test]
    fn dropped_fields_are_served_from_canonical_rows() {
        let db = small_db();
        // The layout keeps only lat/lon; t and id are projected away.
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let ts = db
            .scan("Traces", &ScanRequest::all().fields(["t"]))
            .unwrap();
        assert_eq!(ts.len(), 1_500, "dropped field served from canonical rows");
        let filtered = db
            .scan(
                "Traces",
                &ScanRequest::all()
                    .fields(["lat"])
                    .predicate(Condition::eq("id", "car-00001")),
            )
            .unwrap();
        assert!(!filtered.is_empty(), "predicate on dropped field still works");
        assert_eq!(db.scan_pages("Traces", &ScanRequest::all().fields(["t"])).unwrap(), 0);
        assert!(db.scan_cost("Traces", &ScanRequest::all().fields(["t"])).unwrap() > 0.0);
        let elem = db
            .get_element("Traces", 3, Some(&["t".to_string(), "id".to_string()]))
            .unwrap();
        assert_eq!(elem.len(), 2);
        // Truly unknown fields still error.
        assert!(db.scan("Traces", &ScanRequest::all().fields(["nope"])).is_err());
    }

    #[test]
    fn maybe_adapt_waits_for_data_then_adapts_beyond_hysteresis() {
        let db = Database::with_page_size(1024);
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 3_000,
                vehicles: 15,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db.set_adaptive_policy(AdaptivePolicy {
            auto: false,
            min_queries: 8,
            hysteresis: 0.1,
            advisor: AdvisorOptions {
                cost_model: rodentstore_optimizer::CostModel {
                    sample_size: 2_000,
                    page_size: 1024,
                    cost_params: CostParams {
                        seek_ms: 1.0,
                        transfer_mb_per_s: 2.0,
                    },
                },
                anneal_iterations: 2,
                seed: 11,
            },
            ..AdaptivePolicy::default()
        });

        // Not enough traffic yet.
        db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        assert!(matches!(
            db.maybe_adapt("Traces").unwrap(),
            AdaptOutcome::InsufficientData { .. }
        ));

        // A projection-heavy workload: the advisor should move the table off
        // the canonical row layout.
        for _ in 0..12 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        let outcome = db.maybe_adapt("Traces").unwrap();
        assert!(
            matches!(outcome, AdaptOutcome::Adapted { .. }),
            "expected adaptation, got {outcome:?}"
        );
        assert!(db.catalog().get("Traces").unwrap().layout_expr.is_some());
        assert_eq!(db.layout_stats("Traces").unwrap().adaptations, 1);

        // Same workload again: the system must *not* flap.
        for _ in 0..12 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        assert!(matches!(
            db.maybe_adapt("Traces").unwrap(),
            AdaptOutcome::KeptCurrent { .. }
        ));
        assert_eq!(db.layout_stats("Traces").unwrap().adaptations, 1);
    }

    #[test]
    fn auto_mode_adapts_without_manual_calls() {
        let db = Database::with_page_size(1024);
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 3_000,
                vehicles: 15,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db.set_adaptive_policy(AdaptivePolicy {
            auto: true,
            check_every: 10,
            min_queries: 10,
            hysteresis: 0.1,
            advisor: AdvisorOptions {
                cost_model: rodentstore_optimizer::CostModel {
                    sample_size: 2_000,
                    page_size: 1024,
                    cost_params: CostParams {
                        seek_ms: 1.0,
                        transfer_mb_per_s: 2.0,
                    },
                },
                anneal_iterations: 2,
                seed: 11,
            },
            ..AdaptivePolicy::default()
        });
        for _ in 0..25 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        assert!(
            db.layout_stats("Traces").unwrap().adaptations >= 1,
            "auto mode must have adapted the layout"
        );
        assert!(db.catalog().get("Traces").unwrap().layout_expr.is_some());
        // Queries still answer correctly through the adapted layout.
        let rows = db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        assert_eq!(rows.len(), 3_000);
    }

    #[test]
    fn auto_tune_applies_a_recommendation() {
        let db = Database::with_page_size(1024);
        db.create_table(Schema::new(
            "Points",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
                Field::new("tag", DataType::String),
            ],
        ))
        .unwrap();
        let records: Vec<Record> = (0..800)
            .map(|i| {
                vec![
                    Value::Float((i % 40) as f64),
                    Value::Float((i / 40) as f64),
                    Value::Str(format!("tag{}", i % 5)),
                ]
            })
            .collect();
        db.insert("Points", records).unwrap();
        let workload = Workload::new().query(
            ScanRequest::all()
                .fields(["x", "y"])
                .predicate(Condition::range("x", 3.0, 6.0).and(Condition::range("y", 3.0, 6.0))),
        );
        let options = AdvisorOptions {
            cost_model: rodentstore_optimizer::CostModel {
                sample_size: 800,
                page_size: 512,
                cost_params: CostParams {
                    seek_ms: 0.5,
                    transfer_mb_per_s: 2.0,
                },
            },
            anneal_iterations: 2,
            seed: 3,
        };
        let rec = db.auto_tune("Points", &workload, &options).unwrap();
        assert!(db.catalog().get("Points").unwrap().layout_expr.is_some());
        assert!(rec.explored.len() > 3);
        // The tuned table still answers queries correctly.
        let rows = db
            .scan(
                "Points",
                &ScanRequest::all()
                    .fields(["x", "y"])
                    .predicate(Condition::range("x", 3.0, 6.0)),
            )
            .unwrap();
        assert!(rows.iter().all(|r| (3.0..=6.0).contains(&r[0].as_f64().unwrap())));
    }
}
