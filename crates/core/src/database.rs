//! The RodentStore database façade.

use crate::catalog::Catalog;
use crate::durability::{self, Durability, DurabilityOptions, DurableOp};
use crate::reorg::ReorgStrategy;
use crate::{Result, RodentError};
use rodentstore_algebra::expr::{LayoutExpr, SortOrder};
use rodentstore_algebra::parse;
use rodentstore_algebra::schema::Schema;
use rodentstore_algebra::validate;
use rodentstore_algebra::value::Record;
use rodentstore_exec::{AccessMethods, CostParams, Cursor, ScanRequest};
use rodentstore_layout::{render, AppendOutcome, MemTableProvider, PhysicalLayout, RenderOptions, StoredObject};
use rodentstore_optimizer::{
    advise, advise_with_baseline, AdvisorOptions, Recommendation, Workload,
};
use rodentstore_storage::heap::HeapFile;
use rodentstore_storage::pager::{FileStore, PageStore, Pager};
use rodentstore_storage::stats::IoSnapshot;
use rodentstore_storage::wal::Wal;
use std::path::Path;
use std::sync::Arc;

/// Configuration of the closed-loop self-adaptation machinery.
///
/// The loop is: every query is recorded into the table's
/// [`crate::monitor::WorkloadProfile`]; every `check_every` queries (in auto
/// mode) — or whenever [`Database::maybe_adapt`] is called — the profile is
/// fed to the storage design advisor, the recommended design is costed
/// against the *current* design on the same data sample, and the layout is
/// re-declared only when the predicted improvement clears the `hysteresis`
/// threshold. The transition itself goes through the ordinary
/// [`ReorgStrategy`] machinery, so reads stay correct mid-transition.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Run the adaptation check automatically from inside
    /// `scan`/`open_cursor`/`get_element` every `check_every` queries.
    /// When `false`, the profile is still maintained but adaptation only
    /// happens on explicit [`Database::maybe_adapt`] calls.
    pub auto: bool,
    /// Auto mode: queries between adaptation checks.
    pub check_every: u64,
    /// Minimum queries observed on a table before the advisor is consulted
    /// at all (prevents adapting to the first few requests).
    pub min_queries: u64,
    /// Required relative improvement before a new layout is applied: adapt
    /// only if `best_cost < current_cost × (1 − hysteresis)`. Damps
    /// oscillation between near-equal designs.
    pub hysteresis: f64,
    /// Reorganization strategy used for adaptation-driven layout changes.
    pub strategy: ReorgStrategy,
    /// Advisor configuration (cost model, annealing budget, seed).
    pub advisor: AdvisorOptions,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            auto: false,
            check_every: 64,
            min_queries: 16,
            hysteresis: 0.15,
            strategy: ReorgStrategy::Eager,
            advisor: AdvisorOptions::default(),
        }
    }
}

/// What an adaptation check decided.
#[derive(Debug, Clone)]
pub enum AdaptOutcome {
    /// Too little traffic observed to trust the profile.
    InsufficientData {
        /// Queries observed so far.
        queries_observed: u64,
    },
    /// The advisor's best design did not beat the current one by more than
    /// the hysteresis threshold (or *was* the current design).
    KeptCurrent {
        /// Predicted workload cost of the current design, in ms
        /// (`f64::INFINITY` when the current design could not be costed).
        current_ms: f64,
        /// Predicted workload cost of the advisor's best design, in ms.
        best_ms: f64,
    },
    /// A better design was found and applied.
    Adapted {
        /// The newly declared layout expression.
        expr: LayoutExpr,
        /// Predicted workload cost of the previous design, in ms.
        from_ms: f64,
        /// Predicted workload cost of the new design, in ms.
        to_ms: f64,
    },
}

/// A RodentStore database: a catalog of tables, a shared pager, and the
/// machinery to declare and change physical layouts.
pub struct Database {
    catalog: Catalog,
    pager: Arc<Pager>,
    wal: Wal,
    cost_params: CostParams,
    render_options: RenderOptions,
    adaptive: AdaptivePolicy,
    durability: Option<Durability>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.table_names())
            .field("pages", &self.pager.page_count())
            .finish()
    }
}

impl Database {
    /// Creates an in-memory database with the default (16 KiB) page size.
    pub fn in_memory() -> Database {
        Database::with_pager(Arc::new(Pager::in_memory()))
    }

    /// Creates an in-memory database with an explicit page size.
    pub fn with_page_size(page_size: usize) -> Database {
        Database::with_pager(Arc::new(Pager::in_memory_with_page_size(page_size)))
    }

    /// Creates a database over an arbitrary pager (e.g. file-backed).
    pub fn with_pager(pager: Arc<Pager>) -> Database {
        Database {
            catalog: Catalog::new(),
            pager,
            wal: Wal::new(),
            cost_params: CostParams::default(),
            render_options: RenderOptions::default(),
            adaptive: AdaptivePolicy::default(),
            durability: None,
        }
    }

    /// Creates (or resets) a durable database in directory `dir` with the
    /// default [`DurabilityOptions`] (16 KiB pages, group commit). Three
    /// files are created: `data.rodent` (pages, with a validated
    /// superblock), `wal.rodent` (the write-ahead log), and
    /// `manifest.rodent` (the catalog checkpoint). Every mutation is logged
    /// through the WAL before pages are touched; call
    /// [`Database::checkpoint`] to bound the log, and [`Database::open`] to
    /// come back after a restart or crash.
    pub fn create(dir: impl AsRef<Path>) -> Result<Database> {
        Database::create_with(dir, DurabilityOptions::default())
    }

    /// [`Database::create`] with explicit page size and sync policy.
    pub fn create_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| RodentError::Storage(rodentstore_storage::StorageError::Io(e)))?;
        let (data_path, wal_path, manifest_path) = durability::db_paths(&dir);
        // Resetting an existing database: remove its manifest *before*
        // truncating the data/WAL files. A crash mid-create then leaves a
        // directory that cleanly fails to open (no manifest), never an old
        // manifest pointing page extents into an emptied data file.
        if manifest_path.exists() {
            std::fs::remove_file(&manifest_path)
                .map_err(|e| RodentError::Storage(rodentstore_storage::StorageError::Io(e)))?;
        }
        let store = Arc::new(
            FileStore::create(&data_path, options.page_size).map_err(RodentError::Storage)?,
        );
        let pager = Arc::new(Pager::with_store(
            Arc::clone(&store) as Arc<dyn PageStore>
        ));
        let mut db = Database::with_pager(pager);
        db.wal = Wal::create(&wal_path, options.sync).map_err(RodentError::Storage)?;
        // An initial (empty) manifest makes the directory openable even if
        // the process dies before the first checkpoint.
        let manifest = durability::encode_manifest(&db.catalog, options.page_size, 0, 0)?;
        durability::write_manifest_file(&dir, &manifest)?;
        db.durability = Some(Durability { dir });
        Ok(db)
    }

    /// Opens a durable database directory: validates the data file's
    /// superblock against the manifest, reattaches every rendered layout
    /// from its persisted page extents (**no re-rendering**), restores each
    /// table's workload profile and layout statistics, discards data pages
    /// written after the last checkpoint, and replays the WAL tail —
    /// committed transactions win, torn or corrupt tails are discarded.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Database::open_with(dir, DurabilityOptions::default())
    }

    /// [`Database::open`] with an explicit sync policy for future commits
    /// (the page size always comes from the manifest).
    pub fn open_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Database> {
        let dir = dir.as_ref().to_path_buf();
        let (data_path, wal_path, _) = durability::db_paths(&dir);
        let manifest = durability::decode_manifest(&durability::read_manifest_file(&dir)?)?;
        let store = Arc::new(
            FileStore::open_expecting(&data_path, manifest.page_size)
                .map_err(RodentError::Storage)?,
        );
        // Pages written after the checkpoint are not described by the
        // manifest; drop them — the WAL replay below re-derives their
        // contents from the logged logical operations.
        store
            .truncate(manifest.page_count)
            .map_err(RodentError::Storage)?;
        let pager = Arc::new(Pager::with_store(
            Arc::clone(&store) as Arc<dyn PageStore>
        ));
        let mut db = Database::with_pager(Arc::clone(&pager));

        // Pass 1: every table's schema, rows, profile, and counters.
        let mut rendered = Vec::new();
        for table in manifest.tables {
            let name = table.schema.name().to_string();
            db.catalog.create(table.schema)?;
            let entry = db.catalog.get_mut(&name)?;
            entry.strategy = table.strategy;
            entry.records = table.records;
            entry.pending = table.pending;
            entry.profile = table.profile.into_profile();
            entry.stats = table.stats;
            if let Some(expr_text) = table.layout_expr {
                entry.layout_expr = Some(parse(&expr_text)?);
            }
            if let Some(r) = table.rendered {
                rendered.push((name, r));
            }
        }
        // Pass 2: reattach rendered layouts (after *all* schemas exist, so
        // multi-table expressions like prejoin validate).
        let schemas = db.catalog.schemas();
        for (name, r) in rendered {
            let expr = db
                .catalog
                .get(&name)?
                .layout_expr
                .clone()
                .ok_or_else(|| {
                    RodentError::Invalid(format!(
                        "manifest has a rendered layout for `{name}` but no expression"
                    ))
                })?;
            let mut derived = validate::check_with(&expr, &schemas)?;
            // Incremental appends clear native-order claims; restore what
            // was actually true at checkpoint time, not what the expression
            // would promise after a fresh render.
            derived.orderings = r.orderings;
            let schema = derived.schema.clone();
            let objects: Vec<StoredObject> = r
                .objects
                .into_iter()
                .map(|o| StoredObject {
                    heap: HeapFile::from_pages(
                        o.name.clone(),
                        Arc::clone(&pager),
                        o.pages,
                        o.heap_records,
                    ),
                    name: o.name,
                    fields: o.fields,
                    encoding: o.encoding,
                    codecs: o.codecs.into_iter().collect(),
                    cell: o.cell,
                    row_count: o.row_count as usize,
                    ordering: o.ordering,
                })
                .collect();
            let layout = PhysicalLayout::new(
                r.name,
                expr,
                schema,
                derived,
                objects,
                r.row_count as usize,
                Arc::clone(&pager),
            );
            let entry = db.catalog.get_mut(&name)?;
            entry.access = Some(AccessMethods::with_cost_params(layout, db.cost_params));
        }

        // Replay the WAL tail past the checkpoint. `durability` is still
        // `None` here, so replayed mutations are not re-logged.
        let wal = Wal::open(&wal_path, options.sync).map_err(RodentError::Storage)?;
        for (lsn, _tx, payload) in wal.committed_ops().map_err(RodentError::Storage)? {
            if lsn < manifest.replay_from_lsn {
                continue;
            }
            let op = DurableOp::decode(&payload)?;
            db.apply_op(op)?;
        }
        db.wal = wal;
        db.durability = Some(Durability { dir });
        Ok(db)
    }

    /// Whether this database is file-backed (created via
    /// [`Database::create`]/[`Database::open`]).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Checkpoints a durable database: flushes every rendered object's tail
    /// page, syncs the data file, atomically rewrites the manifest (catalog,
    /// canonical rows, layout page extents, workload profiles), and
    /// truncates the WAL. After a checkpoint, [`Database::open`] needs no
    /// replay and no re-rendering. Errors on in-memory databases.
    pub fn checkpoint(&mut self) -> Result<()> {
        let dir = match &self.durability {
            Some(d) => d.dir.clone(),
            None => {
                return Err(RodentError::Invalid(
                    "checkpoint requires a durable database (Database::create/open)".into(),
                ))
            }
        };
        // Seal partially filled heap tails so every page extent is complete.
        for name in self.catalog.table_names() {
            if let Some(access) = &self.catalog.get(&name)?.access {
                for obj in &access.layout().objects {
                    obj.heap.flush().map_err(RodentError::Storage)?;
                }
            }
        }
        self.pager.sync().map_err(RodentError::Storage)?;
        let replay_from = self.wal.next_lsn();
        let manifest = durability::encode_manifest(
            &self.catalog,
            self.pager.page_size(),
            self.pager.page_count(),
            replay_from,
        )?;
        durability::write_manifest_file(&dir, &manifest)?;
        if let Some(last) = self.wal.last_lsn() {
            self.wal.truncate(last).map_err(RodentError::Storage)?;
        }
        Ok(())
    }

    /// Writes a mutation's op record to the WAL (no-op for in-memory
    /// databases — the payload closure is never even evaluated, so the
    /// default mode pays no serialization cost). Called *before* the
    /// mutation touches the catalog or any page — the write-ahead rule. The
    /// transaction is left open; pass the returned id to
    /// [`Database::log_op_finish`] with the mutation's outcome, so an op
    /// whose apply step fails is recorded as aborted and recovery replay
    /// skips it instead of re-failing on it forever.
    fn log_op_begin(
        &self,
        payload: impl FnOnce() -> Vec<u8>,
    ) -> Result<Option<rodentstore_storage::TxId>> {
        if self.durability.is_none() {
            return Ok(None);
        }
        let tx = self.wal.begin().map_err(RodentError::Storage)?;
        self.wal.log_op(tx, &payload()).map_err(RodentError::Storage)?;
        Ok(Some(tx))
    }

    /// Commits the transaction opened by [`Database::log_op_begin`].
    /// Durability is acknowledged at commit time per the configured
    /// [`rodentstore_storage::SyncPolicy`]; a crash (or write failure)
    /// before the commit record lands makes the op invisible to replay, so
    /// callers whose mutation already applied must roll it back on error —
    /// otherwise live state would diverge from both the reported error and
    /// the recovered state.
    fn log_op_commit(&self, tx: Option<rodentstore_storage::TxId>) -> Result<()> {
        if let Some(tx) = tx {
            self.wal.commit(tx).map_err(RodentError::Storage)?;
        }
        Ok(())
    }

    /// Marks the transaction aborted after its mutation failed. Best
    /// effort: if the abort record cannot be written, the op simply stays
    /// uncommitted, which replay treats identically.
    fn log_op_abort(&self, tx: Option<rodentstore_storage::TxId>) {
        if let Some(tx) = tx {
            let _ = self.wal.abort(tx);
        }
    }

    /// Re-executes a logged operation during recovery (through the same
    /// unlogged mutation paths normal operation uses).
    fn apply_op(&mut self, op: DurableOp) -> Result<()> {
        match op {
            DurableOp::CreateTable(schema) => self.catalog.create(schema),
            DurableOp::DropTable(table) => self.catalog.drop(&table),
            DurableOp::Insert { table, rows } => self.insert_unlogged(&table, rows),
            DurableOp::ApplyLayout {
                table,
                expr,
                strategy,
                adapted,
            } => {
                let parsed = parse(&expr)?;
                self.apply_layout_unlogged(&table, parsed, strategy)?;
                if adapted {
                    self.catalog.get_mut(&table)?.stats.adaptations += 1;
                }
                Ok(())
            }
        }
    }

    /// Overrides the disk-model parameters used for cost estimates.
    pub fn set_cost_params(&mut self, cost_params: CostParams) {
        self.cost_params = cost_params;
    }

    /// Replaces the self-adaptation policy.
    pub fn set_adaptive_policy(&mut self, policy: AdaptivePolicy) {
        self.adaptive = policy;
    }

    /// The current self-adaptation policy.
    pub fn adaptive_policy(&self) -> &AdaptivePolicy {
        &self.adaptive
    }

    /// Switches automatic adaptation on or off (keeping the rest of the
    /// policy unchanged). With auto mode on, every `check_every`-th query
    /// against a table runs the advisor over that table's live workload
    /// profile and re-declares the layout when the predicted improvement
    /// clears the hysteresis threshold — no manual `advise`/`apply_layout`
    /// calls needed.
    pub fn set_auto_adapt(&mut self, auto: bool) {
        self.adaptive.auto = auto;
    }

    /// The shared pager (for I/O statistics, page counts, …).
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Snapshot of the I/O statistics.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.pager.stats().snapshot()
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The write-ahead log (substrate for transactional page writes).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Creates a table from its logical schema.
    pub fn create_table(&mut self, schema: Schema) -> Result<()> {
        if self.catalog.get(schema.name()).is_ok() {
            return Err(RodentError::TableExists(schema.name().to_string()));
        }
        // Commit before applying: the catalog insert cannot fail after the
        // existence pre-check, so a commit-record failure leaves nothing
        // applied (and a crash after the commit is healed by replay).
        let tx = self.log_op_begin(|| durability::encode_create_table(&schema))?;
        self.log_op_commit(tx)?;
        self.catalog.create(schema)
    }

    /// Drops a table. Note that page allocation is append-only: a dropped
    /// table's rendered pages (like those of superseded renders generally)
    /// stay dead in the data file — there is no free list or vacuum yet.
    pub fn drop_table(&mut self, table: &str) -> Result<()> {
        self.catalog.get(table)?;
        // Commit-before-apply, as in `create_table`: the drop is infallible
        // after the existence pre-check.
        let tx = self.log_op_begin(|| durability::encode_drop_table(table))?;
        self.log_op_commit(tx)?;
        self.catalog.drop(table)
    }

    /// Inserts records into a table. If a layout is declared with the eager
    /// strategy, the rows are absorbed into the rendered representation
    /// immediately — *incrementally* where the layout shape allows (new heap
    /// records, column blocks, grid cells, or per-group vertical rows
    /// appended in place), falling back to a full re-render only for shapes
    /// that cannot take appends (fold, prejoin, limit). The lazy strategy defers the
    /// same absorption to the next access; with the new-data-only strategy
    /// the records are kept in a separate row-oriented buffer that scans
    /// merge in.
    ///
    /// On a durable database the rows are committed to the WAL *before* the
    /// catalog or any page is touched (write-ahead logging); how quickly the
    /// commit reaches the disk platter is governed by the
    /// [`rodentstore_storage::SyncPolicy`] chosen at create/open time.
    pub fn insert(&mut self, table: &str, records: Vec<Record>) -> Result<()> {
        let (records_before, pending_before) = {
            let entry = self.catalog.get(table)?;
            for r in &records {
                entry.schema.validate_record(r)?;
            }
            (entry.records.len(), entry.pending.len())
        };
        let tx = self.log_op_begin(|| durability::encode_insert(table, &records))?;
        if let Err(e) = self.insert_unlogged(table, records) {
            self.log_op_abort(tx);
            return Err(e);
        }
        if let Err(e) = self.log_op_commit(tx) {
            // The rows applied but their commit record did not land — they
            // would vanish on recovery. Roll the live state back to match:
            // drop the rows and discard the (possibly appended-to)
            // rendering, so the next access re-renders from the canonical
            // rows that really are durable.
            let entry = self.catalog.get_mut(table)?;
            entry.records.truncate(records_before);
            entry.pending.truncate(pending_before);
            entry.access = None;
            return Err(e);
        }
        Ok(())
    }

    /// The mutation half of [`Database::insert`]: validation and WAL logging
    /// already happened (or are skipped — recovery replay trusts the log).
    ///
    /// If eager absorption fails (e.g. a record too large for the page
    /// size), the canonical rows and pending buffer are rolled back and the
    /// (possibly partially appended) rendering is invalidated, so the table
    /// stays usable — the next access re-renders from the clean canonical
    /// state, and the WAL records the transaction as aborted.
    fn insert_unlogged(&mut self, table: &str, records: Vec<Record>) -> Result<()> {
        let entry = self.catalog.get_mut(table)?;
        let has_layout = entry.access.is_some() || entry.layout_expr.is_some();
        let records_before = entry.records.len();
        let pending_before = entry.pending.len();
        entry.records.extend(records.iter().cloned());
        if has_layout {
            entry.pending.extend(records);
            if entry.strategy == ReorgStrategy::Eager {
                if let Err(e) = self.ensure_rendered(table) {
                    let entry = self.catalog.get_mut(table)?;
                    entry.records.truncate(records_before);
                    entry.pending.truncate(pending_before);
                    entry.access = None;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Number of logical rows in a table.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        Ok(self.catalog.get(table)?.row_count())
    }

    /// Declares the physical layout of a table using the textual algebra
    /// syntax, with the eager reorganization strategy.
    pub fn apply_layout_text(&mut self, table: &str, expr: &str) -> Result<()> {
        let expr = parse(expr)?;
        self.apply_layout(table, expr, ReorgStrategy::Eager)
    }

    /// Declares the physical layout of a table.
    pub fn apply_layout(
        &mut self,
        table: &str,
        expr: LayoutExpr,
        strategy: ReorgStrategy,
    ) -> Result<()> {
        // Validate against the whole catalog so prejoins across tables work
        // — and so invalid expressions are rejected *before* they are logged.
        validate::check_with(&expr, &self.catalog.schemas())?;
        self.catalog.get(table)?;
        let tx = self.log_op_begin(|| {
            durability::encode_apply_layout(table, &expr.to_string(), strategy, false)
        })?;
        self.apply_layout_logged(table, expr, strategy, tx)
    }

    /// The mutation half of [`Database::apply_layout`] for recovery replay
    /// (logging already happened — or is skipped).
    fn apply_layout_unlogged(
        &mut self,
        table: &str,
        expr: LayoutExpr,
        strategy: ReorgStrategy,
    ) -> Result<()> {
        self.apply_layout_logged(table, expr, strategy, None)
    }

    /// Applies a layout and commits its already-written WAL op record. If
    /// the eager render fails — or the commit record cannot be written —
    /// the previous layout state (expression, strategy, rendering, pending
    /// buffer) is restored wholesale, so the live catalog matches both what
    /// the caller observed (an error) and what recovery would replay (an
    /// aborted or absent op).
    fn apply_layout_logged(
        &mut self,
        table: &str,
        expr: LayoutExpr,
        strategy: ReorgStrategy,
        tx: Option<rodentstore_storage::TxId>,
    ) -> Result<()> {
        let (prev_expr, prev_strategy, prev_access, prev_pending) = {
            let entry = self.catalog.get_mut(table)?;
            let prev = (
                entry.layout_expr.take(),
                entry.strategy,
                entry.access.take(),
                std::mem::take(&mut entry.pending),
            );
            entry.layout_expr = Some(expr);
            entry.strategy = strategy;
            prev
        };
        let failure = if strategy.renders_immediately() {
            self.ensure_rendered(table).err()
        } else {
            None
        };
        let failure = match failure {
            Some(e) => {
                self.log_op_abort(tx);
                Some(e)
            }
            None => self.log_op_commit(tx).err(),
        };
        if let Some(e) = failure {
            let entry = self.catalog.get_mut(table)?;
            entry.layout_expr = prev_expr;
            entry.strategy = prev_strategy;
            entry.access = prev_access;
            entry.pending = prev_pending;
            return Err(e);
        }
        Ok(())
    }

    /// Renders the declared layout of `table` if it is not already rendered,
    /// or absorbs pending inserts into the existing rendering (no-op for
    /// tables without a declared layout).
    ///
    /// Absorption is incremental whenever the layout shape allows it: the
    /// pending rows are pipelined (selection, projection, …) and appended to
    /// the existing stored objects — new heap records for row layouts, new
    /// column blocks for columnar ones, routed into (possibly new) cells for
    /// grids, projected onto every field group for vertical partitions. Only
    /// shapes whose invariants cannot be maintained row-at-a-time (fold,
    /// prejoin, limit) fall back to a full re-render.
    pub fn ensure_rendered(&mut self, table: &str) -> Result<()> {
        let (has_expr, has_access, pending_len, absorbs) = {
            let entry = self.catalog.get(table)?;
            (
                entry.layout_expr.is_some(),
                entry.access.is_some(),
                entry.pending.len(),
                entry.strategy.absorbs_new_data_on_access(),
            )
        };
        if !has_expr {
            return Ok(());
        }
        if has_access && !(absorbs && pending_len > 0) {
            return Ok(());
        }
        if has_access && absorbs && pending_len > 0 {
            // Try to absorb the pending rows into the existing rendering.
            let provider = {
                let entry = self.catalog.get(table)?;
                MemTableProvider::single(entry.schema.clone(), entry.pending.clone())
            };
            let entry = self.catalog.get_mut(table)?;
            let access = entry.access.as_mut().expect("checked above");
            match access.append_rows(&provider) {
                Ok(AppendOutcome::Appended { .. }) => {
                    entry.pending.clear();
                    entry.stats.incremental_appends += 1;
                    return Ok(());
                }
                Ok(AppendOutcome::NeedsRebuild(_)) => {
                    entry.access = None;
                    // Fall through to the full render below.
                }
                Err(e) => {
                    // A failed append may have touched some objects and not
                    // others (e.g. one group of a vertical partition), which
                    // would misalign the positional stitch of every later
                    // read. Discard the rendering: the next access rebuilds
                    // from the canonical rows, which are still consistent.
                    entry.access = None;
                    return Err(e.into());
                }
            }
        }
        let (expr, strategy) = {
            let entry = self.catalog.get(table)?;
            (
                entry.layout_expr.clone().expect("checked above"),
                entry.strategy,
            )
        };
        // Build a provider holding only the tables the expression actually
        // references (prejoin may need more than one; everything else needs
        // exactly one — unrelated tables are never cloned). Under the
        // new-data-only strategy, rows inserted after the layout was declared
        // stay in the row buffer and are excluded from the rendering.
        let referenced = expr.base_tables();
        let mut provider = MemTableProvider::new();
        for name in self.catalog.table_names() {
            if !referenced.contains(&name) {
                continue;
            }
            let entry = self.catalog.get(&name)?;
            let mut records = entry.records.clone();
            if name == table && !strategy.absorbs_new_data_on_access() {
                records.truncate(records.len().saturating_sub(entry.pending.len()));
            }
            provider.add(entry.schema.clone(), records);
        }
        let layout = render(
            &expr,
            &provider,
            Arc::clone(&self.pager),
            RenderOptions {
                name: Some(format!("{table}__layout")),
                ..self.render_options.clone()
            },
        )?;
        let access = AccessMethods::with_cost_params(layout, self.cost_params);
        let entry = self.catalog.get_mut(table)?;
        entry.access = Some(access);
        entry.stats.full_renders += 1;
        if strategy.absorbs_new_data_on_access() {
            entry.pending.clear();
        }
        Ok(())
    }

    /// Scans a table. Tables without a declared layout are scanned from their
    /// canonical row-major representation; tables with a layout use the
    /// rendered objects (rendering lazily if necessary). Under the
    /// new-data-only strategy, rows inserted after the layout was declared
    /// are merged in from the row buffer — order-aware when the request asks
    /// for a sort order, so the merged result is globally ordered.
    ///
    /// Every scan is recorded into the table's live workload profile; in
    /// auto-adapt mode, every [`AdaptivePolicy::check_every`]-th query also
    /// runs the adaptation check after serving the scan.
    pub fn scan(&mut self, table: &str, request: &ScanRequest) -> Result<Vec<Record>> {
        let run_check = self.observe(table, request)?;
        self.ensure_rendered(table)?;
        let entry = self.catalog.get(table)?;
        let rows = match &entry.access {
            // A layout can only serve requests over the fields it kept; a
            // query referencing a field the (possibly auto-adapted) layout
            // projected away falls back to the canonical rows — and, having
            // been recorded in the profile, steers the next adaptation back
            // toward a layout that covers it.
            Some(access) if layout_serves(access, request) => {
                let mut rows = access.scan(request)?;
                if !entry.pending.is_empty() {
                    // Pending rows must come out in the *layout's* output
                    // shape (a projection layout exposes fewer fields than
                    // the canonical schema), so the merge compares and
                    // returns uniformly shaped records.
                    let out_fields: Vec<String> = request
                        .fields
                        .clone()
                        .unwrap_or_else(|| access.layout().schema.field_names());
                    let pending_request = ScanRequest {
                        fields: Some(out_fields.clone()),
                        predicate: request.predicate.clone(),
                        order: request.order.clone(),
                    };
                    let pending =
                        scan_canonical(&entry.schema, &entry.pending, &pending_request)?;
                    rows = merge_by_order(&out_fields, request.order.as_deref(), rows, pending);
                }
                rows
            }
            _ => scan_canonical(&entry.schema, &entry.records, request)?,
        };
        if run_check {
            self.auto_adapt_check(table)?;
        }
        Ok(rows)
    }

    /// Opens a (materialized) cursor over a scan. The facade merges freshly
    /// inserted pending rows into layout scans, so the merged result is
    /// materialized here; use [`AccessMethods::open_cursor`] on a layout
    /// directly for a streaming cursor.
    pub fn open_cursor(&mut self, table: &str, request: &ScanRequest) -> Result<Cursor<'static>> {
        // Profiling (and the auto-adapt hook) happens inside `scan`.
        Ok(Cursor::new(self.scan(table, request)?))
    }

    /// Returns the element at `index` of the table's stored representation
    /// (layout storage order first, then any pending row buffer).
    pub fn get_element(
        &mut self,
        table: &str,
        index: usize,
        fields: Option<&[String]>,
    ) -> Result<Record> {
        let run_check = {
            let policy = &self.adaptive;
            let entry = self.catalog.get_mut(table)?;
            // Unknown fields error below and must not poison the profile.
            if fields.map_or(true, |fields| {
                fields.iter().all(|f| entry.schema.index_of(f).is_ok())
            }) {
                entry.profile.record_get_element(fields);
            }
            policy.auto && entry.profile.queries_since_check >= policy.check_every
        };
        self.ensure_rendered(table)?;
        let entry = self.catalog.get(table)?;
        let element = match &entry.access {
            // Fields the layout projected away are served from the canonical
            // rows (in canonical order — a storage order over fields the
            // layout does not store is not meaningful).
            Some(access)
                if fields.map_or(true, |fields| {
                    fields.iter().all(|f| access.layout().schema.index_of(f).is_ok())
                }) =>
            {
                let layout_rows = access.layout().row_count;
                if index >= layout_rows && index - layout_rows < entry.pending.len() {
                    // Pending rows (new-data-only buffer) extend the storage
                    // order past the rendered representation; project them to
                    // the layout's exposed fields so the record shape does
                    // not change at the layout/pending boundary.
                    let layout_fields;
                    let effective: &[String] = match fields {
                        Some(fields) => fields,
                        None => {
                            layout_fields = access.layout().schema.field_names();
                            &layout_fields
                        }
                    };
                    project_record(
                        &entry.schema,
                        entry.pending[index - layout_rows].clone(),
                        Some(effective),
                    )?
                } else {
                    access.get_element(index, fields)?
                }
            }
            _ => entry
                .records
                .get(index)
                .cloned()
                .map(|r| project_record(&entry.schema, r, fields))
                .transpose()?
                .ok_or_else(|| RodentError::Invalid(format!("element {index} out of range")))?,
        };
        if run_check {
            self.auto_adapt_check(table)?;
        }
        Ok(element)
    }

    /// Estimated cost of a scan in milliseconds (the `scan_cost` access
    /// method). Tables without a rendered layout — or requests the layout
    /// cannot serve (fields it projected away) — report a cost proportional
    /// to their canonical size.
    pub fn scan_cost(&mut self, table: &str, request: &ScanRequest) -> Result<f64> {
        self.ensure_rendered(table)?;
        let entry = self.catalog.get(table)?;
        match &entry.access {
            Some(access) if layout_serves(access, request) => Ok(access.scan_cost(request)?),
            _ => {
                let bytes = entry.records.len() as f64
                    * entry.schema.estimated_record_width() as f64;
                Ok(self.cost_params.seek_ms
                    + bytes / (self.cost_params.transfer_mb_per_s * 1024.0 * 1024.0) * 1000.0)
            }
        }
    }

    /// Estimated number of pages a scan would read (0 when the scan would be
    /// served from the in-memory canonical rows).
    pub fn scan_pages(&mut self, table: &str, request: &ScanRequest) -> Result<u64> {
        self.ensure_rendered(table)?;
        let entry = self.catalog.get(table)?;
        match &entry.access {
            Some(access) if layout_serves(access, request) => Ok(access.scan_pages(request)),
            _ => Ok(0),
        }
    }

    /// The sort orders the table's current organization is efficient for.
    pub fn order_list(&mut self, table: &str) -> Result<Vec<Vec<rodentstore_algebra::expr::SortKey>>> {
        self.ensure_rendered(table)?;
        let entry = self.catalog.get(table)?;
        Ok(entry
            .access
            .as_ref()
            .map(|a| a.order_list())
            .unwrap_or_default())
    }

    /// Runs the storage design advisor for a table and workload, returning
    /// the recommendation without applying it.
    pub fn recommend_layout(
        &self,
        table: &str,
        workload: &Workload,
        options: &AdvisorOptions,
    ) -> Result<Recommendation> {
        let entry = self.catalog.get(table)?;
        Ok(advise(&entry.schema, &entry.records, workload, options)?)
    }

    /// Runs the advisor and applies the recommended layout eagerly.
    pub fn auto_tune(
        &mut self,
        table: &str,
        workload: &Workload,
        options: &AdvisorOptions,
    ) -> Result<Recommendation> {
        let recommendation = self.recommend_layout(table, workload, options)?;
        self.apply_layout(table, recommendation.best.expr.clone(), ReorgStrategy::Eager)?;
        Ok(recommendation)
    }

    /// The live workload profile captured for a table.
    pub fn workload_profile(&self, table: &str) -> Result<&crate::monitor::WorkloadProfile> {
        Ok(&self.catalog.get(table)?.profile)
    }

    /// Render/append/adaptation counters for a table.
    pub fn layout_stats(&self, table: &str) -> Result<crate::catalog::LayoutStats> {
        Ok(self.catalog.get(table)?.stats)
    }

    /// Runs one adaptation check against the table's *live* workload profile
    /// — no user-built [`Workload`] needed. The advisor's best design and the
    /// currently declared design are costed over the same data sample; the
    /// layout is re-declared (via [`AdaptivePolicy::strategy`]) only when the
    /// predicted improvement clears [`AdaptivePolicy::hysteresis`].
    ///
    /// In auto mode this runs by itself every [`AdaptivePolicy::check_every`]
    /// queries; calling it explicitly is always allowed.
    pub fn maybe_adapt(&mut self, table: &str) -> Result<AdaptOutcome> {
        let policy = self.adaptive.clone();
        let (workload, observed) = {
            let entry = self.catalog.get_mut(table)?;
            entry.profile.end_check_window();
            (entry.profile.to_workload(), entry.profile.queries_observed)
        };
        if observed < policy.min_queries || workload.is_empty() {
            return Ok(AdaptOutcome::InsufficientData {
                queries_observed: observed,
            });
        }
        let current_expr = {
            let entry = self.catalog.get(table)?;
            entry
                .layout_expr
                .clone()
                .unwrap_or_else(|| LayoutExpr::table(table))
        };
        let (recommendation, baseline) = {
            let entry = self.catalog.get(table)?;
            advise_with_baseline(
                &entry.schema,
                &entry.records,
                &workload,
                &policy.advisor,
                &current_expr,
            )?
        };
        let best = recommendation.best;
        let current_ms = baseline.map(|c| c.total_ms).unwrap_or(f64::INFINITY);
        let improves = best.total_ms < current_ms * (1.0 - policy.hysteresis);
        if best.expr == current_expr || !improves {
            return Ok(AdaptOutcome::KeptCurrent {
                current_ms,
                best_ms: best.total_ms,
            });
        }
        // Adaptation is logged as an `apply_layout` with the `adapted` flag
        // set, so replay after a crash maintains the adaptation counter.
        let tx = self.log_op_begin(|| {
            durability::encode_apply_layout(table, &best.expr.to_string(), policy.strategy, true)
        })?;
        self.apply_layout_logged(table, best.expr.clone(), policy.strategy, tx)?;
        let entry = self.catalog.get_mut(table)?;
        entry.stats.adaptations += 1;
        Ok(AdaptOutcome::Adapted {
            expr: best.expr,
            from_ms: current_ms,
            to_ms: best.total_ms,
        })
    }

    /// Records a scan into the profile, returning whether the auto-adapt
    /// check should run after the query is served. Requests referencing
    /// fields the table does not have are *not* recorded — they error on the
    /// query path anyway, and a poisoned template would make every later
    /// advisor run fail on the unknown field.
    fn observe(&mut self, table: &str, request: &ScanRequest) -> Result<bool> {
        let policy = &self.adaptive;
        let entry = self.catalog.get_mut(table)?;
        let known = |f: &String| entry.schema.index_of(f).is_ok();
        let valid = request.fields.iter().flatten().all(known)
            && request
                .predicate
                .as_ref()
                .map_or(true, |p| p.referenced_fields().iter().all(known))
            && request
                .order
                .iter()
                .flatten()
                .all(|k| known(&k.field));
        if valid {
            entry.profile.record_scan(request);
        }
        Ok(policy.auto && entry.profile.queries_since_check >= policy.check_every)
    }

    /// Auto-mode wrapper around [`Database::maybe_adapt`]: an adaptation
    /// check the advisor cannot complete (empty candidate set, a template it
    /// cannot cost, …) must not fail the user's query, so optimizer errors
    /// are swallowed here; catalog and rendering errors still surface.
    fn auto_adapt_check(&mut self, table: &str) -> Result<()> {
        match self.maybe_adapt(table) {
            Ok(_) | Err(RodentError::Optimizer(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// Whether the rendered layout can serve every field the request references
/// (projection, predicate, and order keys). A layout that projected a field
/// away cannot — such requests fall back to the canonical rows.
fn layout_serves(access: &AccessMethods, request: &ScanRequest) -> bool {
    let schema = &access.layout().schema;
    if let Some(fields) = &request.fields {
        if !fields.iter().all(|f| schema.index_of(f).is_ok()) {
            return false;
        }
    }
    if let Some(pred) = &request.predicate {
        if !pred
            .referenced_fields()
            .iter()
            .all(|f| schema.index_of(f).is_ok())
        {
            return false;
        }
    }
    if let Some(order) = &request.order {
        if !order.iter().all(|k| schema.index_of(&k.field).is_ok()) {
            return false;
        }
    }
    true
}

/// Projects a canonical record to the requested fields.
fn project_record(
    schema: &Schema,
    record: Record,
    fields: Option<&[String]>,
) -> Result<Record> {
    match fields {
        Some(fields) => schema.extract(&record, fields).map_err(RodentError::Algebra),
        None => Ok(record),
    }
}

/// Compares two equally shaped records on `(position, direction)` sort keys
/// — the single comparator shared by the canonical scan sort and the
/// pending-row merge.
fn compare_by_keys(
    key_positions: &[(usize, SortOrder)],
    a: &Record,
    b: &Record,
) -> std::cmp::Ordering {
    for (pos, dir) in key_positions {
        let ord = a[*pos].compare(&b[*pos]);
        let ord = match dir {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Merges pending-buffer rows into a layout scan's result. Both inputs carry
/// records in the `out_fields` shape. When the request asks for a sort
/// order, both inputs are already sorted on the order keys (the access
/// methods sort non-native orders; [`scan_canonical`] sorts the buffer), so
/// a two-way merge keeps the combined result globally ordered — blindly
/// appending the buffer (the old behavior) broke any `ScanRequest` ordering.
/// Without an order (or when no order key survives the projection), the
/// buffer is appended after the layout rows.
fn merge_by_order(
    out_fields: &[String],
    order: Option<&[rodentstore_algebra::expr::SortKey]>,
    base: Vec<Record>,
    extra: Vec<Record>,
) -> Vec<Record> {
    let key_positions: Vec<(usize, SortOrder)> = order
        .unwrap_or_default()
        .iter()
        .filter_map(|k| {
            out_fields
                .iter()
                .position(|f| *f == k.field)
                .map(|pos| (pos, k.order))
        })
        .collect();
    if key_positions.is_empty() {
        let mut rows = base;
        rows.extend(extra);
        return rows;
    }
    let mut merged = Vec::with_capacity(base.len() + extra.len());
    let mut a = base.into_iter().peekable();
    let mut b = extra.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                // `<=` keeps the merge stable: layout rows win ties.
                if compare_by_keys(&key_positions, x, y) != std::cmp::Ordering::Greater {
                    merged.push(a.next().expect("peeked"));
                } else {
                    merged.push(b.next().expect("peeked"));
                }
            }
            (Some(_), None) => merged.push(a.next().expect("peeked")),
            (None, Some(_)) => merged.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    merged
}

/// Scans in-memory canonical records (used before any layout is declared and
/// for the new-data-only pending buffer).
fn scan_canonical(
    schema: &Schema,
    records: &[Record],
    request: &ScanRequest,
) -> Result<Vec<Record>> {
    let out_fields: Vec<String> = request
        .fields
        .clone()
        .unwrap_or_else(|| schema.field_names());
    let indices = schema.indices_of(&out_fields)?;
    let mut rows = Vec::new();
    for r in records {
        if let Some(pred) = &request.predicate {
            if !pred.eval(schema, r)? {
                continue;
            }
        }
        rows.push(indices.iter().map(|&i| r[i].clone()).collect());
    }
    if let Some(order) = &request.order {
        let mut key_positions = Vec::new();
        for key in order {
            if let Some(pos) = out_fields.iter().position(|f| *f == key.field) {
                key_positions.push((pos, key.order));
            }
        }
        rows.sort_by(|a: &Record, b: &Record| compare_by_keys(&key_positions, a, b));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::comprehension::Condition;
    use rodentstore_algebra::schema::Field;
    use rodentstore_algebra::types::DataType;
    use rodentstore_algebra::value::Value;
    use rodentstore_workload::{generate_traces, traces_schema, CartelConfig};

    fn small_db() -> Database {
        let mut db = Database::with_page_size(2048);
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 1_500,
                vehicles: 10,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db
    }

    #[test]
    fn scan_without_layout_uses_canonical_rows() {
        let mut db = small_db();
        let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 1_500);
        let narrow = db
            .scan("Traces", &ScanRequest::all().fields(["lat"]))
            .unwrap();
        assert!(narrow.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn textual_layout_changes_the_physical_representation() {
        let mut db = small_db();
        // Center the query box on a point the table actually contains, so
        // the test does not depend on the exact random stream.
        let (lat0, lon0) = {
            let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
            (rows[750][1].as_f64().unwrap(), rows[750][2].as_f64().unwrap())
        };
        let (lat_lo, lat_hi) = (lat0 - 0.02, lat0 + 0.02);
        let (lon_lo, lon_hi) = (lon0 - 0.025, lon0 + 0.025);
        db.apply_layout_text(
            "Traces",
            "zorder(grid[lat,lon;0.02,0.02](project[lat,lon](Traces)))",
        )
        .unwrap();
        let pred =
            Condition::range("lat", lat_lo, lat_hi).and(Condition::range("lon", lon_lo, lon_hi));
        let rows = db
            .scan("Traces", &ScanRequest::all().predicate(pred.clone()))
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .all(|r| (lat_lo..=lat_hi).contains(&r[0].as_f64().unwrap())));
        // Pruned scans should touch fewer pages than the whole layout.
        let total = db.scan_pages("Traces", &ScanRequest::all()).unwrap();
        let pruned = db
            .scan_pages("Traces", &ScanRequest::all().predicate(pred))
            .unwrap();
        assert!(pruned < total);
    }

    #[test]
    fn lazy_layouts_render_on_first_access() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").columns(["t", "lat", "lon", "id"]),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        // Nothing rendered yet.
        assert!(db.catalog().get("Traces").unwrap().access.is_none());
        db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        assert!(db.catalog().get("Traces").unwrap().access.is_some());
    }

    #[test]
    fn new_data_only_strategy_merges_pending_rows() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        let before = db.scan("Traces", &ScanRequest::all()).unwrap().len();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let after = db.scan("Traces", &ScanRequest::all()).unwrap().len();
        assert_eq!(after, before + 1);
        // The pending row is still buffered, not folded into the layout.
        assert_eq!(db.catalog().get("Traces").unwrap().pending.len(), 1);
    }

    #[test]
    fn eager_strategy_absorbs_inserts() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        assert!(db.catalog().get("Traces").unwrap().pending.is_empty());
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
    }

    #[test]
    fn schema_violations_and_unknown_tables_are_rejected() {
        let mut db = small_db();
        assert!(db.insert("Traces", vec![vec![Value::Int(1)]]).is_err());
        assert!(db.scan("Nope", &ScanRequest::all()).is_err());
        assert!(db
            .apply_layout_text("Traces", "project[altitude](Traces)")
            .is_err());
    }

    #[test]
    fn get_element_and_order_list() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").order_by(["t"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let first = db.get_element("Traces", 0, None).unwrap();
        assert_eq!(first.len(), 4);
        let orders = db.order_list("Traces").unwrap();
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0][0].field, "t");
    }

    #[test]
    fn eager_inserts_are_absorbed_incrementally() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let after_apply = db.layout_stats("Traces").unwrap();
        assert_eq!(after_apply.full_renders, 1);

        let written_before = db.io_snapshot().pages_written;
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 1, "no full re-render on insert");
        assert_eq!(stats.incremental_appends, 1);
        // An incremental append of one row touches a handful of pages, not
        // the whole layout.
        let written = db.io_snapshot().pages_written - written_before;
        assert!(written <= 4, "append wrote {written} pages");
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
        assert!(db.catalog().get("Traces").unwrap().pending.is_empty());
    }

    #[test]
    fn lazy_inserts_absorb_incrementally_on_next_access() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        db.scan("Traces", &ScanRequest::all()).unwrap(); // first render
        assert_eq!(db.layout_stats("Traces").unwrap().full_renders, 1);
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_001),
                Value::Float(42.32),
                Value::Float(-71.07),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        // Pending until the next access; then absorbed without a re-render.
        assert_eq!(db.catalog().get("Traces").unwrap().pending.len(), 1);
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 1);
        assert_eq!(stats.incremental_appends, 1);
    }

    #[test]
    fn vertical_partitions_absorb_inserts_incrementally() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").vertical([vec!["lat", "lon"], vec!["t", "id"]]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_002),
                Value::Float(42.33),
                Value::Float(-71.08),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 1, "vertical appends in place now");
        assert_eq!(stats.incremental_appends, 1);
        let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 1_501);
        // The appended row is stitched back whole across both objects.
        let last = db.get_element("Traces", 1_500, None).unwrap();
        assert_eq!(last[0], Value::Timestamp(10_002));
        assert_eq!(last[3], Value::Str("car-new".into()));
    }

    #[test]
    fn failed_partial_append_invalidates_instead_of_corrupting() {
        // A vertical append writes object-by-object; if one group fails
        // (here: a string too large for the page) after another succeeded,
        // the per-object row sets diverge. The absorb path must discard the
        // rendering rather than leave positionally misaligned objects.
        let mut db = Database::with_page_size(1024);
        db.create_table(Schema::new(
            "Docs",
            vec![
                Field::new("x", DataType::Float),
                Field::new("body", DataType::String),
            ],
        ))
        .unwrap();
        let rows: Vec<Record> = (0..50)
            .map(|i| vec![Value::Float(i as f64), Value::Str(format!("doc-{i}"))])
            .collect();
        db.insert("Docs", rows).unwrap();
        db.apply_layout(
            "Docs",
            LayoutExpr::table("Docs").vertical([vec!["x"], vec!["body"]]),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        assert_eq!(db.scan("Docs", &ScanRequest::all()).unwrap().len(), 50);
        // Passes schema validation, fails in the `body` object's heap.
        db.insert(
            "Docs",
            vec![vec![Value::Float(99.0), Value::Str("y".repeat(5_000))]],
        )
        .unwrap();
        let err = db.scan("Docs", &ScanRequest::all());
        assert!(err.is_err(), "absorbing the oversized row must fail");
        assert!(
            db.catalog().get("Docs").unwrap().access.is_none(),
            "the partially appended rendering must be discarded"
        );
        // Declaring a layout that can hold the data recovers the table with
        // every row intact and aligned.
        db.apply_layout(
            "Docs",
            LayoutExpr::table("Docs").project(["x"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let rows = db.scan("Docs", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 51);
        assert_eq!(rows[50], vec![Value::Float(99.0)]);
    }

    #[test]
    fn appendless_shapes_still_rebuild_on_insert() {
        let mut db = small_db();
        // Fold groups are single heap records; inserts must re-render.
        // (Folding only `t` keeps each group under the 2 KiB test pages.)
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").fold(["id"], ["t"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_002),
                Value::Float(42.33),
                Value::Float(-71.08),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 2, "folded layouts fall back to rebuild");
        assert_eq!(stats.incremental_appends, 0);
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
    }

    #[test]
    fn new_data_only_merges_pending_rows_order_aware() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["t", "lat"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        // A pending row whose timestamp sorts *before* every layout row.
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(-5),
                Value::Float(42.0),
                Value::Float(-71.0),
                Value::Str("car-early".into()),
            ]],
        )
        .unwrap();
        let rows = db
            .scan("Traces", &ScanRequest::all().fields(["t", "lat"]).order(["t"]))
            .unwrap();
        assert_eq!(rows.len(), 1_501);
        assert_eq!(rows[0][0], Value::Timestamp(-5), "pending row merged into place");
        assert!(
            rows.windows(2).all(|w| w[0][0] <= w[1][0]),
            "merged result must be globally ordered"
        );
    }

    #[test]
    fn ordered_scan_over_projection_layout_merges_pending_in_layout_shape() {
        let mut db = small_db();
        // The layout exposes only [lat, lon]; order key positions must be
        // resolved against that shape, not the 4-field canonical schema.
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_004),
                Value::Float(-90.0), // sorts before every generated lat
                Value::Float(0.0),
                Value::Str("car-south".into()),
            ]],
        )
        .unwrap();
        let rows = db
            .scan("Traces", &ScanRequest::all().order(["lat"]))
            .unwrap();
        assert_eq!(rows.len(), 1_501);
        assert!(rows.iter().all(|r| r.len() == 2), "uniform layout shape");
        assert_eq!(rows[0][0], Value::Float(-90.0), "pending row merged first");
        assert!(rows.windows(2).all(|w| w[0][0] <= w[1][0]));
    }

    #[test]
    fn unknown_field_requests_do_not_poison_auto_adaptation() {
        let mut db = small_db();
        db.set_adaptive_policy(AdaptivePolicy {
            auto: true,
            check_every: 4,
            min_queries: 4,
            advisor: AdvisorOptions {
                cost_model: rodentstore_optimizer::CostModel {
                    sample_size: 500,
                    page_size: 1024,
                    cost_params: CostParams {
                        seek_ms: 1.0,
                        transfer_mb_per_s: 2.0,
                    },
                },
                anneal_iterations: 1,
                seed: 5,
            },
            ..AdaptivePolicy::default()
        });
        // A bad request errors, but must not be recorded as a template.
        assert!(db.scan("Traces", &ScanRequest::all().fields(["nope"])).is_err());
        assert!(db
            .get_element("Traces", 0, Some(&["nope".to_string()]))
            .is_err());
        // Valid queries keep working straight through the adaptation checks.
        for _ in 0..12 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        assert!(db
            .workload_profile("Traces")
            .unwrap()
            .templates()
            .iter()
            .all(|t| !t.fingerprint.contains("nope")));
    }

    #[test]
    fn get_element_reaches_pending_rows() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_003),
                Value::Float(1.5),
                Value::Float(2.5),
                Value::Str("car-pending".into()),
            ]],
        )
        .unwrap();
        // Index 1500 is past the rendered layout (1500 rows) → pending row,
        // shaped like the layout's output ([lat, lon]) — the record shape
        // must not change at the layout/pending boundary.
        let row = db.get_element("Traces", 1_500, None).unwrap();
        assert_eq!(row, vec![Value::Float(1.5), Value::Float(2.5)]);
        assert_eq!(row.len(), db.get_element("Traces", 0, None).unwrap().len());
        let narrow = db
            .get_element("Traces", 1_500, Some(&["lon".to_string()]))
            .unwrap();
        assert_eq!(narrow, vec![Value::Float(2.5)]);
        assert!(db.get_element("Traces", 1_501, None).is_err());
    }

    #[test]
    fn dropped_fields_are_served_from_canonical_rows() {
        let mut db = small_db();
        // The layout keeps only lat/lon; t and id are projected away.
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let ts = db
            .scan("Traces", &ScanRequest::all().fields(["t"]))
            .unwrap();
        assert_eq!(ts.len(), 1_500, "dropped field served from canonical rows");
        let filtered = db
            .scan(
                "Traces",
                &ScanRequest::all()
                    .fields(["lat"])
                    .predicate(Condition::eq("id", "car-00001")),
            )
            .unwrap();
        assert!(!filtered.is_empty(), "predicate on dropped field still works");
        assert_eq!(db.scan_pages("Traces", &ScanRequest::all().fields(["t"])).unwrap(), 0);
        assert!(db.scan_cost("Traces", &ScanRequest::all().fields(["t"])).unwrap() > 0.0);
        let elem = db
            .get_element("Traces", 3, Some(&["t".to_string(), "id".to_string()]))
            .unwrap();
        assert_eq!(elem.len(), 2);
        // Truly unknown fields still error.
        assert!(db.scan("Traces", &ScanRequest::all().fields(["nope"])).is_err());
    }

    #[test]
    fn maybe_adapt_waits_for_data_then_adapts_beyond_hysteresis() {
        let mut db = Database::with_page_size(1024);
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 3_000,
                vehicles: 15,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db.set_adaptive_policy(AdaptivePolicy {
            auto: false,
            min_queries: 8,
            hysteresis: 0.1,
            advisor: AdvisorOptions {
                cost_model: rodentstore_optimizer::CostModel {
                    sample_size: 2_000,
                    page_size: 1024,
                    cost_params: CostParams {
                        seek_ms: 1.0,
                        transfer_mb_per_s: 2.0,
                    },
                },
                anneal_iterations: 2,
                seed: 11,
            },
            ..AdaptivePolicy::default()
        });

        // Not enough traffic yet.
        db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        assert!(matches!(
            db.maybe_adapt("Traces").unwrap(),
            AdaptOutcome::InsufficientData { .. }
        ));

        // A projection-heavy workload: the advisor should move the table off
        // the canonical row layout.
        for _ in 0..12 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        let outcome = db.maybe_adapt("Traces").unwrap();
        assert!(
            matches!(outcome, AdaptOutcome::Adapted { .. }),
            "expected adaptation, got {outcome:?}"
        );
        assert!(db.catalog().get("Traces").unwrap().layout_expr.is_some());
        assert_eq!(db.layout_stats("Traces").unwrap().adaptations, 1);

        // Same workload again: the system must *not* flap.
        for _ in 0..12 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        assert!(matches!(
            db.maybe_adapt("Traces").unwrap(),
            AdaptOutcome::KeptCurrent { .. }
        ));
        assert_eq!(db.layout_stats("Traces").unwrap().adaptations, 1);
    }

    #[test]
    fn auto_mode_adapts_without_manual_calls() {
        let mut db = Database::with_page_size(1024);
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 3_000,
                vehicles: 15,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db.set_adaptive_policy(AdaptivePolicy {
            auto: true,
            check_every: 10,
            min_queries: 10,
            hysteresis: 0.1,
            advisor: AdvisorOptions {
                cost_model: rodentstore_optimizer::CostModel {
                    sample_size: 2_000,
                    page_size: 1024,
                    cost_params: CostParams {
                        seek_ms: 1.0,
                        transfer_mb_per_s: 2.0,
                    },
                },
                anneal_iterations: 2,
                seed: 11,
            },
            ..AdaptivePolicy::default()
        });
        for _ in 0..25 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        assert!(
            db.layout_stats("Traces").unwrap().adaptations >= 1,
            "auto mode must have adapted the layout"
        );
        assert!(db.catalog().get("Traces").unwrap().layout_expr.is_some());
        // Queries still answer correctly through the adapted layout.
        let rows = db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        assert_eq!(rows.len(), 3_000);
    }

    #[test]
    fn auto_tune_applies_a_recommendation() {
        let mut db = Database::with_page_size(1024);
        db.create_table(Schema::new(
            "Points",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
                Field::new("tag", DataType::String),
            ],
        ))
        .unwrap();
        let records: Vec<Record> = (0..800)
            .map(|i| {
                vec![
                    Value::Float((i % 40) as f64),
                    Value::Float((i / 40) as f64),
                    Value::Str(format!("tag{}", i % 5)),
                ]
            })
            .collect();
        db.insert("Points", records).unwrap();
        let workload = Workload::new().query(
            ScanRequest::all()
                .fields(["x", "y"])
                .predicate(Condition::range("x", 3.0, 6.0).and(Condition::range("y", 3.0, 6.0))),
        );
        let options = AdvisorOptions {
            cost_model: rodentstore_optimizer::CostModel {
                sample_size: 800,
                page_size: 512,
                cost_params: CostParams {
                    seek_ms: 0.5,
                    transfer_mb_per_s: 2.0,
                },
            },
            anneal_iterations: 2,
            seed: 3,
        };
        let rec = db.auto_tune("Points", &workload, &options).unwrap();
        assert!(db.catalog().get("Points").unwrap().layout_expr.is_some());
        assert!(rec.explored.len() > 3);
        // The tuned table still answers queries correctly.
        let rows = db
            .scan(
                "Points",
                &ScanRequest::all()
                    .fields(["x", "y"])
                    .predicate(Condition::range("x", 3.0, 6.0)),
            )
            .unwrap();
        assert!(rows.iter().all(|r| (3.0..=6.0).contains(&r[0].as_f64().unwrap())));
    }
}
