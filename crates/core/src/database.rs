//! The RodentStore database façade.

use crate::catalog::Catalog;
use crate::reorg::ReorgStrategy;
use crate::{Result, RodentError};
use rodentstore_algebra::expr::LayoutExpr;
use rodentstore_algebra::parse;
use rodentstore_algebra::schema::Schema;
use rodentstore_algebra::validate;
use rodentstore_algebra::value::Record;
use rodentstore_exec::{AccessMethods, CostParams, Cursor, ScanRequest};
use rodentstore_layout::{render, MemTableProvider, RenderOptions};
use rodentstore_optimizer::{advise, AdvisorOptions, Recommendation, Workload};
use rodentstore_storage::pager::Pager;
use rodentstore_storage::stats::IoSnapshot;
use rodentstore_storage::wal::Wal;
use std::sync::Arc;

/// A RodentStore database: a catalog of tables, a shared pager, and the
/// machinery to declare and change physical layouts.
pub struct Database {
    catalog: Catalog,
    pager: Arc<Pager>,
    wal: Wal,
    cost_params: CostParams,
    render_options: RenderOptions,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.table_names())
            .field("pages", &self.pager.page_count())
            .finish()
    }
}

impl Database {
    /// Creates an in-memory database with the default (16 KiB) page size.
    pub fn in_memory() -> Database {
        Database::with_pager(Arc::new(Pager::in_memory()))
    }

    /// Creates an in-memory database with an explicit page size.
    pub fn with_page_size(page_size: usize) -> Database {
        Database::with_pager(Arc::new(Pager::in_memory_with_page_size(page_size)))
    }

    /// Creates a database over an arbitrary pager (e.g. file-backed).
    pub fn with_pager(pager: Arc<Pager>) -> Database {
        Database {
            catalog: Catalog::new(),
            pager,
            wal: Wal::new(),
            cost_params: CostParams::default(),
            render_options: RenderOptions::default(),
        }
    }

    /// Overrides the disk-model parameters used for cost estimates.
    pub fn set_cost_params(&mut self, cost_params: CostParams) {
        self.cost_params = cost_params;
    }

    /// The shared pager (for I/O statistics, page counts, …).
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Snapshot of the I/O statistics.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.pager.stats().snapshot()
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The write-ahead log (substrate for transactional page writes).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Creates a table from its logical schema.
    pub fn create_table(&mut self, schema: Schema) -> Result<()> {
        self.catalog.create(schema)
    }

    /// Drops a table.
    pub fn drop_table(&mut self, table: &str) -> Result<()> {
        self.catalog.drop(table)
    }

    /// Inserts records into a table. If a layout is declared with the eager
    /// or lazy strategy the representation is refreshed on next access; with
    /// the new-data-only strategy the records are kept in a separate
    /// row-oriented buffer that scans merge in.
    pub fn insert(&mut self, table: &str, records: Vec<Record>) -> Result<()> {
        let entry = self.catalog.get_mut(table)?;
        for r in &records {
            entry.schema.validate_record(r)?;
        }
        let has_layout = entry.access.is_some() || entry.layout_expr.is_some();
        entry.records.extend(records.iter().cloned());
        if has_layout {
            entry.pending.extend(records);
            if entry.strategy.absorbs_new_data_on_access() {
                // Invalidate the rendered representation; it is rebuilt on the
                // next access (lazy) — eager rebuilds immediately below.
                entry.access = None;
            }
            if entry.strategy == ReorgStrategy::Eager {
                self.ensure_rendered(table)?;
            }
        }
        Ok(())
    }

    /// Number of logical rows in a table.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        Ok(self.catalog.get(table)?.row_count())
    }

    /// Declares the physical layout of a table using the textual algebra
    /// syntax, with the eager reorganization strategy.
    pub fn apply_layout_text(&mut self, table: &str, expr: &str) -> Result<()> {
        let expr = parse(expr)?;
        self.apply_layout(table, expr, ReorgStrategy::Eager)
    }

    /// Declares the physical layout of a table.
    pub fn apply_layout(
        &mut self,
        table: &str,
        expr: LayoutExpr,
        strategy: ReorgStrategy,
    ) -> Result<()> {
        // Validate against the whole catalog so prejoins across tables work.
        validate::check_with(&expr, &self.catalog.schemas())?;
        {
            let entry = self.catalog.get_mut(table)?;
            entry.layout_expr = Some(expr);
            entry.strategy = strategy;
            entry.access = None;
            entry.pending.clear();
        }
        if strategy.renders_immediately() {
            self.ensure_rendered(table)?;
        }
        Ok(())
    }

    /// Renders the declared layout of `table` if it is not already rendered
    /// (no-op for tables without a declared layout).
    pub fn ensure_rendered(&mut self, table: &str) -> Result<()> {
        let needs_render = {
            let entry = self.catalog.get(table)?;
            entry.layout_expr.is_some()
                && (entry.access.is_none()
                    || (entry.strategy.absorbs_new_data_on_access()
                        && !entry.pending.is_empty()))
        };
        if !needs_render {
            return Ok(());
        }
        let (expr, strategy) = {
            let entry = self.catalog.get(table)?;
            (
                entry.layout_expr.clone().expect("checked above"),
                entry.strategy,
            )
        };
        // Build a provider with every table's canonical records (prejoin may
        // need more than one table). Under the new-data-only strategy, rows
        // inserted after the layout was declared stay in the row buffer and
        // are excluded from the rendered representation.
        let mut provider = MemTableProvider::new();
        for name in self.catalog.table_names() {
            let entry = self.catalog.get(&name)?;
            let mut records = entry.records.clone();
            if name == table && !strategy.absorbs_new_data_on_access() {
                records.truncate(records.len().saturating_sub(entry.pending.len()));
            }
            provider.add(entry.schema.clone(), records);
        }
        let layout = render(
            &expr,
            &provider,
            Arc::clone(&self.pager),
            RenderOptions {
                name: Some(format!("{table}__layout")),
                ..self.render_options.clone()
            },
        )?;
        let access = AccessMethods::with_cost_params(layout, self.cost_params);
        let entry = self.catalog.get_mut(table)?;
        entry.access = Some(access);
        if strategy.absorbs_new_data_on_access() {
            entry.pending.clear();
        }
        Ok(())
    }

    /// Scans a table. Tables without a declared layout are scanned from their
    /// canonical row-major representation; tables with a layout use the
    /// rendered objects (rendering lazily if necessary). Under the
    /// new-data-only strategy, rows inserted after the layout was declared
    /// are merged in from the row buffer.
    pub fn scan(&mut self, table: &str, request: &ScanRequest) -> Result<Vec<Record>> {
        self.ensure_rendered(table)?;
        let entry = self.catalog.get(table)?;
        let mut rows = match &entry.access {
            Some(access) => access.scan(request)?,
            None => scan_canonical(&entry.schema, &entry.records, request)?,
        };
        if entry.access.is_some() && !entry.pending.is_empty() {
            rows.extend(scan_canonical(&entry.schema, &entry.pending, request)?);
        }
        Ok(rows)
    }

    /// Opens a (materialized) cursor over a scan. The facade merges freshly
    /// inserted pending rows into layout scans, so the merged result is
    /// materialized here; use [`AccessMethods::open_cursor`] on a layout
    /// directly for a streaming cursor.
    pub fn open_cursor(&mut self, table: &str, request: &ScanRequest) -> Result<Cursor<'static>> {
        Ok(Cursor::new(self.scan(table, request)?))
    }

    /// Returns the element at `index` of the table's stored representation.
    pub fn get_element(
        &mut self,
        table: &str,
        index: usize,
        fields: Option<&[String]>,
    ) -> Result<Record> {
        self.ensure_rendered(table)?;
        let entry = self.catalog.get(table)?;
        match &entry.access {
            Some(access) => Ok(access.get_element(index, fields)?),
            None => entry
                .records
                .get(index)
                .cloned()
                .map(|r| match fields {
                    Some(fields) => entry
                        .schema
                        .extract(&r, fields)
                        .map_err(RodentError::Algebra),
                    None => Ok(r),
                })
                .transpose()?
                .ok_or_else(|| RodentError::Invalid(format!("element {index} out of range"))),
        }
    }

    /// Estimated cost of a scan in milliseconds (the `scan_cost` access
    /// method). Tables without a rendered layout report a cost proportional
    /// to their canonical size.
    pub fn scan_cost(&mut self, table: &str, request: &ScanRequest) -> Result<f64> {
        self.ensure_rendered(table)?;
        let entry = self.catalog.get(table)?;
        match &entry.access {
            Some(access) => Ok(access.scan_cost(request)?),
            None => {
                let bytes = entry.records.len() as f64
                    * entry.schema.estimated_record_width() as f64;
                Ok(self.cost_params.seek_ms
                    + bytes / (self.cost_params.transfer_mb_per_s * 1024.0 * 1024.0) * 1000.0)
            }
        }
    }

    /// Estimated number of pages a scan would read.
    pub fn scan_pages(&mut self, table: &str, request: &ScanRequest) -> Result<u64> {
        self.ensure_rendered(table)?;
        let entry = self.catalog.get(table)?;
        match &entry.access {
            Some(access) => Ok(access.scan_pages(request)),
            None => Ok(0),
        }
    }

    /// The sort orders the table's current organization is efficient for.
    pub fn order_list(&mut self, table: &str) -> Result<Vec<Vec<rodentstore_algebra::expr::SortKey>>> {
        self.ensure_rendered(table)?;
        let entry = self.catalog.get(table)?;
        Ok(entry
            .access
            .as_ref()
            .map(|a| a.order_list())
            .unwrap_or_default())
    }

    /// Runs the storage design advisor for a table and workload, returning
    /// the recommendation without applying it.
    pub fn recommend_layout(
        &self,
        table: &str,
        workload: &Workload,
        options: &AdvisorOptions,
    ) -> Result<Recommendation> {
        let entry = self.catalog.get(table)?;
        Ok(advise(&entry.schema, &entry.records, workload, options)?)
    }

    /// Runs the advisor and applies the recommended layout eagerly.
    pub fn auto_tune(
        &mut self,
        table: &str,
        workload: &Workload,
        options: &AdvisorOptions,
    ) -> Result<Recommendation> {
        let recommendation = self.recommend_layout(table, workload, options)?;
        self.apply_layout(table, recommendation.best.expr.clone(), ReorgStrategy::Eager)?;
        Ok(recommendation)
    }
}

/// Scans in-memory canonical records (used before any layout is declared and
/// for the new-data-only pending buffer).
fn scan_canonical(
    schema: &Schema,
    records: &[Record],
    request: &ScanRequest,
) -> Result<Vec<Record>> {
    let out_fields: Vec<String> = request
        .fields
        .clone()
        .unwrap_or_else(|| schema.field_names());
    let indices = schema.indices_of(&out_fields)?;
    let mut rows = Vec::new();
    for r in records {
        if let Some(pred) = &request.predicate {
            if !pred.eval(schema, r)? {
                continue;
            }
        }
        rows.push(indices.iter().map(|&i| r[i].clone()).collect());
    }
    if let Some(order) = &request.order {
        let mut key_positions = Vec::new();
        for key in order {
            if let Some(pos) = out_fields.iter().position(|f| *f == key.field) {
                key_positions.push((pos, key.order));
            }
        }
        rows.sort_by(|a: &Record, b: &Record| {
            for (pos, dir) in &key_positions {
                let ord = a[*pos].compare(&b[*pos]);
                let ord = match dir {
                    rodentstore_algebra::expr::SortOrder::Asc => ord,
                    rodentstore_algebra::expr::SortOrder::Desc => ord.reverse(),
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::comprehension::Condition;
    use rodentstore_algebra::schema::Field;
    use rodentstore_algebra::types::DataType;
    use rodentstore_algebra::value::Value;
    use rodentstore_workload::{generate_traces, traces_schema, CartelConfig};

    fn small_db() -> Database {
        let mut db = Database::with_page_size(2048);
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 1_500,
                vehicles: 10,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db
    }

    #[test]
    fn scan_without_layout_uses_canonical_rows() {
        let mut db = small_db();
        let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 1_500);
        let narrow = db
            .scan("Traces", &ScanRequest::all().fields(["lat"]))
            .unwrap();
        assert!(narrow.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn textual_layout_changes_the_physical_representation() {
        let mut db = small_db();
        // Center the query box on a point the table actually contains, so
        // the test does not depend on the exact random stream.
        let (lat0, lon0) = {
            let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
            (rows[750][1].as_f64().unwrap(), rows[750][2].as_f64().unwrap())
        };
        let (lat_lo, lat_hi) = (lat0 - 0.02, lat0 + 0.02);
        let (lon_lo, lon_hi) = (lon0 - 0.025, lon0 + 0.025);
        db.apply_layout_text(
            "Traces",
            "zorder(grid[lat,lon;0.02,0.02](project[lat,lon](Traces)))",
        )
        .unwrap();
        let pred =
            Condition::range("lat", lat_lo, lat_hi).and(Condition::range("lon", lon_lo, lon_hi));
        let rows = db
            .scan("Traces", &ScanRequest::all().predicate(pred.clone()))
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .all(|r| (lat_lo..=lat_hi).contains(&r[0].as_f64().unwrap())));
        // Pruned scans should touch fewer pages than the whole layout.
        let total = db.scan_pages("Traces", &ScanRequest::all()).unwrap();
        let pruned = db
            .scan_pages("Traces", &ScanRequest::all().predicate(pred))
            .unwrap();
        assert!(pruned < total);
    }

    #[test]
    fn lazy_layouts_render_on_first_access() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").columns(["t", "lat", "lon", "id"]),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        // Nothing rendered yet.
        assert!(db.catalog().get("Traces").unwrap().access.is_none());
        db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        assert!(db.catalog().get("Traces").unwrap().access.is_some());
    }

    #[test]
    fn new_data_only_strategy_merges_pending_rows() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        let before = db.scan("Traces", &ScanRequest::all()).unwrap().len();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let after = db.scan("Traces", &ScanRequest::all()).unwrap().len();
        assert_eq!(after, before + 1);
        // The pending row is still buffered, not folded into the layout.
        assert_eq!(db.catalog().get("Traces").unwrap().pending.len(), 1);
    }

    #[test]
    fn eager_strategy_absorbs_inserts() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        assert!(db.catalog().get("Traces").unwrap().pending.is_empty());
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
    }

    #[test]
    fn schema_violations_and_unknown_tables_are_rejected() {
        let mut db = small_db();
        assert!(db.insert("Traces", vec![vec![Value::Int(1)]]).is_err());
        assert!(db.scan("Nope", &ScanRequest::all()).is_err());
        assert!(db
            .apply_layout_text("Traces", "project[altitude](Traces)")
            .is_err());
    }

    #[test]
    fn get_element_and_order_list() {
        let mut db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").order_by(["t"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let first = db.get_element("Traces", 0, None).unwrap();
        assert_eq!(first.len(), 4);
        let orders = db.order_list("Traces").unwrap();
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0][0].field, "t");
    }

    #[test]
    fn auto_tune_applies_a_recommendation() {
        let mut db = Database::with_page_size(1024);
        db.create_table(Schema::new(
            "Points",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
                Field::new("tag", DataType::String),
            ],
        ))
        .unwrap();
        let records: Vec<Record> = (0..800)
            .map(|i| {
                vec![
                    Value::Float((i % 40) as f64),
                    Value::Float((i / 40) as f64),
                    Value::Str(format!("tag{}", i % 5)),
                ]
            })
            .collect();
        db.insert("Points", records).unwrap();
        let workload = Workload::new().query(
            ScanRequest::all()
                .fields(["x", "y"])
                .predicate(Condition::range("x", 3.0, 6.0).and(Condition::range("y", 3.0, 6.0))),
        );
        let options = AdvisorOptions {
            cost_model: rodentstore_optimizer::CostModel {
                sample_size: 800,
                page_size: 512,
                cost_params: CostParams {
                    seek_ms: 0.5,
                    transfer_mb_per_s: 2.0,
                },
            },
            anneal_iterations: 2,
            seed: 3,
        };
        let rec = db.auto_tune("Points", &workload, &options).unwrap();
        assert!(db.catalog().get("Points").unwrap().layout_expr.is_some());
        assert!(rec.explored.len() > 3);
        // The tuned table still answers queries correctly.
        let rows = db
            .scan(
                "Points",
                &ScanRequest::all()
                    .fields(["x", "y"])
                    .predicate(Condition::range("x", 3.0, 6.0)),
            )
            .unwrap();
        assert!(rows.iter().all(|r| (3.0..=6.0).contains(&r[0].as_f64().unwrap())));
    }
}
