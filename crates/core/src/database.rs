//! The RodentStore database façade.

use crate::catalog::Catalog;
use crate::durability::{self, Durability, DurabilityOptions, DurableOp, ManifestContext};
use crate::reorg::ReorgStrategy;
use crate::{Result, RodentError};
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use rodentstore_algebra::expr::{LayoutExpr, SortOrder};
use rodentstore_algebra::parse;
use rodentstore_algebra::schema::Schema;
use rodentstore_algebra::validate;
use rodentstore_algebra::value::Record;
use rodentstore_exec::{AccessMethods, CostParams, Cursor, ScanRequest};
use rodentstore_layout::{
    render, AppendOutcome, MemTableProvider, PhysicalLayout, RenderOptions, StoredIndex,
    StoredObject,
};
use rodentstore_optimizer::{
    advise, advise_with_baseline, AdvisorOptions, Recommendation, Workload,
};
use rodentstore_storage::heap::HeapFile;
use rodentstore_storage::pager::{FileStore, PageStore, Pager};
use rodentstore_storage::stats::IoSnapshot;
use rodentstore_storage::wal::Wal;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Configuration of the closed-loop self-adaptation machinery.
///
/// The loop is: every query is recorded into the table's
/// [`crate::monitor::WorkloadProfile`]; every `check_every` queries (in auto
/// mode) — or whenever [`Database::maybe_adapt`] is called — the profile is
/// fed to the storage design advisor, the recommended design is costed
/// against the *current* design on the same data sample, and the layout is
/// re-declared only when the predicted improvement clears the `hysteresis`
/// threshold. The transition itself goes through the ordinary
/// [`ReorgStrategy`] machinery, so reads stay correct mid-transition.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    /// Run the adaptation check automatically from inside
    /// `scan`/`open_cursor`/`get_element` every `check_every` queries.
    /// When `false`, the profile is still maintained but adaptation only
    /// happens on explicit [`Database::maybe_adapt`] calls.
    pub auto: bool,
    /// Auto mode: queries between adaptation checks.
    pub check_every: u64,
    /// Minimum queries observed on a table before the advisor is consulted
    /// at all (prevents adapting to the first few requests).
    pub min_queries: u64,
    /// Required relative improvement before a new layout is applied: adapt
    /// only if `best_cost < current_cost × (1 − hysteresis)`. Damps
    /// oscillation between near-equal designs.
    pub hysteresis: f64,
    /// Reorganization strategy used for adaptation-driven layout changes.
    pub strategy: ReorgStrategy,
    /// Advisor configuration (cost model, annealing budget, seed).
    pub advisor: AdvisorOptions,
}

impl Default for AdaptivePolicy {
    fn default() -> Self {
        AdaptivePolicy {
            auto: false,
            check_every: 64,
            min_queries: 16,
            hysteresis: 0.15,
            strategy: ReorgStrategy::Eager,
            advisor: AdvisorOptions::default(),
        }
    }
}

/// What an adaptation check decided.
#[derive(Debug, Clone)]
pub enum AdaptOutcome {
    /// Too little traffic observed to trust the profile.
    InsufficientData {
        /// Queries observed so far.
        queries_observed: u64,
    },
    /// The advisor's best design did not beat the current one by more than
    /// the hysteresis threshold (or *was* the current design).
    KeptCurrent {
        /// Predicted workload cost of the current design, in ms
        /// (`f64::INFINITY` when the current design could not be costed).
        current_ms: f64,
        /// Predicted workload cost of the advisor's best design, in ms.
        best_ms: f64,
    },
    /// A better design was found and applied.
    Adapted {
        /// The newly declared layout expression.
        expr: LayoutExpr,
        /// Predicted workload cost of the previous design, in ms.
        from_ms: f64,
        /// Predicted workload cost of the new design, in ms.
        to_ms: f64,
    },
}

/// Runtime configuration knobs (cost model, render options, adaptation
/// policy), grouped behind one lock so `&self` setters stay cheap.
#[derive(Clone, Default)]
struct Config {
    cost_params: CostParams,
    render_options: RenderOptions,
    adaptive: AdaptivePolicy,
}

/// A RodentStore database: a catalog of tables, a shared pager, and the
/// machinery to declare and change physical layouts.
///
/// # Concurrency model
///
/// `Database` is `Send + Sync`: wrap it in an [`Arc`] and share it across
/// threads. Every entry point takes `&self`. The read path (`scan`,
/// `open_cursor`, `get_element`, `scan_cost`, `scan_pages`) holds the
/// catalog **read** lock only long enough to pin a [`TableSnapshot`] —
/// three `Arc` clones — and then serves the query from the snapshot with no
/// lock held, so reads scale across cores. Writers (`insert`,
/// `apply_layout`, `maybe_adapt`, `checkpoint`, `drop_table`) take the
/// catalog **write** lock, swap state wholesale (copy-on-write rows, a
/// fresh layout `Arc`), and never invalidate an in-flight scan: a reader
/// that pinned the previous layout keeps reading it, and its pages are
/// reclaimed only after the last pin drops (see the graveyard below).
///
/// Lock hierarchy (outer to inner): catalog `RwLock` → per-table profile
/// mutex / graveyard mutex → storage-level locks (WAL state, heap files,
/// pager). The expensive half of adaptation — the advisor search — runs
/// with *no* lock held; only the final re-render holds the write lock.
pub struct Database {
    catalog: RwLock<Catalog>,
    pager: Arc<Pager>,
    wal: Wal,
    config: RwLock<Config>,
    durability: Option<Durability>,
    /// Superseded layouts whose pages cannot be reused yet because a reader
    /// still pins them. Reaped (pages handed to [`Database::quarantine`])
    /// by the next writer once the last pin drops.
    graveyard: Mutex<Vec<Arc<AccessMethods>>>,
    /// Durable databases only: pages freed since the last checkpoint. They
    /// must not be reallocated until the *next* checkpoint writes a
    /// manifest that no longer references them — a crash before that would
    /// make `open` reattach manifest extents whose pages were reused and
    /// overwritten. In-memory databases bypass this (no recovery to
    /// protect) and free straight to the pager.
    pending_free: Mutex<Vec<rodentstore_storage::PageId>>,
    /// Fences durable insert commit windows against checkpoints. An insert
    /// holds the *read* side from before it applies until its commit
    /// resolves (acknowledged or rolled back); a checkpoint holds the
    /// *write* side, so it never cuts a manifest while an applied-but-
    /// unresolved insert is in flight — a commit that later failed would
    /// otherwise be persisted by the manifest and resurrect on recovery.
    /// Also serializes checkpoints. Lock order: fence before catalog.
    commit_fence: RwLock<()>,
    /// True while [`Database::open`] replays the WAL tail: mutations must
    /// not be re-logged, but the database already counts as durable (so
    /// freed pages are quarantined, not reused — the manifest being
    /// replayed against may still reference them).
    replaying: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.read().table_names())
            .field("pages", &self.pager.page_count())
            .finish()
    }
}

/// A pinned, immutable view of one table at a point in time: the canonical
/// rows, the pending buffer, and the rendered layout as they were when the
/// snapshot was taken. Produced by [`Database::snapshot`]; queries served
/// from a snapshot hold **no** database lock, and concurrent layout swaps,
/// inserts, or checkpoints never affect it — this is what keeps scans
/// consistent while the system adapts underneath them.
pub struct TableSnapshot {
    schema: Schema,
    records: Arc<Vec<Record>>,
    pending: Arc<Vec<Record>>,
    access: Option<Arc<AccessMethods>>,
    cost_params: CostParams,
}

impl Database {
    /// Creates an in-memory database with the default (16 KiB) page size.
    pub fn in_memory() -> Database {
        Database::with_pager(Arc::new(Pager::in_memory()))
    }

    /// Creates an in-memory database with an explicit page size.
    pub fn with_page_size(page_size: usize) -> Database {
        Database::with_pager(Arc::new(Pager::in_memory_with_page_size(page_size)))
    }

    /// Creates a database over an arbitrary pager (e.g. file-backed).
    pub fn with_pager(pager: Arc<Pager>) -> Database {
        Database {
            catalog: RwLock::new(Catalog::new()),
            pager,
            wal: Wal::new(),
            config: RwLock::new(Config::default()),
            durability: None,
            graveyard: Mutex::new(Vec::new()),
            pending_free: Mutex::new(Vec::new()),
            commit_fence: RwLock::new(()),
            replaying: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Creates (or resets) a durable database in directory `dir` with the
    /// default [`DurabilityOptions`] (16 KiB pages, group commit). Three
    /// files are created: `data.rodent` (pages, with a validated
    /// superblock), `wal.rodent` (the write-ahead log), and
    /// `manifest.rodent` (the catalog checkpoint). Every mutation is logged
    /// through the WAL before pages are touched; call
    /// [`Database::checkpoint`] to bound the log, and [`Database::open`] to
    /// come back after a restart or crash.
    pub fn create(dir: impl AsRef<Path>) -> Result<Database> {
        Database::create_with(dir, DurabilityOptions::default())
    }

    /// [`Database::create`] with explicit page size and sync policy.
    pub fn create_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| RodentError::Storage(rodentstore_storage::StorageError::Io(e)))?;
        let (data_path, wal_path, manifest_path) = durability::db_paths(&dir);
        // Resetting an existing database: remove its manifest *before*
        // truncating the data/WAL files. A crash mid-create then leaves a
        // directory that cleanly fails to open (no manifest), never an old
        // manifest pointing page extents into an emptied data file.
        if manifest_path.exists() {
            std::fs::remove_file(&manifest_path)
                .map_err(|e| RodentError::Storage(rodentstore_storage::StorageError::Io(e)))?;
        }
        let store = Arc::new(
            FileStore::create(&data_path, options.page_size).map_err(RodentError::Storage)?,
        );
        let pager = Arc::new(Pager::with_store(
            Arc::clone(&store) as Arc<dyn PageStore>
        ));
        let mut db = Database::with_pager(pager);
        db.wal = Wal::create(&wal_path, options.sync).map_err(RodentError::Storage)?;
        // An initial (empty) manifest makes the directory openable even if
        // the process dies before the first checkpoint.
        let config = db.config.read().clone();
        let manifest = durability::encode_manifest(
            &db.catalog.read(),
            &ManifestContext {
                page_size: options.page_size,
                page_count: 0,
                replay_from_lsn: 0,
                free_pages: Vec::new(),
                policy: config.adaptive,
                cost_params: config.cost_params,
            },
        )?;
        durability::write_manifest_file(&dir, &manifest)?;
        db.durability = Some(Durability { dir });
        Ok(db)
    }

    /// Opens a durable database directory: validates the data file's
    /// superblock against the manifest, reattaches every rendered layout
    /// from its persisted page extents (**no re-rendering**), restores each
    /// table's workload profile and layout statistics, discards data pages
    /// written after the last checkpoint, and replays the WAL tail —
    /// committed transactions win, torn or corrupt tails are discarded.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        Database::open_with(dir, DurabilityOptions::default())
    }

    /// [`Database::open`] with an explicit sync policy for future commits
    /// (the page size always comes from the manifest).
    pub fn open_with(dir: impl AsRef<Path>, options: DurabilityOptions) -> Result<Database> {
        let dir = dir.as_ref().to_path_buf();
        let (data_path, wal_path, _) = durability::db_paths(&dir);
        let manifest = durability::decode_manifest(&durability::read_manifest_file(&dir)?)?;
        let store = Arc::new(
            FileStore::open_expecting(&data_path, manifest.page_size)
                .map_err(RodentError::Storage)?,
        );
        // Pages written after the checkpoint are not described by the
        // manifest; drop them — the WAL replay below re-derives their
        // contents from the logged logical operations.
        store
            .truncate(manifest.page_count)
            .map_err(RodentError::Storage)?;
        let pager = Arc::new(Pager::with_store(
            Arc::clone(&store) as Arc<dyn PageStore>
        ));
        // The checkpointed free list becomes usable again the moment the
        // data file is truncated back to the checkpoint: pages retired
        // before the checkpoint are dead (or were pinned by readers that no
        // longer exist), so WAL replay below may re-render into them.
        pager.restore_free_list(manifest.free_pages.iter().copied());
        let mut db = Database::with_pager(Arc::clone(&pager));
        *db.config.write() = Config {
            cost_params: manifest.cost_params,
            adaptive: manifest.policy.clone(),
            render_options: RenderOptions::default(),
        };
        let cost_params = manifest.cost_params;

        let mut pending_indexes: Vec<(String, durability::IndexManifest)> = Vec::new();
        let mut orphaned_index_pages: Vec<rodentstore_storage::PageId> = Vec::new();
        {
            let mut catalog = db.catalog.write();
            // Pass 1: every table's schema, rows, profile, and counters.
            let mut rendered = Vec::new();
            for table in manifest.tables {
                let name = table.schema.name().to_string();
                catalog.create(table.schema)?;
                let entry = catalog.get_mut(&name)?;
                entry.strategy = table.strategy;
                entry.records = Arc::new(table.records);
                entry.pending = Arc::new(table.pending);
                entry.profile = Mutex::new(table.profile.into_profile());
                entry.stats = table.stats;
                if let Some(expr_text) = table.layout_expr {
                    entry.layout_expr = Some(parse(&expr_text)?);
                }
                if let Some(r) = table.rendered {
                    rendered.push((name, r));
                }
            }
            // Pass 2: reattach rendered layouts (after *all* schemas exist,
            // so multi-table expressions like prejoin validate).
            let schemas = catalog.schemas();
            for (name, r) in rendered {
                let expr = catalog
                    .get(&name)?
                    .layout_expr
                    .clone()
                    .ok_or_else(|| {
                        RodentError::Invalid(format!(
                            "manifest has a rendered layout for `{name}` but no expression"
                        ))
                    })?;
                let mut derived = validate::check_with(&expr, &schemas)?;
                // Incremental appends clear native-order claims; restore
                // what was actually true at checkpoint time, not what the
                // expression would promise after a fresh render.
                derived.orderings = r.orderings;
                let schema = derived.schema.clone();
                let objects: Vec<StoredObject> = r
                    .objects
                    .into_iter()
                    .map(|o| {
                        // Reopen each object's last page as a refillable
                        // tail; orphan slots from discarded post-checkpoint
                        // appends are cut before replay re-applies them.
                        let heap = HeapFile::from_pages_with_tail(
                            o.name.clone(),
                            Arc::clone(&pager),
                            o.pages,
                            o.heap_records,
                            o.tail_valid_slots,
                        )
                        .map_err(RodentError::Storage)?;
                        Ok(StoredObject {
                            heap,
                            name: o.name,
                            fields: o.fields,
                            encoding: o.encoding,
                            codecs: o.codecs.into_iter().collect(),
                            cell: o.cell,
                            row_count: o.row_count as usize,
                            ordering: o.ordering,
                        })
                    })
                    .collect::<Result<_>>()?;
                let layout = PhysicalLayout::new(
                    r.name,
                    expr,
                    schema,
                    derived,
                    objects,
                    r.row_count as usize,
                    Arc::clone(&pager),
                );
                let entry = catalog.get_mut(&name)?;
                entry.access = Some(Arc::new(AccessMethods::with_cost_params(
                    layout,
                    cost_params,
                )));
                if let Some(im) = r.index {
                    pending_indexes.push((name, im));
                }
            }

            // Reattach declared indexes. The checkpointed tree content is
            // trustworthy because post-checkpoint maintenance never mutates
            // manifest-referenced tree pages in place — it rebuilds into
            // fresh ones (see `StoredIndex::protect`), and those fresh pages
            // were truncated away above. `from_parts` reattaches protected,
            // so replayed appends below relocate the tree before touching
            // it. If an index cannot be attached (the manifest disagrees
            // with the declared layout), its pages are quarantined and the
            // fallback after replay rebuilds from the recovered heaps.
            for (name, im) in pending_indexes {
                let manifest_pages = im.pages.clone();
                let attached = (|| -> Result<bool> {
                    let Ok(entry) = catalog.get_mut(&name) else {
                        return Ok(false);
                    };
                    let Some(access) = entry.access.as_mut() else {
                        return Ok(false);
                    };
                    if access.layout().index.is_some()
                        || access.layout().derived.index.as_deref() != Some(&im.fields[..])
                    {
                        return Ok(false);
                    }
                    let idx = StoredIndex::from_parts(
                        Arc::clone(&pager),
                        &im.kind,
                        im.fields,
                        im.key_kinds,
                        im.root,
                        im.len,
                        im.height as usize,
                        im.outliers,
                    )
                    .map_err(RodentError::Layout)?;
                    if let Some(a) = Arc::get_mut(access) {
                        a.layout_mut().index = Some(idx);
                        return Ok(true);
                    }
                    Ok(false)
                })()?;
                if !attached {
                    orphaned_index_pages.extend(manifest_pages);
                }
            }
        }

        // Replay the WAL tail past the checkpoint. The `replaying` flag
        // suppresses re-logging, while `durability` is already set so that
        // pages freed by replayed layout swaps are *quarantined* — the
        // manifest we just reattached from still references them, and a
        // crash during or after replay (before the next checkpoint) must
        // find them intact.
        db.wal = Wal::open(&wal_path, options.sync).map_err(RodentError::Storage)?;
        db.durability = Some(Durability { dir });
        // Manifest tree pages that could not be reattached: the on-disk
        // manifest still references them until the next checkpoint, so they
        // quarantine rather than free.
        db.quarantine(std::mem::take(&mut orphaned_index_pages));
        db.replaying.store(true, Ordering::SeqCst);
        for (lsn, _tx, payload) in db.wal.committed_ops().map_err(RodentError::Storage)? {
            if lsn < manifest.replay_from_lsn {
                continue;
            }
            let op = DurableOp::decode(&payload)?;
            db.apply_op(op)?;
        }
        db.replaying.store(false, Ordering::SeqCst);

        // Fallback: anything still indexless but declared indexed (the
        // manifest disagreed with the declared layout above) rebuilds from
        // the recovered stored objects.
        {
            let mut catalog = db.catalog.write();
            for name in catalog.table_names() {
                let entry = catalog.get_mut(&name)?;
                if let Some(access) = entry.access.as_mut() {
                    if access.layout().derived.index.is_some()
                        && access.layout().index.is_none()
                    {
                        if let Some(a) = Arc::get_mut(access) {
                            a.layout_mut().rebuild_index().map_err(RodentError::Layout)?;
                        }
                    }
                }
            }
        }
        Ok(db)
    }

    /// Whether this database is file-backed (created via
    /// [`Database::create`]/[`Database::open`]).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Checkpoints a durable database: flushes every rendered object's tail
    /// page, syncs the data file, atomically rewrites the manifest (catalog,
    /// canonical rows, layout page extents, workload profiles, the free-page
    /// list, and the adaptive policy / cost parameters), and truncates the
    /// WAL. After a checkpoint, [`Database::open`] needs no replay and no
    /// re-rendering. Errors on in-memory databases.
    ///
    /// Holds the catalog **read** lock for the duration (the checkpoint
    /// only reads the catalog; heap flushes and the free list use interior
    /// mutability), so writers are excluded — the manifest is a consistent
    /// cut — while readers keep pinning snapshots and are never stalled
    /// behind the checkpoint's fsyncs. A dedicated mutex serializes
    /// concurrent checkpoints.
    pub fn checkpoint(&self) -> Result<()> {
        let dir = match &self.durability {
            Some(d) => d.dir.clone(),
            None => {
                return Err(RodentError::Invalid(
                    "checkpoint requires a durable database (Database::create/open)".into(),
                ))
            }
        };
        // The fence's write side waits for every in-flight insert commit to
        // resolve and blocks new ones (it also serializes checkpoints); the
        // catalog read guard then excludes writers, so the cut is
        // consistent *including* commit outcomes.
        let _fence = self.commit_fence.write();
        let catalog = self.catalog.read();
        self.reap_graveyard();
        // Write out partially filled heap tails so every page extent is
        // complete (tails stay open: later appends keep refilling them, and
        // the manifest records their valid slot counts), then *protect*
        // each tail: once the manifest references it, it is never
        // rewritten in place — the next append relocates it. Pages already
        // superseded by earlier relocations join the quarantine *before*
        // the snapshot below, so a checkpoint that fails later cannot lose
        // track of them — they simply wait for the next attempt.
        {
            let mut pending = self.pending_free.lock();
            for name in catalog.table_names() {
                if let Some(access) = &catalog.get(&name)?.access {
                    for obj in &access.layout().objects {
                        obj.heap.flush().map_err(RodentError::Storage)?;
                        obj.heap.protect_tail();
                        pending.extend(obj.heap.take_relocated());
                    }
                    // Index trees get the same treatment at whole-tree
                    // granularity: the manifest below references the current
                    // pages, so the next maintenance rebuilds into fresh ones
                    // and the vacated pages quarantine here next time.
                    if let Some(idx) = &access.layout().index {
                        pending.extend(idx.take_relocated());
                        idx.protect();
                    }
                }
            }
            // Relocated pages of retired-but-pinned layouts are dead too
            // (no reader references them — relocation only happens on
            // unpinned layouts); same quarantine route.
            for retired in self.graveyard.lock().iter() {
                for obj in &retired.layout().objects {
                    pending.extend(obj.heap.take_relocated());
                }
                if let Some(idx) = &retired.layout().index {
                    pending.extend(idx.take_relocated());
                }
            }
        }
        self.pager.sync().map_err(RodentError::Storage)?;
        let replay_from = self.wal.next_lsn();
        // The manifest's free list: pages free right now, plus everything
        // quarantined since the last checkpoint (this manifest is the one
        // that stops referencing them), plus the extents of retired layouts
        // still pinned by in-flight readers — pins cannot survive a
        // restart, so after recovery those pages are genuinely free (and
        // do not leak across restarts).
        let quarantined = self.pending_free.lock().clone();
        let mut free_pages = self.pager.free_list();
        free_pages.extend(quarantined.iter().copied());
        for retired in self.graveyard.lock().iter() {
            for obj in &retired.layout().objects {
                free_pages.extend(obj.heap.extent());
            }
            free_pages.extend(retired_index_pages(retired.layout()));
        }
        free_pages.sort_unstable();
        free_pages.dedup();
        let config = self.config.read().clone();
        let manifest = durability::encode_manifest(
            &catalog,
            &ManifestContext {
                page_size: self.pager.page_size(),
                page_count: self.pager.page_count(),
                replay_from_lsn: replay_from,
                free_pages,
                policy: config.adaptive,
                cost_params: config.cost_params,
            },
        )?;
        durability::write_manifest_file(&dir, &manifest)?;
        // The manifest on disk no longer references the quarantined pages:
        // they are now safe to reallocate. `quarantine` only appends and
        // checkpoints are serialized, so the snapshot taken above is
        // exactly the current prefix of the list — pages quarantined
        // *during* the manifest write stay behind for the next checkpoint.
        self.pending_free.lock().drain(..quarantined.len());
        self.pager.free_pages(quarantined);
        if let Some(last) = self.wal.last_lsn() {
            self.wal.truncate(last).map_err(RodentError::Storage)?;
        }
        Ok(())
    }

    /// Moves a superseded rendering to the graveyard: its pages are
    /// reclaimed by [`Database::reap_graveyard`] once no reader pins it.
    fn retire(&self, access: Arc<AccessMethods>) {
        self.graveyard.lock().push(access);
    }

    /// Hands freed pages toward reuse. In-memory databases free straight to
    /// the pager; durable databases quarantine them until the next
    /// checkpoint, because the last on-disk manifest may still reference
    /// them as live extents — reusing such a page before a new manifest
    /// lands would make crash recovery reattach a layout over overwritten
    /// bytes.
    fn quarantine(&self, pages: Vec<rodentstore_storage::PageId>) {
        if self.durability.is_some() {
            self.pending_free.lock().extend(pages);
        } else {
            self.pager.free_pages(pages);
        }
    }

    /// Frees the pages of retired layouts whose last reader pin has
    /// dropped. Called opportunistically from every write path; cheap when
    /// the graveyard is empty.
    fn reap_graveyard(&self) {
        let mut reclaimed = Vec::new();
        {
            let mut graveyard = self.graveyard.lock();
            graveyard.retain(|retired| {
                if Arc::strong_count(retired) > 1 {
                    return true; // still pinned by an in-flight reader
                }
                for obj in &retired.layout().objects {
                    reclaimed.extend(obj.heap.extent());
                    reclaimed.extend(obj.heap.take_relocated());
                }
                reclaimed.extend(retired_index_pages(retired.layout()));
                false
            });
        }
        if !reclaimed.is_empty() {
            self.quarantine(reclaimed);
        }
    }

    /// Writes a mutation's op record to the WAL (no-op for in-memory
    /// databases — the payload closure is never even evaluated, so the
    /// default mode pays no serialization cost). Called *before* the
    /// mutation touches the catalog or any page — the write-ahead rule. The
    /// transaction is left open; pass the returned id to
    /// [`Database::log_op_finish`] with the mutation's outcome, so an op
    /// whose apply step fails is recorded as aborted and recovery replay
    /// skips it instead of re-failing on it forever.
    fn log_op_begin(
        &self,
        payload: impl FnOnce() -> Vec<u8>,
    ) -> Result<Option<rodentstore_storage::TxId>> {
        if self.durability.is_none() || self.replaying.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let tx = self.wal.begin().map_err(RodentError::Storage)?;
        self.wal.log_op(tx, &payload()).map_err(RodentError::Storage)?;
        Ok(Some(tx))
    }

    /// Commits the transaction opened by [`Database::log_op_begin`].
    /// Durability is acknowledged at commit time per the configured
    /// [`rodentstore_storage::SyncPolicy`]; a crash (or write failure)
    /// before the commit record lands makes the op invisible to replay, so
    /// callers whose mutation already applied must roll it back on error —
    /// otherwise live state would diverge from both the reported error and
    /// the recovered state.
    fn log_op_commit(&self, tx: Option<rodentstore_storage::TxId>) -> Result<()> {
        if let Some(tx) = tx {
            self.wal.commit(tx).map_err(RodentError::Storage)?;
        }
        Ok(())
    }

    /// Marks the transaction aborted after its mutation failed (or, as a
    /// *compensation*, after its commit record's sync failed — aborts void
    /// a transaction even when a commit record exists). Best effort: if the
    /// abort record cannot be written, the op simply stays uncommitted,
    /// which replay treats identically in the no-commit case. The sync
    /// pushes the abort toward disk so a commit record that landed before
    /// its own failed sync is voided durably, not just in the page cache —
    /// if that sync fails too, the storage is already failing and the
    /// narrow commit-persists-abort-doesn't window is irreducible.
    fn log_op_abort(&self, tx: Option<rodentstore_storage::TxId>) {
        if let Some(tx) = tx {
            let _ = self.wal.abort(tx);
            let _ = self.wal.sync();
        }
    }

    /// Re-executes a logged operation during recovery (through the same
    /// unlogged mutation paths normal operation uses).
    fn apply_op(&self, op: DurableOp) -> Result<()> {
        match op {
            DurableOp::CreateTable(schema) => self.catalog.write().create(schema),
            DurableOp::DropTable(table) => {
                let mut catalog = self.catalog.write();
                if let Ok(entry) = catalog.get_mut(&table) {
                    if let Some(access) = entry.access.take() {
                        self.retire(access);
                    }
                }
                Catalog::drop(&mut catalog, &table)
            }
            DurableOp::Insert { table, rows } => {
                let mut catalog = self.catalog.write();
                self.insert_locked(&mut catalog, &table, rows)
            }
            DurableOp::ApplyLayout {
                table,
                expr,
                strategy,
                adapted,
            } => {
                let parsed = parse(&expr)?;
                let mut catalog = self.catalog.write();
                self.apply_layout_locked(&mut catalog, &table, parsed, strategy, None)?;
                if adapted {
                    catalog.get_mut(&table)?.stats.adaptations += 1;
                }
                Ok(())
            }
        }
    }

    /// Overrides the disk-model parameters used for cost estimates.
    pub fn set_cost_params(&self, cost_params: CostParams) {
        self.config.write().cost_params = cost_params;
    }

    /// Replaces the self-adaptation policy.
    pub fn set_adaptive_policy(&self, policy: AdaptivePolicy) {
        self.config.write().adaptive = policy;
    }

    /// The current self-adaptation policy.
    pub fn adaptive_policy(&self) -> AdaptivePolicy {
        self.config.read().adaptive.clone()
    }

    /// Switches automatic adaptation on or off (keeping the rest of the
    /// policy unchanged). With auto mode on, every `check_every`-th query
    /// against a table runs the advisor over that table's live workload
    /// profile and re-declares the layout when the predicted improvement
    /// clears the hysteresis threshold — no manual `advise`/`apply_layout`
    /// calls needed.
    pub fn set_auto_adapt(&self, auto: bool) {
        self.config.write().adaptive.auto = auto;
    }

    /// The shared pager (for I/O statistics, page counts, …).
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Snapshot of the I/O statistics.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.pager.stats().snapshot()
    }

    /// A read-locked view of the catalog. The guard derefs to [`Catalog`];
    /// hold it only briefly — writers (inserts, layout changes,
    /// checkpoints) block while it is alive.
    pub fn catalog(&self) -> RwLockReadGuard<'_, Catalog> {
        self.catalog.read()
    }

    /// The write-ahead log (substrate for transactional page writes).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Creates a table from its logical schema.
    pub fn create_table(&self, schema: Schema) -> Result<()> {
        let mut catalog = self.catalog.write();
        if catalog.get(schema.name()).is_ok() {
            return Err(RodentError::TableExists(schema.name().to_string()));
        }
        // Commit before applying: the catalog insert cannot fail after the
        // existence pre-check, so a commit-record failure leaves nothing
        // applied (and a crash after the commit is healed by replay). A
        // failed commit is compensated with an abort so a commit record
        // that landed before its sync failed cannot replay a table the
        // caller was told does not exist.
        let tx = self.log_op_begin(|| durability::encode_create_table(&schema))?;
        if let Err(e) = self.log_op_commit(tx) {
            self.log_op_abort(tx);
            return Err(e);
        }
        catalog.create(schema)
    }

    /// Drops a table. Its rendered pages are returned to the pager's free
    /// list for reuse once no in-flight reader pins them.
    pub fn drop_table(&self, table: &str) -> Result<()> {
        let mut catalog = self.catalog.write();
        self.reap_graveyard();
        catalog.get(table)?;
        // Commit-before-apply, as in `create_table`: the drop is infallible
        // after the existence pre-check (and a failed commit is compensated
        // with an abort, as there).
        let tx = self.log_op_begin(|| durability::encode_drop_table(table))?;
        if let Err(e) = self.log_op_commit(tx) {
            self.log_op_abort(tx);
            return Err(e);
        }
        if let Some(access) = catalog.get_mut(table)?.access.take() {
            self.retire(access);
        }
        Catalog::drop(&mut catalog, table)
    }

    /// Inserts records into a table. If a layout is declared with the eager
    /// strategy, the rows are absorbed into the rendered representation
    /// immediately — *incrementally* where the layout shape allows (new heap
    /// records, column blocks, grid cells, or per-group vertical rows
    /// appended in place), falling back to a full re-render only for shapes
    /// that cannot take appends (fold, prejoin, limit). The lazy strategy defers the
    /// same absorption to the next access; with the new-data-only strategy
    /// the records are kept in a separate row-oriented buffer that scans
    /// merge in.
    ///
    /// On a durable database the rows are committed to the WAL *before* the
    /// catalog or any page is touched (write-ahead logging); how quickly the
    /// commit reaches the disk platter is governed by the
    /// [`rodentstore_storage::SyncPolicy`] chosen at create/open time.
    pub fn insert(&self, table: &str, records: Vec<Record>) -> Result<()> {
        let inserted = records.len();
        // Durable inserts hold the commit fence (shared side) from before
        // the rows apply until the commit resolves, so a checkpoint can
        // never persist rows whose commit might still fail and roll back.
        // Acquired before the catalog lock (global order: fence → catalog);
        // uncontended except while a checkpoint runs.
        let _fence = self
            .durability
            .is_some()
            .then(|| self.commit_fence.read());
        let (tx, records_before, queue) = {
            let mut catalog = self.catalog.write();
            self.reap_graveyard();
            let entry = catalog.get(table)?;
            for r in &records {
                entry.schema.validate_record(r)?;
            }
            let records_before = entry.records.len();
            let tx = self.log_op_begin(|| durability::encode_insert(table, &records))?;
            if let Err(e) = self.insert_locked(&mut catalog, table, records) {
                self.log_op_abort(tx);
                return Err(e);
            }
            // Durable inserts resolve in apply order (see `CommitQueue`):
            // take the ticket while still holding the write lock, so ticket
            // order ≡ row-position order.
            let queue = tx.map(|_| {
                let entry = catalog.get(table).expect("applied above");
                let queue = Arc::clone(&entry.commit_queue);
                let (ticket, removed_at_apply) = queue.take_ticket();
                (queue, ticket, removed_at_apply)
            });
            (tx, records_before, queue)
        };
        // Commit *outside* the catalog write lock: under durable policies
        // the commit can fsync (and, with `SyncPolicy::GroupDurable`, park
        // on a shared fsync with other committers) — readers must not be
        // blocked behind the disk, and parked committers must not hold the
        // lock. WAL replay order still matches application order because op
        // records are appended while the write lock is held.
        let commit_result = self.log_op_commit(tx);
        if let Some((queue, ticket, removed_at_apply)) = queue {
            // Resolve in apply order: every earlier insert has confirmed or
            // rolled back by now, and `removed_since` rows — all positioned
            // before ours — are gone, shifting our rows down by exactly
            // that much.
            let removed_since = queue.await_turn(ticket, removed_at_apply);
            match &commit_result {
                // No rows removed: finishing outside the catalog lock is
                // safe, racing `take_ticket`s see an unchanged counter.
                Ok(()) => queue.finish(ticket, 0),
                Err(_) => {
                    // The commit's sync failed — but its *record* may have
                    // reached the log before the failure, and could still
                    // become durable. Compensate with an abort record
                    // (aborts void a transaction even after a commit
                    // record), then roll the live state back to match what
                    // recovery will now replay. The rollback finishes the
                    // ticket itself, *inside* the catalog write lock.
                    self.log_op_abort(tx);
                    let start = records_before.saturating_sub(removed_since as usize);
                    self.rollback_insert(table, start, inserted, &queue, ticket);
                }
            }
        }
        commit_result
    }

    /// Removes the `count` rows starting at `start` from a table's live
    /// state after their commit record failed to land, then finishes the
    /// caller's [`crate::catalog::CommitQueue`] ticket. The caller owns the
    /// resolution turn, so `start` (already adjusted for earlier rollbacks)
    /// is exact; the finish happens *while the catalog write lock is still
    /// held*, so a racing insert taking its ticket under that lock sees the
    /// row removal and the queue's `removed` counter move together — never
    /// one without the other. The rendering is discarded only when it
    /// already absorbed the doomed rows (pending rows are a suffix of the
    /// canonical rows — rows still pending were never rendered).
    fn rollback_insert(
        &self,
        table: &str,
        start: usize,
        count: usize,
        queue: &Arc<crate::catalog::CommitQueue>,
        ticket: u64,
    ) {
        let mut catalog = self.catalog.write();
        let removed = 'remove: {
            let Ok(entry) = catalog.get_mut(table) else {
                break 'remove 0; // table dropped meanwhile; rows went with it
            };
            // Same name is not enough: the table may have been dropped and
            // recreated while our commit was in flight, and the new entry's
            // rows are not ours to drain. The commit queue is per-entry, so
            // pointer identity tells the two apart.
            if !Arc::ptr_eq(&entry.commit_queue, queue) {
                break 'remove 0; // our table is gone; rows went with it
            }
            let len = entry.records.len();
            if start + count > len {
                // Unreachable while resolution order holds; never panic on
                // the error path (the commit failure is already reported).
                debug_assert!(false, "rollback window [{start}, +{count}) exceeds {len} rows");
                break 'remove 0;
            }
            let pending_start = len - entry.pending.len();
            entry.records_mut().drain(start..start + count);
            if start >= pending_start {
                let offset = start - pending_start;
                entry.pending_mut().drain(offset..offset + count);
            } else if let Some(access) = entry.access.take() {
                // The rendering absorbed the doomed rows; discard it. The
                // next access re-renders from the canonical rows, which now
                // match exactly what recovery would replay.
                self.retire(access);
            }
            count as u64
        };
        queue.finish(ticket, removed);
        drop(catalog);
    }

    /// The mutation half of [`Database::insert`]: validation and WAL logging
    /// already happened (or are skipped — recovery replay trusts the log).
    /// The caller holds the catalog write lock.
    ///
    /// If eager absorption fails (e.g. a record too large for the page
    /// size), the canonical rows and pending buffer are rolled back and the
    /// (possibly partially appended) rendering is invalidated, so the table
    /// stays usable — the next access re-renders from the clean canonical
    /// state, and the WAL records the transaction as aborted.
    fn insert_locked(
        &self,
        catalog: &mut Catalog,
        table: &str,
        records: Vec<Record>,
    ) -> Result<()> {
        let entry = catalog.get_mut(table)?;
        let has_layout = entry.access.is_some() || entry.layout_expr.is_some();
        let records_before = entry.records.len();
        let pending_before = entry.pending.len();
        entry.records_mut().extend(records.iter().cloned());
        if has_layout {
            entry.pending_mut().extend(records);
            if entry.strategy == ReorgStrategy::Eager {
                if let Err(e) = self.render_or_absorb_locked(catalog, table) {
                    let entry = catalog.get_mut(table)?;
                    entry.records_mut().truncate(records_before);
                    entry.pending_mut().truncate(pending_before);
                    if let Some(access) = entry.access.take() {
                        self.retire(access);
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Number of logical rows in a table.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        Ok(self.catalog.read().get(table)?.row_count())
    }

    /// Declares the physical layout of a table using the textual algebra
    /// syntax, with the eager reorganization strategy.
    pub fn apply_layout_text(&self, table: &str, expr: &str) -> Result<()> {
        let expr = parse(expr)?;
        self.apply_layout(table, expr, ReorgStrategy::Eager)
    }

    /// Declares the physical layout of a table. Holds the catalog write
    /// lock through the render; scans pinned to the previous layout finish
    /// against it, and its pages are reclaimed once the last pin drops.
    pub fn apply_layout(
        &self,
        table: &str,
        expr: LayoutExpr,
        strategy: ReorgStrategy,
    ) -> Result<()> {
        let mut catalog = self.catalog.write();
        self.reap_graveyard();
        // Validate against the whole catalog so prejoins across tables work
        // — and so invalid expressions are rejected *before* they are logged.
        validate::check_with(&expr, &catalog.schemas())?;
        catalog.get(table)?;
        let tx = self.log_op_begin(|| {
            durability::encode_apply_layout(table, &expr.to_string(), strategy, false)
        })?;
        self.apply_layout_locked(&mut catalog, table, expr, strategy, tx)
    }

    /// Applies a layout and commits its already-written WAL op record (the
    /// caller holds the catalog write lock). If the eager render fails — or
    /// the commit record cannot be written — the previous layout state
    /// (expression, strategy, rendering, pending buffer) is restored
    /// wholesale, so the live catalog matches both what the caller observed
    /// (an error) and what recovery would replay (an aborted or absent op).
    fn apply_layout_locked(
        &self,
        catalog: &mut Catalog,
        table: &str,
        expr: LayoutExpr,
        strategy: ReorgStrategy,
        tx: Option<rodentstore_storage::TxId>,
    ) -> Result<()> {
        let (prev_expr, prev_strategy, prev_access, prev_pending) = {
            let entry = catalog.get_mut(table)?;
            let prev = (
                entry.layout_expr.take(),
                entry.strategy,
                entry.access.take(),
                std::mem::replace(&mut entry.pending, Arc::new(Vec::new())),
            );
            entry.layout_expr = Some(expr);
            entry.strategy = strategy;
            prev
        };
        let failure = if strategy.renders_immediately() {
            self.render_or_absorb_locked(catalog, table).err()
        } else {
            None
        };
        let failure = match failure {
            Some(e) => {
                self.log_op_abort(tx);
                Some(e)
            }
            None => self.log_op_commit(tx).err().map(|e| {
                // The commit record may have landed before its sync failed;
                // a compensating abort keeps replay from resurrecting the
                // layout change we are about to undo.
                self.log_op_abort(tx);
                e
            }),
        };
        let entry = catalog.get_mut(table)?;
        if let Some(e) = failure {
            if let Some(new_access) = entry.access.take() {
                self.retire(new_access); // the failed declaration's render
            }
            entry.layout_expr = prev_expr;
            entry.strategy = prev_strategy;
            entry.access = prev_access;
            entry.pending = prev_pending;
            return Err(e);
        }
        if let Some(old_access) = prev_access {
            self.retire(old_access); // superseded rendering → free list
        }
        Ok(())
    }

    /// Renders the declared layout of `table` if it is not already rendered,
    /// or absorbs pending inserts into the existing rendering (no-op for
    /// tables without a declared layout).
    ///
    /// Absorption is incremental whenever the layout shape allows it: the
    /// pending rows are pipelined (selection, projection, …) and appended to
    /// the existing stored objects — new heap records for row layouts, new
    /// column blocks for columnar ones, routed into (possibly new) cells for
    /// grids, projected onto every field group for vertical partitions. Only
    /// shapes whose invariants cannot be maintained row-at-a-time (fold,
    /// prejoin, limit) fall back to a full re-render.
    pub fn ensure_rendered(&self, table: &str) -> Result<()> {
        // Fast path under the read lock: nothing to do for tables without a
        // declared layout, or whose rendering is current.
        {
            let catalog = self.catalog.read();
            let entry = catalog.get(table)?;
            if entry.layout_expr.is_none() {
                return Ok(());
            }
            let absorbs = entry.strategy.absorbs_new_data_on_access();
            match &entry.access {
                Some(access) if !(absorbs && !entry.pending.is_empty()) => return Ok(()),
                Some(access) => {
                    // Absorption is due, but it can only run on a uniquely
                    // owned layout. If other readers pin it *right now*,
                    // don't escalate to the write lock — under overlapping
                    // reader traffic that would turn every scan into a
                    // write-lock acquisition that then fails `Arc::get_mut`
                    // anyway. Serve with the pending-merge path (correct)
                    // and let a quiet moment, or the next insert, absorb.
                    // (Advisory check: a stale answer only defers or
                    // over-attempts absorption, never breaks correctness —
                    // the write path re-checks ownership authoritatively.)
                    if Arc::strong_count(access) > 1 {
                        return Ok(());
                    }
                }
                None => {}
            }
        }
        let mut catalog = self.catalog.write();
        self.reap_graveyard();
        self.render_or_absorb_locked(&mut catalog, table)
    }

    /// The write half of [`Database::ensure_rendered`]: absorbs pending
    /// rows into the existing rendering or performs a full render, under
    /// the catalog write lock held by the caller.
    fn render_or_absorb_locked(&self, catalog: &mut Catalog, table: &str) -> Result<()> {
        let entry = catalog.get_mut(table)?;
        if entry.layout_expr.is_none() {
            return Ok(());
        }
        let absorbs = entry.strategy.absorbs_new_data_on_access();
        if entry.access.is_some() && absorbs && !entry.pending.is_empty() {
            // Try to absorb the pending rows into the existing rendering.
            // In-place appends require *unique* ownership of the layout: a
            // rendering pinned by an in-flight scan must not grow rows
            // underneath that scan.
            let mut access = entry.access.take().expect("checked above");
            match Arc::get_mut(&mut access) {
                None => {
                    // Pinned by a reader. Leave the rows in the pending
                    // buffer — scans merge it in, so results stay correct —
                    // and retry the absorption on the next access, by which
                    // time the pin has usually drained.
                    entry.access = Some(access);
                    return Ok(());
                }
                Some(unique) => {
                    let provider = MemTableProvider::single(
                        entry.schema.clone(),
                        entry.pending.as_ref().clone(),
                    );
                    match unique.append_rows(&provider) {
                        Ok(AppendOutcome::Appended { .. }) => {
                            entry.access = Some(access);
                            entry.pending_mut().clear();
                            entry.stats.incremental_appends += 1;
                            return Ok(());
                        }
                        Ok(AppendOutcome::NeedsRebuild(_)) => {
                            self.retire(access);
                            // Fall through to the full render below.
                        }
                        Err(e) => {
                            // A failed append may have touched some objects
                            // and not others (e.g. one group of a vertical
                            // partition), which would misalign the
                            // positional stitch of every later read.
                            // Discard the rendering: the next access
                            // rebuilds from the canonical rows, which are
                            // still consistent.
                            self.retire(access);
                            return Err(e.into());
                        }
                    }
                }
            }
        } else if entry.access.is_some() {
            return Ok(());
        }
        let (expr, strategy) = {
            let entry = catalog.get(table)?;
            (
                entry.layout_expr.clone().expect("checked above"),
                entry.strategy,
            )
        };
        // Build a provider holding only the tables the expression actually
        // references (prejoin may need more than one; everything else needs
        // exactly one — unrelated tables are never cloned). Under the
        // new-data-only strategy, rows inserted after the layout was declared
        // stay in the row buffer and are excluded from the rendering.
        let referenced = expr.base_tables();
        let mut provider = MemTableProvider::new();
        for name in catalog.table_names() {
            if !referenced.contains(&name) {
                continue;
            }
            let entry = catalog.get(&name)?;
            let mut records = entry.records.as_ref().clone();
            if name == table && !strategy.absorbs_new_data_on_access() {
                records.truncate(records.len().saturating_sub(entry.pending.len()));
            }
            provider.add(entry.schema.clone(), records);
        }
        let config = self.config.read().clone();
        let layout = render(
            &expr,
            &provider,
            Arc::clone(&self.pager),
            RenderOptions {
                name: Some(format!("{table}__layout")),
                ..config.render_options
            },
        )?;
        let access = AccessMethods::with_cost_params(layout, config.cost_params);
        let entry = catalog.get_mut(table)?;
        entry.access = Some(Arc::new(access));
        entry.stats.full_renders += 1;
        if strategy.absorbs_new_data_on_access() {
            entry.pending_mut().clear();
        }
        Ok(())
    }

    /// Pins a consistent snapshot of a table — rendering the declared
    /// layout or absorbing pending rows first if needed. The snapshot holds
    /// the canonical rows, the pending buffer, and the rendered layout via
    /// shared pointers: queries served from it never block on (and are
    /// never corrupted by) concurrent inserts, layout swaps, adaptation, or
    /// checkpoints.
    pub fn snapshot(&self, table: &str) -> Result<TableSnapshot> {
        self.ensure_rendered(table)?;
        let catalog = self.catalog.read();
        let entry = catalog.get(table)?;
        Ok(TableSnapshot {
            schema: entry.schema.clone(),
            records: Arc::clone(&entry.records),
            pending: Arc::clone(&entry.pending),
            access: entry.access.clone(),
            cost_params: self.config.read().cost_params,
        })
    }

    /// Scans a table. Tables without a declared layout are scanned from their
    /// canonical row-major representation; tables with a layout use the
    /// rendered objects (rendering lazily if necessary). Under the
    /// new-data-only strategy, rows inserted after the layout was declared
    /// are merged in from the row buffer — order-aware when the request asks
    /// for a sort order, so the merged result is globally ordered.
    ///
    /// Every scan is recorded into the table's live workload profile; in
    /// auto-adapt mode, every [`AdaptivePolicy::check_every`]-th query also
    /// runs the adaptation check after serving the scan.
    pub fn scan(&self, table: &str, request: &ScanRequest) -> Result<Vec<Record>> {
        let run_check = self.observe(table, request)?;
        let snapshot = self.snapshot(table)?;
        let rows = snapshot.scan(request)?;
        drop(snapshot); // release the pin before adaptation may re-render
        if run_check {
            self.auto_adapt_check(table)?;
        }
        Ok(rows)
    }

    /// Opens a (materialized) cursor over a scan. The facade merges freshly
    /// inserted pending rows into layout scans, so the merged result is
    /// materialized here; use [`TableSnapshot::open_cursor`] on a pinned
    /// snapshot for a streaming cursor.
    pub fn open_cursor(&self, table: &str, request: &ScanRequest) -> Result<Cursor<'static>> {
        // Profiling (and the auto-adapt hook) happens inside `scan`.
        Ok(Cursor::new(self.scan(table, request)?))
    }

    /// Returns the element at `index` of the table's stored representation
    /// (layout storage order first, then any pending row buffer).
    pub fn get_element(
        &self,
        table: &str,
        index: usize,
        fields: Option<&[String]>,
    ) -> Result<Record> {
        let run_check = {
            let (auto, check_every) = {
                let config = self.config.read();
                (config.adaptive.auto, config.adaptive.check_every)
            };
            let catalog = self.catalog.read();
            let entry = catalog.get(table)?;
            let mut profile = entry.profile.lock();
            // Unknown fields error below and must not poison the profile.
            if fields.map_or(true, |fields| {
                fields.iter().all(|f| entry.schema.index_of(f).is_ok())
            }) {
                profile.record_get_element(fields);
            }
            auto && profile.queries_since_check >= check_every
        };
        let snapshot = self.snapshot(table)?;
        let element = snapshot.get_element(index, fields)?;
        drop(snapshot);
        if run_check {
            self.auto_adapt_check(table)?;
        }
        Ok(element)
    }

    /// Estimated cost of a scan in milliseconds (the `scan_cost` access
    /// method). Tables without a rendered layout — or requests the layout
    /// cannot serve (fields it projected away) — report a cost proportional
    /// to their canonical size.
    pub fn scan_cost(&self, table: &str, request: &ScanRequest) -> Result<f64> {
        self.snapshot(table)?.scan_cost(request)
    }

    /// Estimated number of pages a scan would read (0 when the scan would be
    /// served from the in-memory canonical rows).
    pub fn scan_pages(&self, table: &str, request: &ScanRequest) -> Result<u64> {
        self.snapshot(table)?.scan_pages(request)
    }

    /// The sort orders the table's current organization is efficient for.
    pub fn order_list(&self, table: &str) -> Result<Vec<Vec<rodentstore_algebra::expr::SortKey>>> {
        self.ensure_rendered(table)?;
        let catalog = self.catalog.read();
        let entry = catalog.get(table)?;
        Ok(entry
            .access
            .as_ref()
            .map(|a| a.order_list())
            .unwrap_or_default())
    }

    /// Runs the storage design advisor for a table and workload, returning
    /// the recommendation without applying it.
    pub fn recommend_layout(
        &self,
        table: &str,
        workload: &Workload,
        options: &AdvisorOptions,
    ) -> Result<Recommendation> {
        // Pin the schema and rows, then run the (expensive) advisor search
        // without any database lock held.
        let (schema, records) = {
            let catalog = self.catalog.read();
            let entry = catalog.get(table)?;
            (entry.schema.clone(), Arc::clone(&entry.records))
        };
        Ok(advise(&schema, &records, workload, options)?)
    }

    /// Runs the advisor and applies the recommended layout eagerly.
    pub fn auto_tune(
        &self,
        table: &str,
        workload: &Workload,
        options: &AdvisorOptions,
    ) -> Result<Recommendation> {
        let recommendation = self.recommend_layout(table, workload, options)?;
        self.apply_layout(table, recommendation.best.expr.clone(), ReorgStrategy::Eager)?;
        Ok(recommendation)
    }

    /// A point-in-time copy of the live workload profile captured for a
    /// table.
    pub fn workload_profile(&self, table: &str) -> Result<crate::monitor::WorkloadProfile> {
        Ok(self.catalog.read().get(table)?.profile.lock().clone())
    }

    /// Render/append/adaptation counters for a table.
    pub fn layout_stats(&self, table: &str) -> Result<crate::catalog::LayoutStats> {
        Ok(self.catalog.read().get(table)?.stats)
    }

    /// Runs one adaptation check against the table's *live* workload profile
    /// — no user-built [`Workload`] needed. The advisor's best design and the
    /// currently declared design are costed over the same data sample; the
    /// layout is re-declared (via [`AdaptivePolicy::strategy`]) only when the
    /// predicted improvement clears [`AdaptivePolicy::hysteresis`].
    ///
    /// In auto mode this runs by itself every [`AdaptivePolicy::check_every`]
    /// queries; calling it explicitly is always allowed.
    pub fn maybe_adapt(&self, table: &str) -> Result<AdaptOutcome> {
        let policy = self.config.read().adaptive.clone();
        // Snapshot the profile, schema, rows, and current expression under
        // the read lock, then run the advisor search with *no* lock held —
        // concurrent scans proceed while the annealing runs.
        let (workload, observed, current_expr, schema, records) = {
            let catalog = self.catalog.read();
            let entry = catalog.get(table)?;
            let mut profile = entry.profile.lock();
            profile.end_check_window();
            (
                profile.to_workload(),
                profile.queries_observed,
                entry
                    .layout_expr
                    .clone()
                    .unwrap_or_else(|| LayoutExpr::table(table)),
                entry.schema.clone(),
                Arc::clone(&entry.records),
            )
        };
        if observed < policy.min_queries || workload.is_empty() {
            return Ok(AdaptOutcome::InsufficientData {
                queries_observed: observed,
            });
        }
        let (recommendation, baseline) = advise_with_baseline(
            &schema,
            &records,
            &workload,
            &policy.advisor,
            &current_expr,
        )?;
        let best = recommendation.best;
        let current_ms = baseline.map(|c| c.total_ms).unwrap_or(f64::INFINITY);
        let improves = best.total_ms < current_ms * (1.0 - policy.hysteresis);
        if best.expr == current_expr || !improves {
            return Ok(AdaptOutcome::KeptCurrent {
                current_ms,
                best_ms: best.total_ms,
            });
        }
        let mut catalog = self.catalog.write();
        self.reap_graveyard();
        // Re-check under the write lock: if another thread re-declared the
        // layout while the advisor ran, our recommendation was costed
        // against a stale baseline — keep what is there and let the next
        // check window re-evaluate.
        let now_expr = catalog
            .get(table)?
            .layout_expr
            .clone()
            .unwrap_or_else(|| LayoutExpr::table(table));
        if now_expr != current_expr {
            return Ok(AdaptOutcome::KeptCurrent {
                current_ms,
                best_ms: best.total_ms,
            });
        }
        // Adaptation is logged as an `apply_layout` with the `adapted` flag
        // set, so replay after a crash maintains the adaptation counter.
        let tx = self.log_op_begin(|| {
            durability::encode_apply_layout(table, &best.expr.to_string(), policy.strategy, true)
        })?;
        self.apply_layout_locked(&mut catalog, table, best.expr.clone(), policy.strategy, tx)?;
        let entry = catalog.get_mut(table)?;
        entry.stats.adaptations += 1;
        Ok(AdaptOutcome::Adapted {
            expr: best.expr,
            from_ms: current_ms,
            to_ms: best.total_ms,
        })
    }

    /// Records a scan into the profile, returning whether the auto-adapt
    /// check should run after the query is served. Requests referencing
    /// fields the table does not have are *not* recorded — they error on the
    /// query path anyway, and a poisoned template would make every later
    /// advisor run fail on the unknown field.
    fn observe(&self, table: &str, request: &ScanRequest) -> Result<bool> {
        let (auto, check_every) = {
            let config = self.config.read();
            (config.adaptive.auto, config.adaptive.check_every)
        };
        let catalog = self.catalog.read();
        let entry = catalog.get(table)?;
        let known = |f: &String| entry.schema.index_of(f).is_ok();
        let valid = request.fields.iter().flatten().all(known)
            && request
                .predicate
                .as_ref()
                .map_or(true, |p| p.referenced_fields().iter().all(known))
            && request
                .order
                .iter()
                .flatten()
                .all(|k| known(&k.field));
        let mut profile = entry.profile.lock();
        if valid {
            profile.record_scan(request);
        }
        Ok(auto && profile.queries_since_check >= check_every)
    }

    /// Auto-mode wrapper around [`Database::maybe_adapt`]: an adaptation
    /// check the advisor cannot complete (empty candidate set, a template it
    /// cannot cost, …) must not fail the user's query, so optimizer errors
    /// are swallowed here; catalog and rendering errors still surface. At
    /// most one check runs per table at a time — when many reader threads
    /// cross the `check_every` threshold together, one runs the advisor and
    /// the rest skip.
    fn auto_adapt_check(&self, table: &str) -> Result<()> {
        let gate = match self.catalog.read().get(table) {
            Ok(entry) => Arc::clone(&entry.adapting),
            Err(_) => return Ok(()), // dropped meanwhile
        };
        if gate.swap(true, Ordering::SeqCst) {
            return Ok(()); // another thread's check is in flight
        }
        let result = self.maybe_adapt(table);
        gate.store(false, Ordering::SeqCst);
        match result {
            Ok(_) | Err(RodentError::Optimizer(_)) => Ok(()),
            Err(e) => Err(e),
        }
    }
}

impl TableSnapshot {
    /// The table's logical schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of logical rows visible to this snapshot.
    pub fn row_count(&self) -> usize {
        self.records.len()
    }

    /// The pinned rendered layout, if the table had one when the snapshot
    /// was taken.
    pub fn layout(&self) -> Option<&PhysicalLayout> {
        self.access.as_deref().map(AccessMethods::layout)
    }

    /// Scans the snapshot. Tables without a declared layout are scanned
    /// from their canonical row-major representation; tables with a layout
    /// use the pinned rendered objects, merging any pending row buffer in
    /// (order-aware when the request asks for a sort). No database lock is
    /// held.
    pub fn scan(&self, request: &ScanRequest) -> Result<Vec<Record>> {
        match &self.access {
            // A layout can only serve requests over the fields it kept; a
            // query referencing a field the (possibly auto-adapted) layout
            // projected away falls back to the canonical rows — and, having
            // been recorded in the profile, steers the next adaptation back
            // toward a layout that covers it.
            Some(access) if layout_serves(access, request) => {
                let mut rows = access.scan(request)?;
                if !self.pending.is_empty() {
                    // Pending rows must come out in the *layout's* output
                    // shape (a projection layout exposes fewer fields than
                    // the canonical schema), so the merge compares and
                    // returns uniformly shaped records.
                    let out_fields: Vec<String> = request
                        .fields
                        .clone()
                        .unwrap_or_else(|| access.layout().schema.field_names());
                    let pending_request = ScanRequest {
                        fields: Some(out_fields.clone()),
                        predicate: request.predicate.clone(),
                        order: request.order.clone(),
                    };
                    let pending =
                        scan_canonical(&self.schema, &self.pending, &pending_request)?;
                    rows = merge_by_order(&out_fields, request.order.as_deref(), rows, pending);
                }
                Ok(rows)
            }
            _ => scan_canonical(&self.schema, &self.records, request),
        }
    }

    /// Opens a cursor over the snapshot. When the pinned layout can serve
    /// the request natively and no pending rows need merging, the cursor
    /// *streams* — tuples decode from pages on demand, borrowing from the
    /// snapshot (not from the database, so concurrent writers are never
    /// blocked). Otherwise the merged result is materialized.
    pub fn open_cursor(&self, request: &ScanRequest) -> Result<Cursor<'_>> {
        match &self.access {
            Some(access) if layout_serves(access, request) && self.pending.is_empty() => {
                Ok(access.open_cursor(request)?)
            }
            _ => Ok(Cursor::new(self.scan(request)?)),
        }
    }

    /// Returns the element at `index` of the snapshot's stored
    /// representation (layout storage order first, then any pending row
    /// buffer).
    pub fn get_element(&self, index: usize, fields: Option<&[String]>) -> Result<Record> {
        match &self.access {
            // Fields the layout projected away are served from the canonical
            // rows (in canonical order — a storage order over fields the
            // layout does not store is not meaningful).
            Some(access)
                if fields.map_or(true, |fields| {
                    fields
                        .iter()
                        .all(|f| access.layout().schema.index_of(f).is_ok())
                }) =>
            {
                let layout_rows = access.layout().row_count;
                if index >= layout_rows && index - layout_rows < self.pending.len() {
                    // Pending rows (new-data-only buffer) extend the storage
                    // order past the rendered representation; project them to
                    // the layout's exposed fields so the record shape does
                    // not change at the layout/pending boundary.
                    let layout_fields;
                    let effective: &[String] = match fields {
                        Some(fields) => fields,
                        None => {
                            layout_fields = access.layout().schema.field_names();
                            &layout_fields
                        }
                    };
                    project_record(
                        &self.schema,
                        self.pending[index - layout_rows].clone(),
                        Some(effective),
                    )
                } else {
                    Ok(access.get_element(index, fields)?)
                }
            }
            _ => self
                .records
                .get(index)
                .cloned()
                .map(|r| project_record(&self.schema, r, fields))
                .transpose()?
                .ok_or_else(|| RodentError::Invalid(format!("element {index} out of range"))),
        }
    }

    /// Estimated cost of a scan over this snapshot, in milliseconds.
    pub fn scan_cost(&self, request: &ScanRequest) -> Result<f64> {
        match &self.access {
            Some(access) if layout_serves(access, request) => Ok(access.scan_cost(request)?),
            _ => {
                let bytes =
                    self.records.len() as f64 * self.schema.estimated_record_width() as f64;
                Ok(self.cost_params.seek_ms
                    + bytes / (self.cost_params.transfer_mb_per_s * 1024.0 * 1024.0) * 1000.0)
            }
        }
    }

    /// Estimated number of pages a scan over this snapshot would read.
    pub fn scan_pages(&self, request: &ScanRequest) -> Result<u64> {
        match &self.access {
            Some(access) if layout_serves(access, request) => Ok(access.scan_pages(request)),
            _ => Ok(0),
        }
    }
}

/// Whether the rendered layout can serve every field the request references
/// (projection, predicate, and order keys). A layout that projected a field
/// away cannot — such requests fall back to the canonical rows.
/// Pages owned by a retired layout's secondary index, if any: the live tree
/// pages plus any pages vacated by protected-tree relocation. Reclaimed
/// alongside the heap extents when the layout leaves the graveyard.
fn retired_index_pages(layout: &PhysicalLayout) -> Vec<rodentstore_storage::page::PageId> {
    let Some(idx) = layout.index.as_ref() else {
        return Vec::new();
    };
    let mut pages = idx.page_ids().unwrap_or_default();
    pages.extend(idx.take_relocated());
    pages
}

fn layout_serves(access: &AccessMethods, request: &ScanRequest) -> bool {
    let schema = &access.layout().schema;
    if let Some(fields) = &request.fields {
        if !fields.iter().all(|f| schema.index_of(f).is_ok()) {
            return false;
        }
    }
    if let Some(pred) = &request.predicate {
        if !pred
            .referenced_fields()
            .iter()
            .all(|f| schema.index_of(f).is_ok())
        {
            return false;
        }
    }
    if let Some(order) = &request.order {
        if !order.iter().all(|k| schema.index_of(&k.field).is_ok()) {
            return false;
        }
    }
    true
}

/// Projects a canonical record to the requested fields.
fn project_record(
    schema: &Schema,
    record: Record,
    fields: Option<&[String]>,
) -> Result<Record> {
    match fields {
        Some(fields) => schema.extract(&record, fields).map_err(RodentError::Algebra),
        None => Ok(record),
    }
}

/// Compares two equally shaped records on `(position, direction)` sort keys
/// — the single comparator shared by the canonical scan sort and the
/// pending-row merge.
fn compare_by_keys(
    key_positions: &[(usize, SortOrder)],
    a: &Record,
    b: &Record,
) -> std::cmp::Ordering {
    for (pos, dir) in key_positions {
        let ord = a[*pos].compare(&b[*pos]);
        let ord = match dir {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Merges pending-buffer rows into a layout scan's result. Both inputs carry
/// records in the `out_fields` shape. When the request asks for a sort
/// order, both inputs are already sorted on the order keys (the access
/// methods sort non-native orders; [`scan_canonical`] sorts the buffer), so
/// a two-way merge keeps the combined result globally ordered — blindly
/// appending the buffer (the old behavior) broke any `ScanRequest` ordering.
/// Without an order (or when no order key survives the projection), the
/// buffer is appended after the layout rows.
fn merge_by_order(
    out_fields: &[String],
    order: Option<&[rodentstore_algebra::expr::SortKey]>,
    base: Vec<Record>,
    extra: Vec<Record>,
) -> Vec<Record> {
    let key_positions: Vec<(usize, SortOrder)> = order
        .unwrap_or_default()
        .iter()
        .filter_map(|k| {
            out_fields
                .iter()
                .position(|f| *f == k.field)
                .map(|pos| (pos, k.order))
        })
        .collect();
    if key_positions.is_empty() {
        let mut rows = base;
        rows.extend(extra);
        return rows;
    }
    let mut merged = Vec::with_capacity(base.len() + extra.len());
    let mut a = base.into_iter().peekable();
    let mut b = extra.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                // `<=` keeps the merge stable: layout rows win ties.
                if compare_by_keys(&key_positions, x, y) != std::cmp::Ordering::Greater {
                    merged.push(a.next().expect("peeked"));
                } else {
                    merged.push(b.next().expect("peeked"));
                }
            }
            (Some(_), None) => merged.push(a.next().expect("peeked")),
            (None, Some(_)) => merged.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    merged
}

/// Scans in-memory canonical records (used before any layout is declared and
/// for the new-data-only pending buffer).
fn scan_canonical(
    schema: &Schema,
    records: &[Record],
    request: &ScanRequest,
) -> Result<Vec<Record>> {
    let out_fields: Vec<String> = request
        .fields
        .clone()
        .unwrap_or_else(|| schema.field_names());
    let indices = schema.indices_of(&out_fields)?;
    let mut rows = Vec::new();
    for r in records {
        if let Some(pred) = &request.predicate {
            if !pred.eval(schema, r)? {
                continue;
            }
        }
        rows.push(indices.iter().map(|&i| r[i].clone()).collect());
    }
    if let Some(order) = &request.order {
        let mut key_positions = Vec::new();
        for key in order {
            if let Some(pos) = out_fields.iter().position(|f| *f == key.field) {
                key_positions.push((pos, key.order));
            }
        }
        rows.sort_by(|a: &Record, b: &Record| compare_by_keys(&key_positions, a, b));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::comprehension::Condition;
    use rodentstore_algebra::schema::Field;
    use rodentstore_algebra::types::DataType;
    use rodentstore_algebra::value::Value;
    use rodentstore_workload::{generate_traces, traces_schema, CartelConfig};

    fn small_db() -> Database {
        let db = Database::with_page_size(2048);
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 1_500,
                vehicles: 10,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db
    }

    #[test]
    fn scan_without_layout_uses_canonical_rows() {
        let db = small_db();
        let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 1_500);
        let narrow = db
            .scan("Traces", &ScanRequest::all().fields(["lat"]))
            .unwrap();
        assert!(narrow.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn textual_layout_changes_the_physical_representation() {
        let db = small_db();
        // Center the query box on a point the table actually contains, so
        // the test does not depend on the exact random stream.
        let (lat0, lon0) = {
            let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
            (rows[750][1].as_f64().unwrap(), rows[750][2].as_f64().unwrap())
        };
        let (lat_lo, lat_hi) = (lat0 - 0.02, lat0 + 0.02);
        let (lon_lo, lon_hi) = (lon0 - 0.025, lon0 + 0.025);
        db.apply_layout_text(
            "Traces",
            "zorder(grid[lat,lon;0.02,0.02](project[lat,lon](Traces)))",
        )
        .unwrap();
        let pred =
            Condition::range("lat", lat_lo, lat_hi).and(Condition::range("lon", lon_lo, lon_hi));
        let rows = db
            .scan("Traces", &ScanRequest::all().predicate(pred.clone()))
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .all(|r| (lat_lo..=lat_hi).contains(&r[0].as_f64().unwrap())));
        // Pruned scans should touch fewer pages than the whole layout.
        let total = db.scan_pages("Traces", &ScanRequest::all()).unwrap();
        let pruned = db
            .scan_pages("Traces", &ScanRequest::all().predicate(pred))
            .unwrap();
        assert!(pruned < total);
    }

    #[test]
    fn lazy_layouts_render_on_first_access() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").columns(["t", "lat", "lon", "id"]),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        // Nothing rendered yet.
        assert!(db.catalog().get("Traces").unwrap().access.is_none());
        db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        assert!(db.catalog().get("Traces").unwrap().access.is_some());
    }

    #[test]
    fn new_data_only_strategy_merges_pending_rows() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        let before = db.scan("Traces", &ScanRequest::all()).unwrap().len();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let after = db.scan("Traces", &ScanRequest::all()).unwrap().len();
        assert_eq!(after, before + 1);
        // The pending row is still buffered, not folded into the layout.
        assert_eq!(db.catalog().get("Traces").unwrap().pending.len(), 1);
    }

    #[test]
    fn eager_strategy_absorbs_inserts() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        assert!(db.catalog().get("Traces").unwrap().pending.is_empty());
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
    }

    #[test]
    fn schema_violations_and_unknown_tables_are_rejected() {
        let db = small_db();
        assert!(db.insert("Traces", vec![vec![Value::Int(1)]]).is_err());
        assert!(db.scan("Nope", &ScanRequest::all()).is_err());
        assert!(db
            .apply_layout_text("Traces", "project[altitude](Traces)")
            .is_err());
    }

    #[test]
    fn get_element_and_order_list() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").order_by(["t"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let first = db.get_element("Traces", 0, None).unwrap();
        assert_eq!(first.len(), 4);
        let orders = db.order_list("Traces").unwrap();
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0][0].field, "t");
    }

    #[test]
    fn eager_inserts_are_absorbed_incrementally() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let after_apply = db.layout_stats("Traces").unwrap();
        assert_eq!(after_apply.full_renders, 1);

        let written_before = db.io_snapshot().pages_written;
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_000),
                Value::Float(42.31),
                Value::Float(-71.06),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 1, "no full re-render on insert");
        assert_eq!(stats.incremental_appends, 1);
        // An incremental append of one row touches a handful of pages, not
        // the whole layout.
        let written = db.io_snapshot().pages_written - written_before;
        assert!(written <= 4, "append wrote {written} pages");
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
        assert!(db.catalog().get("Traces").unwrap().pending.is_empty());
    }

    #[test]
    fn lazy_inserts_absorb_incrementally_on_next_access() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        db.scan("Traces", &ScanRequest::all()).unwrap(); // first render
        assert_eq!(db.layout_stats("Traces").unwrap().full_renders, 1);
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_001),
                Value::Float(42.32),
                Value::Float(-71.07),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        // Pending until the next access; then absorbed without a re-render.
        assert_eq!(db.catalog().get("Traces").unwrap().pending.len(), 1);
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 1);
        assert_eq!(stats.incremental_appends, 1);
    }

    #[test]
    fn vertical_partitions_absorb_inserts_incrementally() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").vertical([vec!["lat", "lon"], vec!["t", "id"]]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_002),
                Value::Float(42.33),
                Value::Float(-71.08),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 1, "vertical appends in place now");
        assert_eq!(stats.incremental_appends, 1);
        let rows = db.scan("Traces", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 1_501);
        // The appended row is stitched back whole across both objects.
        let last = db.get_element("Traces", 1_500, None).unwrap();
        assert_eq!(last[0], Value::Timestamp(10_002));
        assert_eq!(last[3], Value::Str("car-new".into()));
    }

    #[test]
    fn failed_partial_append_invalidates_instead_of_corrupting() {
        // A vertical append writes object-by-object; if one group fails
        // (here: a string too large for the page) after another succeeded,
        // the per-object row sets diverge. The absorb path must discard the
        // rendering rather than leave positionally misaligned objects.
        let db = Database::with_page_size(1024);
        db.create_table(Schema::new(
            "Docs",
            vec![
                Field::new("x", DataType::Float),
                Field::new("body", DataType::String),
            ],
        ))
        .unwrap();
        let rows: Vec<Record> = (0..50)
            .map(|i| vec![Value::Float(i as f64), Value::Str(format!("doc-{i}"))])
            .collect();
        db.insert("Docs", rows).unwrap();
        db.apply_layout(
            "Docs",
            LayoutExpr::table("Docs").vertical([vec!["x"], vec!["body"]]),
            ReorgStrategy::Lazy,
        )
        .unwrap();
        assert_eq!(db.scan("Docs", &ScanRequest::all()).unwrap().len(), 50);
        // Passes schema validation, fails in the `body` object's heap.
        db.insert(
            "Docs",
            vec![vec![Value::Float(99.0), Value::Str("y".repeat(5_000))]],
        )
        .unwrap();
        let err = db.scan("Docs", &ScanRequest::all());
        assert!(err.is_err(), "absorbing the oversized row must fail");
        assert!(
            db.catalog().get("Docs").unwrap().access.is_none(),
            "the partially appended rendering must be discarded"
        );
        // Declaring a layout that can hold the data recovers the table with
        // every row intact and aligned.
        db.apply_layout(
            "Docs",
            LayoutExpr::table("Docs").project(["x"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let rows = db.scan("Docs", &ScanRequest::all()).unwrap();
        assert_eq!(rows.len(), 51);
        assert_eq!(rows[50], vec![Value::Float(99.0)]);
    }

    #[test]
    fn appendless_shapes_still_rebuild_on_insert() {
        let db = small_db();
        // Fold groups are single heap records; inserts must re-render.
        // (Folding only `t` keeps each group under the 2 KiB test pages.)
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").fold(["id"], ["t"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_002),
                Value::Float(42.33),
                Value::Float(-71.08),
                Value::Str("car-new".into()),
            ]],
        )
        .unwrap();
        let stats = db.layout_stats("Traces").unwrap();
        assert_eq!(stats.full_renders, 2, "folded layouts fall back to rebuild");
        assert_eq!(stats.incremental_appends, 0);
        assert_eq!(db.scan("Traces", &ScanRequest::all()).unwrap().len(), 1_501);
    }

    #[test]
    fn new_data_only_merges_pending_rows_order_aware() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["t", "lat"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        // A pending row whose timestamp sorts *before* every layout row.
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(-5),
                Value::Float(42.0),
                Value::Float(-71.0),
                Value::Str("car-early".into()),
            ]],
        )
        .unwrap();
        let rows = db
            .scan("Traces", &ScanRequest::all().fields(["t", "lat"]).order(["t"]))
            .unwrap();
        assert_eq!(rows.len(), 1_501);
        assert_eq!(rows[0][0], Value::Timestamp(-5), "pending row merged into place");
        assert!(
            rows.windows(2).all(|w| w[0][0] <= w[1][0]),
            "merged result must be globally ordered"
        );
    }

    #[test]
    fn ordered_scan_over_projection_layout_merges_pending_in_layout_shape() {
        let db = small_db();
        // The layout exposes only [lat, lon]; order key positions must be
        // resolved against that shape, not the 4-field canonical schema.
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_004),
                Value::Float(-90.0), // sorts before every generated lat
                Value::Float(0.0),
                Value::Str("car-south".into()),
            ]],
        )
        .unwrap();
        let rows = db
            .scan("Traces", &ScanRequest::all().order(["lat"]))
            .unwrap();
        assert_eq!(rows.len(), 1_501);
        assert!(rows.iter().all(|r| r.len() == 2), "uniform layout shape");
        assert_eq!(rows[0][0], Value::Float(-90.0), "pending row merged first");
        assert!(rows.windows(2).all(|w| w[0][0] <= w[1][0]));
    }

    #[test]
    fn unknown_field_requests_do_not_poison_auto_adaptation() {
        let db = small_db();
        db.set_adaptive_policy(AdaptivePolicy {
            auto: true,
            check_every: 4,
            min_queries: 4,
            advisor: AdvisorOptions {
                cost_model: rodentstore_optimizer::CostModel {
                    sample_size: 500,
                    page_size: 1024,
                    cost_params: CostParams {
                        seek_ms: 1.0,
                        transfer_mb_per_s: 2.0,
                    },
                },
                anneal_iterations: 1,
                seed: 5,
            },
            ..AdaptivePolicy::default()
        });
        // A bad request errors, but must not be recorded as a template.
        assert!(db.scan("Traces", &ScanRequest::all().fields(["nope"])).is_err());
        assert!(db
            .get_element("Traces", 0, Some(&["nope".to_string()]))
            .is_err());
        // Valid queries keep working straight through the adaptation checks.
        for _ in 0..12 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        assert!(db
            .workload_profile("Traces")
            .unwrap()
            .templates()
            .iter()
            .all(|t| !t.fingerprint.contains("nope")));
    }

    #[test]
    fn get_element_reaches_pending_rows() {
        let db = small_db();
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::NewDataOnly,
        )
        .unwrap();
        db.insert(
            "Traces",
            vec![vec![
                Value::Timestamp(10_003),
                Value::Float(1.5),
                Value::Float(2.5),
                Value::Str("car-pending".into()),
            ]],
        )
        .unwrap();
        // Index 1500 is past the rendered layout (1500 rows) → pending row,
        // shaped like the layout's output ([lat, lon]) — the record shape
        // must not change at the layout/pending boundary.
        let row = db.get_element("Traces", 1_500, None).unwrap();
        assert_eq!(row, vec![Value::Float(1.5), Value::Float(2.5)]);
        assert_eq!(row.len(), db.get_element("Traces", 0, None).unwrap().len());
        let narrow = db
            .get_element("Traces", 1_500, Some(&["lon".to_string()]))
            .unwrap();
        assert_eq!(narrow, vec![Value::Float(2.5)]);
        assert!(db.get_element("Traces", 1_501, None).is_err());
    }

    #[test]
    fn dropped_fields_are_served_from_canonical_rows() {
        let db = small_db();
        // The layout keeps only lat/lon; t and id are projected away.
        db.apply_layout(
            "Traces",
            LayoutExpr::table("Traces").project(["lat", "lon"]),
            ReorgStrategy::Eager,
        )
        .unwrap();
        let ts = db
            .scan("Traces", &ScanRequest::all().fields(["t"]))
            .unwrap();
        assert_eq!(ts.len(), 1_500, "dropped field served from canonical rows");
        let filtered = db
            .scan(
                "Traces",
                &ScanRequest::all()
                    .fields(["lat"])
                    .predicate(Condition::eq("id", "car-00001")),
            )
            .unwrap();
        assert!(!filtered.is_empty(), "predicate on dropped field still works");
        assert_eq!(db.scan_pages("Traces", &ScanRequest::all().fields(["t"])).unwrap(), 0);
        assert!(db.scan_cost("Traces", &ScanRequest::all().fields(["t"])).unwrap() > 0.0);
        let elem = db
            .get_element("Traces", 3, Some(&["t".to_string(), "id".to_string()]))
            .unwrap();
        assert_eq!(elem.len(), 2);
        // Truly unknown fields still error.
        assert!(db.scan("Traces", &ScanRequest::all().fields(["nope"])).is_err());
    }

    #[test]
    fn maybe_adapt_waits_for_data_then_adapts_beyond_hysteresis() {
        let db = Database::with_page_size(1024);
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 3_000,
                vehicles: 15,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db.set_adaptive_policy(AdaptivePolicy {
            auto: false,
            min_queries: 8,
            hysteresis: 0.1,
            advisor: AdvisorOptions {
                cost_model: rodentstore_optimizer::CostModel {
                    sample_size: 2_000,
                    page_size: 1024,
                    cost_params: CostParams {
                        seek_ms: 1.0,
                        transfer_mb_per_s: 2.0,
                    },
                },
                anneal_iterations: 2,
                seed: 11,
            },
            ..AdaptivePolicy::default()
        });

        // Not enough traffic yet.
        db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        assert!(matches!(
            db.maybe_adapt("Traces").unwrap(),
            AdaptOutcome::InsufficientData { .. }
        ));

        // A projection-heavy workload: the advisor should move the table off
        // the canonical row layout.
        for _ in 0..12 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        let outcome = db.maybe_adapt("Traces").unwrap();
        assert!(
            matches!(outcome, AdaptOutcome::Adapted { .. }),
            "expected adaptation, got {outcome:?}"
        );
        assert!(db.catalog().get("Traces").unwrap().layout_expr.is_some());
        assert_eq!(db.layout_stats("Traces").unwrap().adaptations, 1);

        // Same workload again: the system must *not* flap.
        for _ in 0..12 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        assert!(matches!(
            db.maybe_adapt("Traces").unwrap(),
            AdaptOutcome::KeptCurrent { .. }
        ));
        assert_eq!(db.layout_stats("Traces").unwrap().adaptations, 1);
    }

    #[test]
    fn auto_mode_adapts_without_manual_calls() {
        let db = Database::with_page_size(1024);
        db.create_table(traces_schema()).unwrap();
        db.insert(
            "Traces",
            generate_traces(&CartelConfig {
                observations: 3_000,
                vehicles: 15,
                ..CartelConfig::default()
            }),
        )
        .unwrap();
        db.set_adaptive_policy(AdaptivePolicy {
            auto: true,
            check_every: 10,
            min_queries: 10,
            hysteresis: 0.1,
            advisor: AdvisorOptions {
                cost_model: rodentstore_optimizer::CostModel {
                    sample_size: 2_000,
                    page_size: 1024,
                    cost_params: CostParams {
                        seek_ms: 1.0,
                        transfer_mb_per_s: 2.0,
                    },
                },
                anneal_iterations: 2,
                seed: 11,
            },
            ..AdaptivePolicy::default()
        });
        for _ in 0..25 {
            db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        }
        assert!(
            db.layout_stats("Traces").unwrap().adaptations >= 1,
            "auto mode must have adapted the layout"
        );
        assert!(db.catalog().get("Traces").unwrap().layout_expr.is_some());
        // Queries still answer correctly through the adapted layout.
        let rows = db.scan("Traces", &ScanRequest::all().fields(["lat"])).unwrap();
        assert_eq!(rows.len(), 3_000);
    }

    #[test]
    fn auto_tune_applies_a_recommendation() {
        let db = Database::with_page_size(1024);
        db.create_table(Schema::new(
            "Points",
            vec![
                Field::new("x", DataType::Float),
                Field::new("y", DataType::Float),
                Field::new("tag", DataType::String),
            ],
        ))
        .unwrap();
        let records: Vec<Record> = (0..800)
            .map(|i| {
                vec![
                    Value::Float((i % 40) as f64),
                    Value::Float((i / 40) as f64),
                    Value::Str(format!("tag{}", i % 5)),
                ]
            })
            .collect();
        db.insert("Points", records).unwrap();
        let workload = Workload::new().query(
            ScanRequest::all()
                .fields(["x", "y"])
                .predicate(Condition::range("x", 3.0, 6.0).and(Condition::range("y", 3.0, 6.0))),
        );
        let options = AdvisorOptions {
            cost_model: rodentstore_optimizer::CostModel {
                sample_size: 800,
                page_size: 512,
                cost_params: CostParams {
                    seek_ms: 0.5,
                    transfer_mb_per_s: 2.0,
                },
            },
            anneal_iterations: 2,
            seed: 3,
        };
        let rec = db.auto_tune("Points", &workload, &options).unwrap();
        assert!(db.catalog().get("Points").unwrap().layout_expr.is_some());
        assert!(rec.explored.len() > 3);
        // The tuned table still answers queries correctly.
        let rows = db
            .scan(
                "Points",
                &ScanRequest::all()
                    .fields(["x", "y"])
                    .predicate(Condition::range("x", 3.0, 6.0)),
            )
            .unwrap();
        assert!(rows.iter().all(|r| (3.0..=6.0).contains(&r[0].as_f64().unwrap())));
    }
}
