//! Durability: the manifest format and the logical WAL operations.
//!
//! RodentStore's persistence design leans on the paper's central idea — the
//! physical representation is *declared*, not hand-built — so making a
//! database durable is cheap: persist the algebra text, the canonical rows,
//! and the page extents of the rendered objects, and everything else can be
//! re-derived. Three files live in a database directory:
//!
//! * **`data.rodent`** — the page file ([`rodentstore_storage::FileStore`]
//!   with a validated superblock). Layout renderers and incremental appends
//!   write pages here through the shared pager.
//! * **`wal.rodent`** — the write-ahead log. Every catalog mutation
//!   (`create_table`, `drop_table`, `insert`, `apply_layout`, adaptation) is
//!   encoded as a *logical* operation and committed to the log **before**
//!   any page is touched. Replay re-executes the ops; because the ops are
//!   declarative, replay re-derives pages instead of needing page images.
//! * **`manifest.rodent`** — a checkpoint of the whole catalog: schemas,
//!   declared layout expression text, canonical rows, pending buffers, the
//!   per-table [`crate::monitor::WorkloadProfile`] snapshot,
//!   layout statistics, and — for rendered layouts — each stored object's
//!   metadata and page extent, so `open` reattaches the rendered
//!   representation with **zero re-rendering**.
//!
//! [`Database::checkpoint`](crate::Database::checkpoint) flushes dirty heap
//! tails, syncs the page file, atomically rewrites the manifest
//! (write-temp + rename), and truncates the WAL. `open` loads the manifest,
//! discards any data pages past the checkpoint, and replays the WAL tail:
//! committed transactions win, torn or corrupt tails are detected by
//! checksum and discarded.
//!
//! All encodings here are little-endian, length-prefixed, and guarded by a
//! CRC32 over the manifest body; records and values reuse the layout
//! crate's self-describing row codec.

use crate::catalog::{CatalogView, LayoutStats, Rows};
use crate::database::AdaptivePolicy;
use crate::monitor::{QueryTemplate, WorkloadProfile};
use crate::reorg::ReorgStrategy;
use crate::{Result, RodentError};
use rodentstore_algebra::comprehension::{CmpOp, Condition, ElemExpr};
use rodentstore_algebra::expr::{SortKey, SortOrder};
use rodentstore_algebra::schema::{Field, Schema};
use rodentstore_algebra::types::DataType;
use rodentstore_algebra::value::{Record, Value};
use rodentstore_exec::{CostParams, ScanRequest};
use rodentstore_layout::rowcodec::{decode_record, encode_record};
use rodentstore_layout::{CellBounds, CodecKind, KeyKind, ObjectEncoding};
use rodentstore_optimizer::{AdvisorOptions, CostModel};
use rodentstore_storage::wal::SyncPolicy;
use rodentstore_storage::{crc32, PageId, StorageError, DEFAULT_PAGE_SIZE};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Name of the page file inside a database directory.
pub const DATA_FILE: &str = "data.rodent";
/// Name of the write-ahead log inside a database directory.
pub const WAL_FILE: &str = "wal.rodent";
/// Name of the manifest inside a database directory.
pub const MANIFEST_FILE: &str = "manifest.rodent";

const MANIFEST_MAGIC: &[u8; 8] = b"RDNTMAN1";
/// Version 2 added the free-page list, the persisted adaptive policy and
/// cost parameters, and per-object tail slot counts. Version 3 added the
/// declared-index description (kind, fields, root, page extent, outliers)
/// so indexes reattach from pages instead of rebuilding. Version 4 added
/// the levelled-tier (`lsm`) description — per-run level/seq/extent/bounds
/// plus the memtable rows — and the profile's decayed insert weight, so a
/// write-optimized table reattaches its runs without re-rendering and the
/// adaptation loop remembers the write pressure across restarts.
const MANIFEST_VERSION: u32 = 4;

/// Sentinel in the object encoding for "no open tail page".
const NO_TAIL: u32 = u32::MAX;

/// Configuration of a durable database.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// Page size of the data file.
    pub page_size: usize,
    /// When commits are `fsync`ed (see [`SyncPolicy`]). The default is
    /// durable group commit ([`SyncPolicy::GroupDurable`]): every commit is
    /// durable before it returns, and concurrent committers share one
    /// `fsync` through a leader/follower protocol — so the strongest
    /// guarantee costs roughly one sync per *batch*, not per commit. Pass
    /// an explicit policy (e.g. [`SyncPolicy::GroupCommit`]) to trade
    /// durability of the last few commits for latency.
    pub sync: SyncPolicy,
    /// Serve data-file reads as memory-mapped shared frames instead of
    /// copying page bytes out of the file. Defaults to the value of the
    /// `RODENTSTORE_MMAP` environment variable (`1`/`true` = on); ignored on
    /// platforms without mmap support, where reads fall back to the copy
    /// path. Purely a read-path choice: the bytes served are identical.
    pub mmap_reads: bool,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            page_size: DEFAULT_PAGE_SIZE,
            sync: SyncPolicy::GroupDurable,
            mmap_reads: mmap_env_default(),
        }
    }
}

/// Reads the `RODENTSTORE_MMAP` environment default for
/// [`DurabilityOptions::mmap_reads`].
fn mmap_env_default() -> bool {
    std::env::var("RODENTSTORE_MMAP")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

/// Handle to the on-disk pieces of a durable database (held by
/// [`crate::Database`] when created via `create`/`open`).
pub(crate) struct Durability {
    /// Database directory.
    pub dir: PathBuf,
}

/// Paths of the three database files under `dir`.
pub(crate) fn db_paths(dir: &Path) -> (PathBuf, PathBuf, PathBuf) {
    (
        dir.join(DATA_FILE),
        dir.join(WAL_FILE),
        dir.join(MANIFEST_FILE),
    )
}

fn corrupt(msg: impl Into<String>) -> RodentError {
    RodentError::Storage(StorageError::Corrupted(msg.into()))
}

// ---------------------------------------------------------------------------
// Binary encoding helpers
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }
    fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| corrupt("truncated durable encoding"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }
    fn str(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|_| corrupt("invalid utf8 in durable encoding"))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Codecs for the algebra/exec types the manifest and WAL ops carry
// ---------------------------------------------------------------------------

fn enc_value(e: &mut Enc, v: &Value) {
    e.bytes(&encode_record(&vec![v.clone()]));
}

fn dec_value(d: &mut Dec) -> Result<Value> {
    let record = decode_record(d.bytes()?).map_err(RodentError::Layout)?;
    record
        .into_iter()
        .next()
        .ok_or_else(|| corrupt("empty value encoding"))
}

fn enc_rec(e: &mut Enc, r: &Record) {
    e.bytes(&encode_record(r));
}

fn dec_rec(d: &mut Dec) -> Result<Record> {
    decode_record(d.bytes()?).map_err(RodentError::Layout)
}

fn enc_records(e: &mut Enc, records: &[Record]) {
    e.u32(records.len() as u32);
    for r in records {
        enc_rec(e, r);
    }
}

fn enc_rows(e: &mut Enc, rows: &Rows) {
    e.u32(rows.len() as u32);
    for r in rows.iter() {
        enc_rec(e, r);
    }
}

fn dec_records(d: &mut Dec) -> Result<Vec<Record>> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(dec_rec(d)?);
    }
    Ok(out)
}

fn enc_datatype(e: &mut Enc, ty: &DataType) {
    match ty {
        DataType::Int => e.u8(1),
        DataType::Float => e.u8(2),
        DataType::Bool => e.u8(3),
        DataType::String => e.u8(4),
        DataType::Timestamp => e.u8(5),
        DataType::Named(name, inner) => {
            e.u8(6);
            e.str(name);
            enc_datatype(e, inner);
        }
        DataType::List(items) => {
            e.u8(7);
            e.u32(items.len() as u32);
            for item in items {
                enc_datatype(e, item);
            }
        }
    }
}

fn dec_datatype(d: &mut Dec) -> Result<DataType> {
    match d.u8()? {
        1 => Ok(DataType::Int),
        2 => Ok(DataType::Float),
        3 => Ok(DataType::Bool),
        4 => Ok(DataType::String),
        5 => Ok(DataType::Timestamp),
        6 => {
            let name = d.str()?;
            Ok(DataType::Named(name, Box::new(dec_datatype(d)?)))
        }
        7 => {
            let n = d.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(dec_datatype(d)?);
            }
            Ok(DataType::List(items))
        }
        other => Err(corrupt(format!("unknown data-type tag {other}"))),
    }
}

fn enc_schema(e: &mut Enc, schema: &Schema) {
    e.str(schema.name());
    e.u32(schema.arity() as u32);
    for field in schema.fields() {
        e.str(&field.name);
        enc_datatype(e, &field.ty);
    }
}

fn dec_schema(d: &mut Dec) -> Result<Schema> {
    let name = d.str()?;
    let n = d.u32()? as usize;
    let mut fields = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let fname = d.str()?;
        fields.push(Field::new(fname, dec_datatype(d)?));
    }
    Schema::try_new(name, fields).map_err(RodentError::Algebra)
}

fn enc_elem(e: &mut Enc, expr: &ElemExpr) {
    match expr {
        ElemExpr::Literal(v) => {
            e.u8(0);
            enc_value(e, v);
        }
        ElemExpr::Field(name) => {
            e.u8(1);
            e.str(name);
        }
        ElemExpr::Pos => e.u8(2),
        ElemExpr::Count => e.u8(3),
        ElemExpr::Bin(inner) => {
            e.u8(4);
            enc_elem(e, inner);
        }
        ElemExpr::Interleave(items) => {
            e.u8(5);
            e.u32(items.len() as u32);
            for item in items {
                enc_elem(e, item);
            }
        }
        ElemExpr::Sub(a, b) => {
            e.u8(6);
            enc_elem(e, a);
            enc_elem(e, b);
        }
        ElemExpr::Add(a, b) => {
            e.u8(7);
            enc_elem(e, a);
            enc_elem(e, b);
        }
    }
}

fn dec_elem(d: &mut Dec) -> Result<ElemExpr> {
    match d.u8()? {
        0 => Ok(ElemExpr::Literal(dec_value(d)?)),
        1 => Ok(ElemExpr::Field(d.str()?)),
        2 => Ok(ElemExpr::Pos),
        3 => Ok(ElemExpr::Count),
        4 => Ok(ElemExpr::Bin(Box::new(dec_elem(d)?))),
        5 => {
            let n = d.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(dec_elem(d)?);
            }
            Ok(ElemExpr::Interleave(items))
        }
        6 => Ok(ElemExpr::Sub(Box::new(dec_elem(d)?), Box::new(dec_elem(d)?))),
        7 => Ok(ElemExpr::Add(Box::new(dec_elem(d)?), Box::new(dec_elem(d)?))),
        other => Err(corrupt(format!("unknown element-expression tag {other}"))),
    }
}

fn cmp_op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn dec_cmp_op(tag: u8) -> Result<CmpOp> {
    Ok(match tag {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        other => return Err(corrupt(format!("unknown comparison-operator tag {other}"))),
    })
}

fn enc_condition(e: &mut Enc, cond: &Condition) {
    match cond {
        Condition::True => e.u8(0),
        Condition::Cmp { left, op, right } => {
            e.u8(1);
            enc_elem(e, left);
            e.u8(cmp_op_tag(*op));
            enc_elem(e, right);
        }
        Condition::Range { field, lo, hi } => {
            e.u8(2);
            e.str(field);
            enc_value(e, lo);
            enc_value(e, hi);
        }
        Condition::And(items) => {
            e.u8(3);
            e.u32(items.len() as u32);
            for item in items {
                enc_condition(e, item);
            }
        }
        Condition::Or(items) => {
            e.u8(4);
            e.u32(items.len() as u32);
            for item in items {
                enc_condition(e, item);
            }
        }
        Condition::Not(inner) => {
            e.u8(5);
            enc_condition(e, inner);
        }
    }
}

fn dec_condition(d: &mut Dec) -> Result<Condition> {
    match d.u8()? {
        0 => Ok(Condition::True),
        1 => {
            let left = dec_elem(d)?;
            let op = dec_cmp_op(d.u8()?)?;
            let right = dec_elem(d)?;
            Ok(Condition::Cmp { left, op, right })
        }
        2 => Ok(Condition::Range {
            field: d.str()?,
            lo: dec_value(d)?,
            hi: dec_value(d)?,
        }),
        3 => {
            let n = d.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(dec_condition(d)?);
            }
            Ok(Condition::And(items))
        }
        4 => {
            let n = d.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(dec_condition(d)?);
            }
            Ok(Condition::Or(items))
        }
        5 => Ok(Condition::Not(Box::new(dec_condition(d)?))),
        other => Err(corrupt(format!("unknown condition tag {other}"))),
    }
}

fn enc_sort_key(e: &mut Enc, key: &SortKey) {
    e.str(&key.field);
    e.u8(match key.order {
        SortOrder::Asc => 0,
        SortOrder::Desc => 1,
    });
}

fn dec_sort_key(d: &mut Dec) -> Result<SortKey> {
    let field = d.str()?;
    let order = match d.u8()? {
        0 => SortOrder::Asc,
        1 => SortOrder::Desc,
        other => return Err(corrupt(format!("unknown sort-order tag {other}"))),
    };
    Ok(SortKey { field, order })
}

fn enc_sort_keys(e: &mut Enc, keys: &[SortKey]) {
    e.u32(keys.len() as u32);
    for key in keys {
        enc_sort_key(e, key);
    }
}

fn dec_sort_keys(d: &mut Dec) -> Result<Vec<SortKey>> {
    let n = d.u32()? as usize;
    let mut keys = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        keys.push(dec_sort_key(d)?);
    }
    Ok(keys)
}

fn enc_scan_request(e: &mut Enc, request: &ScanRequest) {
    match &request.fields {
        None => e.bool(false),
        Some(fields) => {
            e.bool(true);
            e.u32(fields.len() as u32);
            for f in fields {
                e.str(f);
            }
        }
    }
    match &request.predicate {
        None => e.bool(false),
        Some(pred) => {
            e.bool(true);
            enc_condition(e, pred);
        }
    }
    match &request.order {
        None => e.bool(false),
        Some(keys) => {
            e.bool(true);
            enc_sort_keys(e, keys);
        }
    }
}

fn dec_scan_request(d: &mut Dec) -> Result<ScanRequest> {
    let fields = if d.bool()? {
        let n = d.u32()? as usize;
        let mut fields = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            fields.push(d.str()?);
        }
        Some(fields)
    } else {
        None
    };
    let predicate = if d.bool()? { Some(dec_condition(d)?) } else { None };
    let order = if d.bool()? { Some(dec_sort_keys(d)?) } else { None };
    Ok(ScanRequest {
        fields,
        predicate,
        order,
    })
}

fn strategy_tag(strategy: ReorgStrategy) -> u8 {
    match strategy {
        ReorgStrategy::Eager => 0,
        ReorgStrategy::NewDataOnly => 1,
        ReorgStrategy::Lazy => 2,
    }
}

fn dec_strategy(tag: u8) -> Result<ReorgStrategy> {
    Ok(match tag {
        0 => ReorgStrategy::Eager,
        1 => ReorgStrategy::NewDataOnly,
        2 => ReorgStrategy::Lazy,
        other => return Err(corrupt(format!("unknown reorg-strategy tag {other}"))),
    })
}

fn codec_tag(codec: CodecKind) -> u8 {
    match codec {
        CodecKind::Plain => 0,
        CodecKind::Delta => 1,
        CodecKind::Rle => 2,
        CodecKind::Dictionary => 3,
        CodecKind::BitPack => 4,
        CodecKind::FrameOfReference => 5,
    }
}

fn dec_codec(tag: u8) -> Result<CodecKind> {
    Ok(match tag {
        0 => CodecKind::Plain,
        1 => CodecKind::Delta,
        2 => CodecKind::Rle,
        3 => CodecKind::Dictionary,
        4 => CodecKind::BitPack,
        5 => CodecKind::FrameOfReference,
        other => return Err(corrupt(format!("unknown codec tag {other}"))),
    })
}

// ---------------------------------------------------------------------------
// Logical WAL operations
// ---------------------------------------------------------------------------

/// A logical catalog mutation, logged to the WAL before it is applied.
/// Replay re-executes the op through the normal (unlogged) mutation paths,
/// so recovered state is derived by exactly the code that produced it.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum DurableOp {
    /// `create_table`.
    CreateTable(Schema),
    /// `drop_table`.
    DropTable(String),
    /// `insert` of canonical rows.
    Insert {
        /// Target table.
        table: String,
        /// The inserted rows.
        rows: Vec<Record>,
    },
    /// `apply_layout` (and adaptation, which is an `apply_layout` with
    /// `adapted` set so replay maintains the adaptation counter).
    ApplyLayout {
        /// Target table.
        table: String,
        /// The declared expression, as algebra text (displays round-trip
        /// through the parser).
        expr: String,
        /// Reorganization strategy.
        strategy: ReorgStrategy,
        /// Whether the self-adaptation loop declared this layout.
        adapted: bool,
    },
}

const OP_CREATE_TABLE: u8 = 1;
const OP_DROP_TABLE: u8 = 2;
const OP_INSERT: u8 = 3;
const OP_APPLY_LAYOUT: u8 = 4;

/// Encodes a `create_table` op without building a [`DurableOp`].
pub(crate) fn encode_create_table(schema: &Schema) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(OP_CREATE_TABLE);
    enc_schema(&mut e, schema);
    e.buf
}

/// Encodes a `drop_table` op.
pub(crate) fn encode_drop_table(table: &str) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(OP_DROP_TABLE);
    e.str(table);
    e.buf
}

/// Encodes an `insert` op from borrowed rows (the hot logging path — the
/// rows are not cloned).
pub(crate) fn encode_insert(table: &str, rows: &[Record]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(OP_INSERT);
    e.str(table);
    enc_records(&mut e, rows);
    e.buf
}

/// Encodes an `apply_layout` op (with `adapted` marking layouts declared by
/// the self-adaptation loop).
pub(crate) fn encode_apply_layout(
    table: &str,
    expr: &str,
    strategy: ReorgStrategy,
    adapted: bool,
) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(OP_APPLY_LAYOUT);
    e.str(table);
    e.str(expr);
    e.u8(strategy_tag(strategy));
    e.bool(adapted);
    e.buf
}

impl DurableOp {
    /// Serializes the op into the payload of a
    /// [`rodentstore_storage::LogRecord::Op`]. The live logging paths use
    /// the borrowed `encode_*` functions above; this owned variant keeps
    /// round-trip tests honest.
    #[cfg(test)]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            DurableOp::CreateTable(schema) => encode_create_table(schema),
            DurableOp::DropTable(table) => encode_drop_table(table),
            DurableOp::Insert { table, rows } => encode_insert(table, rows),
            DurableOp::ApplyLayout {
                table,
                expr,
                strategy,
                adapted,
            } => encode_apply_layout(table, expr, *strategy, *adapted),
        }
    }

    /// Decodes an op encoded with [`DurableOp::encode`].
    pub fn decode(bytes: &[u8]) -> Result<DurableOp> {
        let mut d = Dec::new(bytes);
        let op = match d.u8()? {
            OP_CREATE_TABLE => DurableOp::CreateTable(dec_schema(&mut d)?),
            OP_DROP_TABLE => DurableOp::DropTable(d.str()?),
            OP_INSERT => DurableOp::Insert {
                table: d.str()?,
                rows: dec_records(&mut d)?,
            },
            OP_APPLY_LAYOUT => DurableOp::ApplyLayout {
                table: d.str()?,
                expr: d.str()?,
                strategy: dec_strategy(d.u8()?)?,
                adapted: d.bool()?,
            },
            other => return Err(corrupt(format!("unknown durable-op tag {other}"))),
        };
        if !d.done() {
            return Err(corrupt("trailing bytes after durable op"));
        }
        Ok(op)
    }
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// Everything a checkpoint persists besides the catalog itself.
pub(crate) struct ManifestContext {
    pub page_size: usize,
    pub page_count: u64,
    pub replay_from_lsn: u64,
    /// Pages free for reuse at checkpoint time — the live free list plus
    /// the extents of retired-but-still-pinned layouts (pins cannot survive
    /// a restart).
    pub free_pages: Vec<PageId>,
    /// The self-adaptation policy, so a reopened database resumes adapting
    /// with the same knobs instead of silently reverting to defaults.
    pub policy: AdaptivePolicy,
    /// The disk-model parameters used for cost estimates.
    pub cost_params: CostParams,
}

/// Decoded manifest contents (pure data; [`crate::Database::open`] turns it
/// back into a live catalog).
pub(crate) struct ManifestData {
    pub page_size: usize,
    pub page_count: u64,
    /// Replay WAL records with `lsn >= replay_from_lsn`; earlier records
    /// are already reflected in this manifest (guards against a crash
    /// between manifest rename and WAL truncation).
    pub replay_from_lsn: u64,
    pub free_pages: Vec<PageId>,
    pub policy: AdaptivePolicy,
    pub cost_params: CostParams,
    pub tables: Vec<TableManifest>,
}

/// One table's persisted state.
pub(crate) struct TableManifest {
    pub schema: Schema,
    pub strategy: ReorgStrategy,
    pub layout_expr: Option<String>,
    pub records: Vec<Record>,
    pub pending: Vec<Record>,
    pub profile: ProfileManifest,
    pub stats: LayoutStats,
    pub rendered: Option<RenderedManifest>,
}

/// Snapshot of a workload profile.
pub(crate) struct ProfileManifest {
    pub decay: f64,
    pub max_templates: u64,
    pub queries_observed: u64,
    pub queries_since_check: u64,
    pub write_weight: f64,
    pub templates: Vec<QueryTemplate>,
}

impl ProfileManifest {
    pub fn into_profile(self) -> WorkloadProfile {
        WorkloadProfile::from_parts(
            self.decay,
            self.max_templates as usize,
            self.queries_observed,
            self.queries_since_check,
            self.write_weight,
            self.templates,
        )
    }
}

/// A rendered layout's persisted description: enough to reattach the stored
/// objects without re-rendering. The expression itself lives in
/// [`TableManifest::layout_expr`]; physical properties are re-derived from
/// it at open time, with the persisted orderings overriding the derived
/// ones (incremental appends clear order claims, and that must survive a
/// restart).
pub(crate) struct RenderedManifest {
    pub name: String,
    pub row_count: u64,
    pub orderings: Vec<Vec<SortKey>>,
    pub objects: Vec<ObjectManifest>,
    pub index: Option<IndexManifest>,
    pub lsm: Option<LsmManifest>,
}

/// A levelled tier's persisted description: the tuning knobs, the sealed
/// runs (reattached from their page extents without re-rendering — runs are
/// immutable once sealed, so the extent alone reproduces them byte for
/// byte), and the memtable rows. The merge key is re-derived from the
/// layout expression at open time, like every other physical property.
pub(crate) struct LsmManifest {
    pub memtable_cap: u64,
    pub fanout: u64,
    pub next_seq: u64,
    pub runs: Vec<LsmRunManifest>,
    pub memtable: Vec<Record>,
}

/// One sealed run's persisted metadata and page extent.
pub(crate) struct LsmRunManifest {
    pub level: u32,
    pub seq: u64,
    pub row_count: u64,
    pub pages: Vec<PageId>,
    pub heap_records: u64,
    pub key_bounds: Option<Vec<(f64, f64)>>,
}

/// A declared index's persisted description: everything
/// [`rodentstore_layout::StoredIndex::from_parts`] needs to reattach the
/// tree from its pages, plus the page extent for free-space accounting.
pub(crate) struct IndexManifest {
    /// `"btree"` or `"rtree"` (the [`StoredIndex::kind_name`] tag).
    pub kind: String,
    pub fields: Vec<String>,
    pub key_kinds: Vec<KeyKind>,
    pub root: PageId,
    pub len: u64,
    pub height: u64,
    pub pages: Vec<PageId>,
    pub outliers: Vec<u64>,
}

/// One stored object's persisted metadata and page extent.
pub(crate) struct ObjectManifest {
    pub name: String,
    pub fields: Vec<String>,
    pub encoding: ObjectEncoding,
    pub codecs: Vec<(String, CodecKind)>,
    pub cell: Option<CellBounds>,
    pub row_count: u64,
    pub ordering: Vec<SortKey>,
    pub pages: Vec<PageId>,
    pub heap_records: u64,
    /// Valid slot count of the open tail page at checkpoint time (`None`
    /// when every page was sealed). Lets `open` refill the page and cut
    /// orphaned post-checkpoint slots.
    pub tail_valid_slots: Option<u32>,
}

fn enc_policy(e: &mut Enc, policy: &AdaptivePolicy, cost_params: CostParams) {
    e.bool(policy.auto);
    e.u64(policy.check_every);
    e.u64(policy.min_queries);
    e.f64(policy.hysteresis);
    e.u8(strategy_tag(policy.strategy));
    e.u64(policy.advisor.cost_model.sample_size as u64);
    e.u64(policy.advisor.cost_model.page_size as u64);
    e.f64(policy.advisor.cost_model.cost_params.seek_ms);
    e.f64(policy.advisor.cost_model.cost_params.transfer_mb_per_s);
    e.u64(policy.advisor.anneal_iterations as u64);
    e.u64(policy.advisor.seed);
    e.f64(cost_params.seek_ms);
    e.f64(cost_params.transfer_mb_per_s);
}

fn dec_policy(d: &mut Dec) -> Result<(AdaptivePolicy, CostParams)> {
    let auto = d.bool()?;
    let check_every = d.u64()?;
    let min_queries = d.u64()?;
    let hysteresis = d.f64()?;
    let strategy = dec_strategy(d.u8()?)?;
    let sample_size = d.u64()? as usize;
    let page_size = d.u64()? as usize;
    let advisor_seek_ms = d.f64()?;
    let advisor_transfer = d.f64()?;
    let anneal_iterations = d.u64()? as usize;
    let seed = d.u64()?;
    let policy = AdaptivePolicy {
        auto,
        check_every,
        min_queries,
        hysteresis,
        strategy,
        advisor: AdvisorOptions {
            cost_model: CostModel {
                sample_size,
                page_size,
                cost_params: CostParams {
                    seek_ms: advisor_seek_ms,
                    transfer_mb_per_s: advisor_transfer,
                },
            },
            anneal_iterations,
            seed,
        },
    };
    let cost_params = CostParams {
        seek_ms: d.f64()?,
        transfer_mb_per_s: d.f64()?,
    };
    Ok((policy, cost_params))
}

fn enc_object_encoding(e: &mut Enc, encoding: &ObjectEncoding) {
    match encoding {
        ObjectEncoding::Rows => {
            e.u8(0);
            e.u32(0);
        }
        ObjectEncoding::ColumnBlocks { block_rows } => {
            e.u8(1);
            e.u32(*block_rows as u32);
        }
        ObjectEncoding::Folded { key_fields } => {
            e.u8(2);
            e.u32(*key_fields as u32);
        }
    }
}

fn dec_object_encoding(d: &mut Dec) -> Result<ObjectEncoding> {
    let tag = d.u8()?;
    let param = d.u32()? as usize;
    Ok(match tag {
        0 => ObjectEncoding::Rows,
        1 => ObjectEncoding::ColumnBlocks { block_rows: param },
        2 => ObjectEncoding::Folded { key_fields: param },
        other => return Err(corrupt(format!("unknown object-encoding tag {other}"))),
    })
}

fn enc_cell(e: &mut Enc, cell: &CellBounds) {
    e.u32(cell.dims.len() as u32);
    for (field, lo, hi) in &cell.dims {
        e.str(field);
        e.f64(*lo);
        e.f64(*hi);
    }
    e.u32(cell.coords.len() as u32);
    for c in &cell.coords {
        e.u32(*c);
    }
}

fn dec_cell(d: &mut Dec) -> Result<CellBounds> {
    let ndims = d.u32()? as usize;
    let mut dims = Vec::with_capacity(ndims.min(1 << 8));
    for _ in 0..ndims {
        let field = d.str()?;
        let lo = d.f64()?;
        let hi = d.f64()?;
        dims.push((field, lo, hi));
    }
    let ncoords = d.u32()? as usize;
    let mut coords = Vec::with_capacity(ncoords.min(1 << 8));
    for _ in 0..ncoords {
        coords.push(d.u32()?);
    }
    Ok(CellBounds { dims, coords })
}

fn enc_object(e: &mut Enc, object: &ObjectManifest) {
    e.str(&object.name);
    e.u32(object.fields.len() as u32);
    for f in &object.fields {
        e.str(f);
    }
    enc_object_encoding(e, &object.encoding);
    e.u32(object.codecs.len() as u32);
    for (field, codec) in &object.codecs {
        e.str(field);
        e.u8(codec_tag(*codec));
    }
    match &object.cell {
        None => e.bool(false),
        Some(cell) => {
            e.bool(true);
            enc_cell(e, cell);
        }
    }
    e.u64(object.row_count);
    enc_sort_keys(e, &object.ordering);
    e.u32(object.pages.len() as u32);
    for page in &object.pages {
        e.u64(*page);
    }
    e.u64(object.heap_records);
    e.u32(object.tail_valid_slots.unwrap_or(NO_TAIL));
}

fn dec_object(d: &mut Dec) -> Result<ObjectManifest> {
    let name = d.str()?;
    let nfields = d.u32()? as usize;
    let mut fields = Vec::with_capacity(nfields.min(1 << 16));
    for _ in 0..nfields {
        fields.push(d.str()?);
    }
    let encoding = dec_object_encoding(d)?;
    let ncodecs = d.u32()? as usize;
    let mut codecs = Vec::with_capacity(ncodecs.min(1 << 16));
    for _ in 0..ncodecs {
        let field = d.str()?;
        codecs.push((field, dec_codec(d.u8()?)?));
    }
    let cell = if d.bool()? { Some(dec_cell(d)?) } else { None };
    let row_count = d.u64()?;
    let ordering = dec_sort_keys(d)?;
    let npages = d.u32()? as usize;
    let mut pages = Vec::with_capacity(npages.min(1 << 20));
    for _ in 0..npages {
        pages.push(d.u64()?);
    }
    let heap_records = d.u64()?;
    let tail_slots = d.u32()?;
    Ok(ObjectManifest {
        name,
        fields,
        encoding,
        codecs,
        cell,
        row_count,
        ordering,
        pages,
        heap_records,
        tail_valid_slots: (tail_slots != NO_TAIL).then_some(tail_slots),
    })
}

fn enc_index(e: &mut Enc, index: &IndexManifest) {
    e.str(&index.kind);
    e.u32(index.fields.len() as u32);
    for f in &index.fields {
        e.str(f);
    }
    e.u32(index.key_kinds.len() as u32);
    for k in &index.key_kinds {
        e.u8(match k {
            KeyKind::Int => 0,
            KeyKind::Float => 1,
        });
    }
    e.u64(index.root);
    e.u64(index.len);
    e.u64(index.height);
    e.u32(index.pages.len() as u32);
    for p in &index.pages {
        e.u64(*p);
    }
    e.u32(index.outliers.len() as u32);
    for o in &index.outliers {
        e.u64(*o);
    }
}

fn dec_index(d: &mut Dec) -> Result<IndexManifest> {
    let kind = d.str()?;
    let nfields = d.u32()? as usize;
    let mut fields = Vec::with_capacity(nfields.min(1 << 8));
    for _ in 0..nfields {
        fields.push(d.str()?);
    }
    let nkinds = d.u32()? as usize;
    let mut key_kinds = Vec::with_capacity(nkinds.min(1 << 8));
    for _ in 0..nkinds {
        key_kinds.push(match d.u8()? {
            0 => KeyKind::Int,
            1 => KeyKind::Float,
            other => return Err(corrupt(format!("unknown index key-kind tag {other}"))),
        });
    }
    let root = d.u64()?;
    let len = d.u64()?;
    let height = d.u64()?;
    let npages = d.u32()? as usize;
    let mut pages = Vec::with_capacity(npages.min(1 << 20));
    for _ in 0..npages {
        pages.push(d.u64()?);
    }
    let noutliers = d.u32()? as usize;
    let mut outliers = Vec::with_capacity(noutliers.min(1 << 20));
    for _ in 0..noutliers {
        outliers.push(d.u64()?);
    }
    Ok(IndexManifest {
        kind,
        fields,
        key_kinds,
        root,
        len,
        height,
        pages,
        outliers,
    })
}

fn enc_lsm(e: &mut Enc, lsm: &LsmManifest) {
    e.u64(lsm.memtable_cap);
    e.u64(lsm.fanout);
    e.u64(lsm.next_seq);
    e.u32(lsm.runs.len() as u32);
    for run in &lsm.runs {
        e.u32(run.level);
        e.u64(run.seq);
        e.u64(run.row_count);
        e.u32(run.pages.len() as u32);
        for p in &run.pages {
            e.u64(*p);
        }
        e.u64(run.heap_records);
        match &run.key_bounds {
            None => e.bool(false),
            Some(bounds) => {
                e.bool(true);
                e.u32(bounds.len() as u32);
                for (lo, hi) in bounds {
                    e.f64(*lo);
                    e.f64(*hi);
                }
            }
        }
    }
    enc_records(e, &lsm.memtable);
}

fn dec_lsm(d: &mut Dec) -> Result<LsmManifest> {
    let memtable_cap = d.u64()?;
    let fanout = d.u64()?;
    let next_seq = d.u64()?;
    let nruns = d.u32()? as usize;
    let mut runs = Vec::with_capacity(nruns.min(1 << 16));
    for _ in 0..nruns {
        let level = d.u32()?;
        let seq = d.u64()?;
        let row_count = d.u64()?;
        let npages = d.u32()? as usize;
        let mut pages = Vec::with_capacity(npages.min(1 << 20));
        for _ in 0..npages {
            pages.push(d.u64()?);
        }
        let heap_records = d.u64()?;
        let key_bounds = if d.bool()? {
            let nbounds = d.u32()? as usize;
            let mut bounds = Vec::with_capacity(nbounds.min(1 << 8));
            for _ in 0..nbounds {
                let lo = d.f64()?;
                let hi = d.f64()?;
                bounds.push((lo, hi));
            }
            Some(bounds)
        } else {
            None
        };
        runs.push(LsmRunManifest {
            level,
            seq,
            row_count,
            pages,
            heap_records,
            key_bounds,
        });
    }
    let memtable = dec_records(d)?;
    Ok(LsmManifest {
        memtable_cap,
        fanout,
        next_seq,
        runs,
        memtable,
    })
}

/// Serializes the whole catalog (plus the file geometry) into manifest
/// bytes. Every rendered layout's heap tails must already be flushed —
/// [`crate::Database::checkpoint`] does that before calling this.
pub(crate) fn encode_manifest(catalog: &CatalogView, ctx: &ManifestContext) -> Result<Vec<u8>> {
    let mut e = Enc::default();
    e.u32(MANIFEST_VERSION);
    e.u64(ctx.page_size as u64);
    e.u64(ctx.page_count);
    e.u64(ctx.replay_from_lsn);
    e.u32(ctx.free_pages.len() as u32);
    for page in &ctx.free_pages {
        e.u64(*page);
    }
    enc_policy(&mut e, &ctx.policy, ctx.cost_params);
    e.u32(catalog.entries().len() as u32);
    for (_, slot, entry) in catalog.entries() {
        enc_schema(&mut e, &entry.schema);
        e.u8(strategy_tag(entry.strategy));
        match &entry.layout_expr {
            None => e.bool(false),
            Some(expr) => {
                e.bool(true);
                e.str(&expr.to_string());
            }
        }
        enc_rows(&mut e, &entry.records);
        enc_rows(&mut e, &entry.pending);
        // Workload profile snapshot (lives on the slot, not the published
        // state; the mutex is leaf-level and held only for the copy-out).
        let profile = slot.profile.lock();
        e.f64(profile.decay());
        e.u64(profile.max_templates() as u64);
        e.u64(profile.queries_observed);
        e.u64(profile.queries_since_check);
        e.f64(profile.write_weight());
        let templates = profile.templates();
        e.u32(templates.len() as u32);
        for t in templates {
            e.str(&t.fingerprint);
            e.f64(t.weight);
            e.u64(t.hits);
            enc_scan_request(&mut e, &t.request);
        }
        drop(profile);
        // Layout statistics.
        e.u64(entry.stats.full_renders);
        e.u64(entry.stats.incremental_appends);
        e.u64(entry.stats.adaptations);
        // Rendered layout, if any.
        match &entry.access {
            None => e.bool(false),
            Some(access) => {
                let layout = access.layout();
                e.bool(true);
                e.str(&layout.name);
                e.u64(layout.row_count as u64);
                let orderings = layout.order_list();
                e.u32(orderings.len() as u32);
                for keys in &orderings {
                    enc_sort_keys(&mut e, keys);
                }
                e.u32(layout.objects.len() as u32);
                for obj in &layout.objects {
                    let pages = obj.heap.page_ids().map_err(RodentError::Storage)?;
                    let mut codecs: Vec<(String, CodecKind)> = obj
                        .codecs
                        .iter()
                        .map(|(field, codec)| (field.clone(), *codec))
                        .collect();
                    codecs.sort_by(|a, b| a.0.cmp(&b.0));
                    enc_object(
                        &mut e,
                        &ObjectManifest {
                            name: obj.name.clone(),
                            fields: obj.fields.clone(),
                            encoding: obj.encoding.clone(),
                            codecs,
                            cell: obj.cell.clone(),
                            row_count: obj.row_count as u64,
                            ordering: obj.ordering.clone(),
                            pages,
                            heap_records: obj.heap.record_count(),
                            tail_valid_slots: obj.heap.tail_valid_slots(),
                        },
                    );
                }
                match &layout.index {
                    None => e.bool(false),
                    Some(idx) => {
                        e.bool(true);
                        let pages = idx
                            .page_ids()
                            .map_err(|err| corrupt(err.to_string()))?;
                        enc_index(
                            &mut e,
                            &IndexManifest {
                                kind: idx.kind_name().to_string(),
                                fields: idx.fields.clone(),
                                key_kinds: idx.key_kinds.clone(),
                                root: idx.root(),
                                len: idx.len(),
                                height: idx.height() as u64,
                                pages,
                                outliers: idx.outliers.clone(),
                            },
                        );
                    }
                }
                match &layout.lsm {
                    None => e.bool(false),
                    Some(lsm) => {
                        e.bool(true);
                        let mut runs = Vec::with_capacity(lsm.runs.len());
                        for run in &lsm.runs {
                            let pages =
                                run.heap.page_ids().map_err(RodentError::Storage)?;
                            runs.push(LsmRunManifest {
                                level: run.level,
                                seq: run.seq,
                                row_count: run.row_count as u64,
                                pages,
                                heap_records: run.heap.record_count(),
                                key_bounds: run.key_bounds.clone(),
                            });
                        }
                        enc_lsm(
                            &mut e,
                            &LsmManifest {
                                memtable_cap: lsm.memtable_cap as u64,
                                fanout: lsm.fanout as u64,
                                next_seq: lsm.next_seq,
                                runs,
                                memtable: lsm.memtable.rows(),
                            },
                        );
                    }
                }
            }
        }
    }
    // Frame: magic + body length + CRC + body.
    let body = e.buf;
    let mut framed = Vec::with_capacity(body.len() + 16);
    framed.extend_from_slice(MANIFEST_MAGIC);
    framed.extend_from_slice(&(body.len() as u32).to_le_bytes());
    framed.extend_from_slice(&crc32(&body).to_le_bytes());
    framed.extend_from_slice(&body);
    Ok(framed)
}

/// Decodes manifest bytes, validating magic, version, and checksum.
pub(crate) fn decode_manifest(bytes: &[u8]) -> Result<ManifestData> {
    if bytes.len() < 16 || &bytes[..8] != MANIFEST_MAGIC {
        return Err(RodentError::Storage(StorageError::NotRodentStore {
            path: "manifest".to_string(),
        }));
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let body = bytes
        .get(16..16 + len)
        .ok_or_else(|| corrupt("manifest body shorter than its header claims"))?;
    if crc32(body) != crc {
        return Err(corrupt("manifest checksum mismatch"));
    }
    let mut d = Dec::new(body);
    let version = d.u32()?;
    if version != MANIFEST_VERSION {
        return Err(RodentError::Storage(StorageError::UnsupportedVersion {
            found: version,
            supported: MANIFEST_VERSION,
        }));
    }
    let page_size = d.u64()? as usize;
    let page_count = d.u64()?;
    let replay_from_lsn = d.u64()?;
    let nfree = d.u32()? as usize;
    let mut free_pages = Vec::with_capacity(nfree.min(1 << 20));
    for _ in 0..nfree {
        free_pages.push(d.u64()?);
    }
    let (policy, cost_params) = dec_policy(&mut d)?;
    let ntables = d.u32()? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1 << 16));
    for _ in 0..ntables {
        let schema = dec_schema(&mut d)?;
        let strategy = dec_strategy(d.u8()?)?;
        let layout_expr = if d.bool()? { Some(d.str()?) } else { None };
        let records = dec_records(&mut d)?;
        let pending = dec_records(&mut d)?;
        let decay = d.f64()?;
        let max_templates = d.u64()?;
        let queries_observed = d.u64()?;
        let queries_since_check = d.u64()?;
        let write_weight = d.f64()?;
        let ntemplates = d.u32()? as usize;
        let mut templates = Vec::with_capacity(ntemplates.min(1 << 12));
        for _ in 0..ntemplates {
            let fingerprint = d.str()?;
            let weight = d.f64()?;
            let hits = d.u64()?;
            let request = dec_scan_request(&mut d)?;
            templates.push(QueryTemplate {
                fingerprint,
                request,
                weight,
                hits,
            });
        }
        let stats = LayoutStats {
            full_renders: d.u64()?,
            incremental_appends: d.u64()?,
            adaptations: d.u64()?,
        };
        let rendered = if d.bool()? {
            let name = d.str()?;
            let row_count = d.u64()?;
            let norderings = d.u32()? as usize;
            let mut orderings = Vec::with_capacity(norderings.min(1 << 8));
            for _ in 0..norderings {
                orderings.push(dec_sort_keys(&mut d)?);
            }
            let nobjects = d.u32()? as usize;
            let mut objects = Vec::with_capacity(nobjects.min(1 << 16));
            for _ in 0..nobjects {
                objects.push(dec_object(&mut d)?);
            }
            let index = if d.bool()? {
                Some(dec_index(&mut d)?)
            } else {
                None
            };
            let lsm = if d.bool()? {
                Some(dec_lsm(&mut d)?)
            } else {
                None
            };
            Some(RenderedManifest {
                name,
                row_count,
                orderings,
                objects,
                index,
                lsm,
            })
        } else {
            None
        };
        tables.push(TableManifest {
            schema,
            strategy,
            layout_expr,
            records,
            pending,
            profile: ProfileManifest {
                decay,
                max_templates,
                queries_observed,
                queries_since_check,
                write_weight,
                templates,
            },
            stats,
            rendered,
        });
    }
    if !d.done() {
        return Err(corrupt("trailing bytes after manifest body"));
    }
    Ok(ManifestData {
        page_size,
        page_count,
        replay_from_lsn,
        free_pages,
        policy,
        cost_params,
        tables,
    })
}

/// Atomically replaces the manifest: write to a temp file, sync it, rename
/// over the real one, and sync the directory so the rename itself is
/// durable.
pub(crate) fn write_manifest_file(dir: &Path, bytes: &[u8]) -> Result<()> {
    let target = dir.join(MANIFEST_FILE);
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    {
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)
            .map_err(io_err)?;
        file.write_all(bytes).map_err(io_err)?;
        file.sync_data().map_err(io_err)?;
    }
    std::fs::rename(&tmp, &target).map_err(io_err)?;
    if let Ok(dir_handle) = File::open(dir) {
        let _ = dir_handle.sync_all();
    }
    Ok(())
}

/// Reads the manifest file of a database directory.
pub(crate) fn read_manifest_file(dir: &Path) -> Result<Vec<u8>> {
    let mut file = File::open(dir.join(MANIFEST_FILE)).map_err(io_err)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(io_err)?;
    Ok(bytes)
}

fn io_err(e: std::io::Error) -> RodentError {
    RodentError::Storage(StorageError::Io(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::comprehension::Condition;

    #[test]
    fn durable_ops_round_trip() {
        let schema = Schema::new(
            "T",
            vec![
                Field::new("a", DataType::Int),
                Field::new("b", DataType::Named("lbl".into(), Box::new(DataType::Float))),
                Field::new("c", DataType::List(vec![DataType::Int, DataType::String])),
            ],
        );
        let ops = vec![
            DurableOp::CreateTable(schema),
            DurableOp::DropTable("T".into()),
            DurableOp::Insert {
                table: "T".into(),
                rows: vec![
                    vec![Value::Int(1), Value::Float(2.5), Value::Str("x".into())],
                    vec![Value::Null, Value::Timestamp(7), Value::Bool(true)],
                ],
            },
            DurableOp::ApplyLayout {
                table: "T".into(),
                expr: "project[a,b](T)".into(),
                strategy: ReorgStrategy::NewDataOnly,
                adapted: true,
            },
        ];
        for op in ops {
            let bytes = op.encode();
            assert_eq!(DurableOp::decode(&bytes).unwrap(), op);
        }
    }

    #[test]
    fn scan_requests_round_trip() {
        let requests = vec![
            ScanRequest::all(),
            ScanRequest::all().fields(["a", "b"]).order(["a"]),
            ScanRequest::all().predicate(
                Condition::range("x", 1.5, 9.5)
                    .and(Condition::eq("tag", "hot"))
                    .and(Condition::Not(Box::new(Condition::Or(vec![
                        Condition::True,
                        Condition::Cmp {
                            left: ElemExpr::Bin(Box::new(ElemExpr::field("y"))),
                            op: CmpOp::Ge,
                            right: ElemExpr::Add(
                                Box::new(ElemExpr::Pos),
                                Box::new(ElemExpr::Literal(Value::Int(3))),
                            ),
                        },
                    ])))),
            ),
        ];
        for request in requests {
            let mut e = Enc::default();
            enc_scan_request(&mut e, &request);
            let mut d = Dec::new(&e.buf);
            let back = dec_scan_request(&mut d).unwrap();
            assert!(d.done());
            assert_eq!(format!("{back:?}"), format!("{request:?}"));
        }
    }

    #[test]
    fn corrupt_ops_are_rejected() {
        let op = DurableOp::Insert {
            table: "T".into(),
            rows: vec![vec![Value::Int(1)]],
        };
        let bytes = op.encode();
        assert!(DurableOp::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(DurableOp::decode(&trailing).is_err());
        assert!(DurableOp::decode(&[99]).is_err());
    }

    #[test]
    fn manifest_frame_detects_corruption() {
        let catalog = CatalogView::empty();
        let ctx = ManifestContext {
            page_size: 4096,
            page_count: 0,
            replay_from_lsn: 0,
            free_pages: vec![3, 7],
            policy: AdaptivePolicy {
                auto: true,
                check_every: 11,
                min_queries: 5,
                hysteresis: 0.25,
                strategy: ReorgStrategy::Lazy,
                ..AdaptivePolicy::default()
            },
            cost_params: CostParams {
                seek_ms: 2.5,
                transfer_mb_per_s: 99.0,
            },
        };
        let bytes = encode_manifest(&catalog, &ctx).unwrap();
        let manifest = decode_manifest(&bytes).unwrap();
        assert_eq!(manifest.page_size, 4096);
        assert!(manifest.tables.is_empty());
        // The v2 fields round-trip.
        assert_eq!(manifest.free_pages, vec![3, 7]);
        assert!(manifest.policy.auto);
        assert_eq!(manifest.policy.check_every, 11);
        assert_eq!(manifest.policy.min_queries, 5);
        assert_eq!(manifest.policy.hysteresis, 0.25);
        assert_eq!(manifest.policy.strategy, ReorgStrategy::Lazy);
        assert_eq!(manifest.cost_params.seek_ms, 2.5);
        assert_eq!(manifest.cost_params.transfer_mb_per_s, 99.0);

        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(decode_manifest(&flipped).is_err());
        assert!(decode_manifest(b"RDNTMAN1").is_err());
        assert!(decode_manifest(b"not a manifest at all").is_err());
    }
}
