//! Live workload capture: the observe side of the adaptivity loop.
//!
//! The paper's storage design optimizer assumes somebody hands it a
//! [`Workload`]. In a running system nobody does — the system has to watch
//! its own traffic. [`WorkloadProfile`] is that watcher: every
//! `scan`/`open_cursor`/`get_element` against a table is folded into a small
//! set of *query templates* (projection + predicate shape + requested order),
//! each carrying an exponentially decaying weight. Old traffic fades, a
//! shifted workload dominates the profile within tens of queries, and
//! [`WorkloadProfile::to_workload`] converts the profile straight into the
//! advisor's input — no user-built workload required.
//!
//! Templates are keyed by a *fingerprint* that abstracts literals away:
//! `lat:42.1..42.2 & lon:-71.2..-71.1` and `lat:40.0..40.3 & lon:8.0..8.1`
//! are the same template (same fields, same shape), so a spatial dashboard
//! firing thousands of distinct boxes collapses into one heavily weighted
//! template whose representative request carries the latest literals.

use rodentstore_algebra::comprehension::{Condition, ElemExpr};
use rodentstore_exec::ScanRequest;
use rodentstore_optimizer::Workload;

/// One observed query shape with its decayed frequency.
#[derive(Debug, Clone)]
pub struct QueryTemplate {
    /// Structural fingerprint (fields + predicate shape + order, literals
    /// abstracted away).
    pub fingerprint: String,
    /// The most recent concrete request matching the fingerprint; its
    /// literals (range bounds, equality constants) represent the template
    /// when the profile is turned into a [`Workload`].
    pub request: ScanRequest,
    /// Exponentially decayed weight (recent hits count ~1 each).
    pub weight: f64,
    /// Total raw hits since the template appeared.
    pub hits: u64,
}

/// A decaying per-table profile of the live query traffic.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    templates: Vec<QueryTemplate>,
    /// Total queries observed over the table's lifetime.
    pub queries_observed: u64,
    /// Queries observed since the last adaptation check (reset by
    /// [`WorkloadProfile::end_check_window`]).
    pub queries_since_check: u64,
    decay: f64,
    max_templates: usize,
    /// Exponentially decayed weight of insert batches (recent batches count
    /// ~1 each, on the same decay clock as the query templates). The ratio
    /// of this weight to the total template weight is what lets the advisor
    /// notice a write-heavy phase and propose a levelled (`lsm`) tier.
    write_weight: f64,
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        WorkloadProfile {
            templates: Vec::new(),
            queries_observed: 0,
            queries_since_check: 0,
            decay: 0.95,
            max_templates: 16,
            write_weight: 0.0,
        }
    }
}

impl WorkloadProfile {
    /// A profile with an explicit decay factor (per observed query) and
    /// template capacity.
    pub fn with_decay(decay: f64, max_templates: usize) -> WorkloadProfile {
        WorkloadProfile {
            decay: decay.clamp(0.0, 1.0),
            max_templates: max_templates.max(1),
            ..WorkloadProfile::default()
        }
    }

    /// Reassembles a profile from a persisted snapshot (the durability
    /// layer's manifest stores the templates plus the tuning knobs, so a
    /// reopened database resumes adaptation exactly where it left off).
    pub fn from_parts(
        decay: f64,
        max_templates: usize,
        queries_observed: u64,
        queries_since_check: u64,
        write_weight: f64,
        mut templates: Vec<QueryTemplate>,
    ) -> WorkloadProfile {
        templates.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        WorkloadProfile {
            templates,
            queries_observed,
            queries_since_check,
            decay: decay.clamp(0.0, 1.0),
            max_templates: max_templates.max(1),
            write_weight: if write_weight.is_finite() {
                write_weight.max(0.0)
            } else {
                0.0
            },
        }
    }

    /// The decay factor applied to template weights per observed query.
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// The maximum number of templates the profile tracks.
    pub fn max_templates(&self) -> usize {
        self.max_templates
    }

    /// The tracked templates, heaviest first.
    pub fn templates(&self) -> &[QueryTemplate] {
        &self.templates
    }

    /// The decayed weight of observed insert batches.
    pub fn write_weight(&self) -> f64 {
        self.write_weight
    }

    /// The fraction of recent (decay-weighted) traffic that was inserts:
    /// `write / (write + reads)`, 0.0 for a profile that never saw a write.
    pub fn write_fraction(&self) -> f64 {
        let reads: f64 = self.templates.iter().map(|t| t.weight).sum();
        let total = reads + self.write_weight;
        if total > 0.0 {
            self.write_weight / total
        } else {
            0.0
        }
    }

    /// Records one insert batch. Inserts share the decay clock with the
    /// query templates (each event fades the other side), so a table that
    /// stops being written drifts back toward a read profile within tens of
    /// queries — the same dynamics `record_scan` gives shifted read traffic.
    /// Inserts also count toward the adaptation-check window: a write flood
    /// must be able to trigger a re-advise even when reads are sparse.
    pub fn record_insert(&mut self) {
        self.queries_observed += 1;
        self.queries_since_check += 1;
        for t in &mut self.templates {
            t.weight *= self.decay;
        }
        self.write_weight = self.write_weight * self.decay + 1.0;
    }

    /// Records one `scan`/`open_cursor` request.
    pub fn record_scan(&mut self, request: &ScanRequest) {
        let fingerprint = fingerprint_request(request);
        self.record(fingerprint, request.clone());
    }

    /// Records one positional `get_element` access. Positional access is
    /// profiled as a projection-only template over the requested fields: it
    /// tells the advisor which fields are co-accessed, which is the part of
    /// the access that layout choice can help with.
    pub fn record_get_element(&mut self, fields: Option<&[String]>) {
        let request = match fields {
            Some(fields) => ScanRequest::all().fields(fields.to_vec()),
            None => ScanRequest::all(),
        };
        let fingerprint = format!("get|{}", fingerprint_request(&request));
        self.record(fingerprint, request);
    }

    fn record(&mut self, fingerprint: String, request: ScanRequest) {
        self.queries_observed += 1;
        self.queries_since_check += 1;
        for t in &mut self.templates {
            t.weight *= self.decay;
        }
        self.write_weight *= self.decay;
        if let Some(t) = self.templates.iter_mut().find(|t| t.fingerprint == fingerprint) {
            t.weight += 1.0;
            t.hits += 1;
            t.request = request;
        } else {
            if self.templates.len() >= self.max_templates {
                // Evict the faintest template to bound the profile.
                if let Some(pos) = self
                    .templates
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1.weight
                            .partial_cmp(&b.1.weight)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i)
                {
                    self.templates.remove(pos);
                }
            }
            self.templates.push(QueryTemplate {
                fingerprint,
                request,
                weight: 1.0,
                hits: 1,
            });
        }
        self.templates.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    /// Closes an adaptation-check window (resets the per-window counter).
    pub fn end_check_window(&mut self) {
        self.queries_since_check = 0;
    }

    /// Converts the profile into the advisor's [`Workload`]: one weighted
    /// query per template, faint templates (weight < 1% of the total)
    /// dropped so stale traffic cannot anchor the recommendation.
    pub fn to_workload(&self) -> Workload {
        let total: f64 = self.templates.iter().map(|t| t.weight).sum();
        let mut workload = Workload::new();
        for t in &self.templates {
            if total > 0.0 && t.weight < total * 0.01 {
                continue;
            }
            workload = workload.weighted_query(t.request.clone(), t.weight);
        }
        workload.with_write_weight(self.write_weight)
    }
}

/// Structural fingerprint of a request: projection fields, predicate shape
/// with literals replaced by `?`, and order keys.
fn fingerprint_request(request: &ScanRequest) -> String {
    let fields = match &request.fields {
        Some(fields) => fields.join(","),
        None => "*".to_string(),
    };
    let predicate = match &request.predicate {
        Some(pred) => fingerprint_condition(pred),
        None => "true".to_string(),
    };
    let order = match &request.order {
        Some(keys) => keys
            .iter()
            .map(|k| format!("{} {}", k.field, k.order))
            .collect::<Vec<_>>()
            .join(","),
        None => String::new(),
    };
    format!("{fields}|{predicate}|{order}")
}

fn fingerprint_condition(cond: &Condition) -> String {
    match cond {
        Condition::True => "true".into(),
        Condition::Range { field, .. } => format!("{field}:?..?"),
        Condition::Cmp { left, op, right } => {
            format!("{}{op}{}", fingerprint_elem(left), fingerprint_elem(right))
        }
        Condition::And(items) => {
            let parts: Vec<String> = items.iter().map(fingerprint_condition).collect();
            format!("({})", parts.join(" & "))
        }
        Condition::Or(items) => {
            let parts: Vec<String> = items.iter().map(fingerprint_condition).collect();
            format!("({})", parts.join(" | "))
        }
        Condition::Not(inner) => format!("!({})", fingerprint_condition(inner)),
    }
}

fn fingerprint_elem(e: &ElemExpr) -> String {
    match e {
        ElemExpr::Literal(_) => "?".into(),
        ElemExpr::Field(name) => name.clone(),
        ElemExpr::Pos => "pos()".into(),
        ElemExpr::Count => "count()".into(),
        ElemExpr::Bin(inner) => format!("bin({})", fingerprint_elem(inner)),
        ElemExpr::Interleave(items) => {
            let parts: Vec<String> = items.iter().map(fingerprint_elem).collect();
            format!("interleave({})", parts.join(","))
        }
        ElemExpr::Sub(a, b) => format!("{}-{}", fingerprint_elem(a), fingerprint_elem(b)),
        ElemExpr::Add(a, b) => format!("{}+{}", fingerprint_elem(a), fingerprint_elem(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::comprehension::Condition;

    fn spatial(lo: f64) -> ScanRequest {
        ScanRequest::all()
            .fields(["lat", "lon"])
            .predicate(Condition::range("lat", lo, lo + 0.1).and(Condition::range(
                "lon",
                -lo,
                -lo + 0.1,
            )))
    }

    #[test]
    fn same_shape_different_literals_collapse_into_one_template() {
        let mut profile = WorkloadProfile::default();
        for i in 0..50 {
            profile.record_scan(&spatial(40.0 + i as f64 * 0.01));
        }
        assert_eq!(profile.templates().len(), 1);
        assert_eq!(profile.templates()[0].hits, 50);
        assert_eq!(profile.queries_observed, 50);
        // The representative request carries the latest literals.
        let workload = profile.to_workload();
        assert_eq!(workload.queries.len(), 1);
    }

    #[test]
    fn decay_lets_a_shifted_workload_dominate() {
        let mut profile = WorkloadProfile::default();
        for _ in 0..100 {
            profile.record_scan(&spatial(40.0));
        }
        let narrow = ScanRequest::all().fields(["lat"]);
        for _ in 0..60 {
            profile.record_scan(&narrow);
        }
        let templates = profile.templates();
        assert_eq!(templates.len(), 2);
        assert!(
            templates[0].request.fields == Some(vec!["lat".to_string()]),
            "the recent template must dominate, got {templates:?}"
        );
        assert!(templates[0].weight > 4.0 * templates[1].weight);
    }

    #[test]
    fn template_capacity_is_bounded_with_faintest_evicted() {
        let mut profile = WorkloadProfile::with_decay(0.9, 4);
        for i in 0..20 {
            // 20 distinct shapes (different projections).
            profile.record_scan(&ScanRequest::all().fields([format!("f{i}")]));
        }
        assert_eq!(profile.templates().len(), 4);
        // The survivors are the most recent shapes.
        assert!(profile
            .templates()
            .iter()
            .any(|t| t.request.fields == Some(vec!["f19".to_string()])));
    }

    #[test]
    fn get_element_is_profiled_as_field_co_access() {
        let mut profile = WorkloadProfile::default();
        let fields = vec!["lat".to_string(), "lon".to_string()];
        profile.record_get_element(Some(&fields));
        profile.record_get_element(None);
        assert_eq!(profile.templates().len(), 2);
        let workload = profile.to_workload();
        assert_eq!(workload.queries.len(), 2);
        assert!(workload
            .referenced_fields()
            .contains(&"lat".to_string()));
    }

    #[test]
    fn faint_templates_are_dropped_from_the_workload() {
        let mut profile = WorkloadProfile::default();
        profile.record_scan(&ScanRequest::all().fields(["t"]));
        for _ in 0..400 {
            profile.record_scan(&spatial(40.0));
        }
        // The single old projection query decayed to < 1% of total weight.
        let workload = profile.to_workload();
        assert_eq!(workload.queries.len(), 1);
    }

    #[test]
    fn write_weight_rises_with_inserts_and_fades_under_reads() {
        let mut profile = WorkloadProfile::default();
        assert_eq!(profile.write_fraction(), 0.0);
        for _ in 0..200 {
            profile.record_insert();
        }
        profile.record_scan(&spatial(40.0));
        assert!(
            profile.write_fraction() > 0.9,
            "a write flood must dominate, got {}",
            profile.write_fraction()
        );
        // The workload handed to the advisor carries the write pressure.
        assert!(profile.to_workload().write_weight > 1.0);
        // A long read-only phase fades the write weight back out.
        for _ in 0..200 {
            profile.record_scan(&spatial(40.0));
        }
        assert!(
            profile.write_fraction() < 0.05,
            "reads must reclaim the profile, got {}",
            profile.write_fraction()
        );
        // Inserts count toward the adaptation-check window.
        profile.end_check_window();
        profile.record_insert();
        assert_eq!(profile.queries_since_check, 1);
    }

    #[test]
    fn check_window_counts_and_resets() {
        let mut profile = WorkloadProfile::default();
        for _ in 0..5 {
            profile.record_scan(&ScanRequest::all());
        }
        assert_eq!(profile.queries_since_check, 5);
        profile.end_check_window();
        assert_eq!(profile.queries_since_check, 0);
        assert_eq!(profile.queries_observed, 5);
    }
}
