//! Engine-side observability: the database's metrics registry, event ring,
//! and the pre-resolved instrument handles every hot path records through.
//!
//! The instruments live in `rodentstore_obs`; this module owns the *names*.
//! Every dotted metric name the engine emits is declared here (and listed by
//! [`metric_names`]), forming the stable contract documented in
//! `docs/OBSERVABILITY.md`. Handles are resolved once at database
//! construction, so recording on a hot path is a relaxed atomic bump — the
//! registry's registration lock is never touched again.
//!
//! Recording is gated on one relaxed [`AtomicBool`]
//! ([`EngineObs::enabled`]): disabling observability reduces every
//! instrumentation site to a single relaxed load, which is how the
//! `scan_hot_path` bench measures the overhead of the metrics themselves.

use rodentstore_obs::{Counter, EventRing, Histogram, Registry as MetricsRegistry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Every instrument the engine records into, resolved once at construction.
///
/// Grouped by subsystem; the dotted names are the public contract.
#[derive(Debug, Clone)]
pub struct Instruments {
    // Scans.
    /// `scan.count` — scans served (all access paths).
    pub scan_count: Arc<Counter>,
    /// `scan.rows` — rows returned by scans.
    pub scan_rows: Arc<Counter>,
    /// `scan.pages` — pages read on behalf of scans (pager I/O delta).
    pub scan_pages: Arc<Counter>,
    /// `scan.micros` — end-to-end scan latency.
    pub scan_micros: Arc<Histogram>,
    /// `scan.frame_hits` — pages served to scans as shared frames (no copy).
    pub scan_frame_hits: Arc<Counter>,
    /// `scan.frame_copies` — pages scans had to copy out of the store
    /// (forced-copy mode, or a file store without an mmap window).
    pub scan_frame_copies: Arc<Counter>,
    /// `scan.agg_rows_folded` — rows folded by windowed-aggregate scans
    /// (these rows are never materialized, so they do not count toward
    /// `scan.rows`).
    pub scan_agg_rows_folded: Arc<Counter>,
    /// `get_element.count` — positional element reads.
    pub get_element_count: Arc<Counter>,

    // Inserts.
    /// `insert.batches` — insert calls.
    pub insert_batches: Arc<Counter>,
    /// `insert.rows` — rows inserted.
    pub insert_rows: Arc<Counter>,
    /// `insert.micros` — end-to-end insert latency (including WAL commit).
    pub insert_micros: Arc<Histogram>,

    // The write-optimized tier.
    /// `lsm.spills` — level-0 runs sealed from the memtable.
    pub lsm_spills: Arc<Counter>,
    /// `lsm.spill.rows` — rows sealed into level-0 runs.
    pub lsm_spill_rows: Arc<Counter>,
    /// `lsm.spill.pages` — pages written by spills.
    pub lsm_spill_pages: Arc<Counter>,
    /// `lsm.merges` — level merges performed by compaction.
    pub lsm_merges: Arc<Counter>,
    /// `lsm.pages_written` — pages written by compaction merges.
    pub lsm_pages_written: Arc<Counter>,
    /// `lsm.pages_freed` — pages vacated by compaction merges.
    pub lsm_pages_freed: Arc<Counter>,
    /// `lsm.absorb_micros` — latency of one absorb call (the satellite
    /// tail-latency proof: amortized compaction caps its p99).
    pub lsm_absorb_micros: Arc<Histogram>,
    /// `lsm.absorb.merges` — level merges run by a single absorb (the
    /// amortization invariant: max ≤ spills per absorb).
    pub lsm_absorb_merges: Arc<Histogram>,
    /// `lsm.compaction.levels` — the level index of each merge.
    pub lsm_compaction_levels: Arc<Histogram>,

    // The adaptive loop.
    /// `adapt.checks` — advisor check windows evaluated.
    pub adapt_checks: Arc<Counter>,
    /// `adapt.adaptations` — checks that re-declared the layout.
    pub adapt_adaptations: Arc<Counter>,
    /// `adapt.advise_micros` — advisor wall-clock per check.
    pub adapt_advise_micros: Arc<Histogram>,

    // Durability.
    /// `checkpoint.count` — checkpoints completed.
    pub checkpoint_count: Arc<Counter>,
    /// `checkpoint.pages_freed` — pages returned to the free list.
    pub checkpoint_pages_freed: Arc<Counter>,
    /// `checkpoint.micros` — checkpoint wall-clock.
    pub checkpoint_micros: Arc<Histogram>,
    /// `wal.truncations` — WAL truncations after checkpoints.
    pub wal_truncations: Arc<Counter>,
    /// `wal.truncated_bytes` — log bytes dropped by truncations.
    pub wal_truncated_bytes: Arc<Counter>,
    /// `wal.commit_micros` — WAL commit latency (installed into the WAL).
    pub wal_commit_micros: Arc<Histogram>,
    /// `wal.fsync_micros` — fsync latency (installed into the WAL).
    pub wal_fsync_micros: Arc<Histogram>,

    // Epoch-based reclamation.
    /// `epoch.reaps` — reclamation sweeps that freed something.
    pub epoch_reaps: Arc<Counter>,
    /// `epoch.reclaimed_pages` — pages reclaimed from retired renderings.
    pub epoch_reclaimed_pages: Arc<Counter>,
    /// `epoch.retired_bytes` — bytes those pages represent.
    pub epoch_retired_bytes: Arc<Counter>,
}

impl Instruments {
    /// Resolves every handle against `registry` (registering the names on
    /// first use).
    fn resolve(registry: &MetricsRegistry) -> Instruments {
        Instruments {
            scan_count: registry.counter("scan.count"),
            scan_rows: registry.counter("scan.rows"),
            scan_pages: registry.counter("scan.pages"),
            scan_micros: registry.histogram("scan.micros"),
            scan_frame_hits: registry.counter("scan.frame_hits"),
            scan_frame_copies: registry.counter("scan.frame_copies"),
            scan_agg_rows_folded: registry.counter("scan.agg_rows_folded"),
            get_element_count: registry.counter("get_element.count"),
            insert_batches: registry.counter("insert.batches"),
            insert_rows: registry.counter("insert.rows"),
            insert_micros: registry.histogram("insert.micros"),
            lsm_spills: registry.counter("lsm.spills"),
            lsm_spill_rows: registry.counter("lsm.spill.rows"),
            lsm_spill_pages: registry.counter("lsm.spill.pages"),
            lsm_merges: registry.counter("lsm.merges"),
            lsm_pages_written: registry.counter("lsm.pages_written"),
            lsm_pages_freed: registry.counter("lsm.pages_freed"),
            lsm_absorb_micros: registry.histogram("lsm.absorb_micros"),
            lsm_absorb_merges: registry.histogram("lsm.absorb.merges"),
            lsm_compaction_levels: registry.histogram("lsm.compaction.levels"),
            adapt_checks: registry.counter("adapt.checks"),
            adapt_adaptations: registry.counter("adapt.adaptations"),
            adapt_advise_micros: registry.histogram("adapt.advise_micros"),
            checkpoint_count: registry.counter("checkpoint.count"),
            checkpoint_pages_freed: registry.counter("checkpoint.pages_freed"),
            checkpoint_micros: registry.histogram("checkpoint.micros"),
            wal_truncations: registry.counter("wal.truncations"),
            wal_truncated_bytes: registry.counter("wal.truncated_bytes"),
            wal_commit_micros: registry.histogram("wal.commit_micros"),
            wal_fsync_micros: registry.histogram("wal.fsync_micros"),
            epoch_reaps: registry.counter("epoch.reaps"),
            epoch_reclaimed_pages: registry.counter("epoch.reclaimed_pages"),
            epoch_retired_bytes: registry.counter("epoch.retired_bytes"),
        }
    }
}

/// The stable metric-name catalog: every counter and histogram the engine
/// registers, in name order. Benches and CI validate their emitted
/// `BENCH_*.json` metric sections against this list; changing a name is a
/// breaking change to `docs/OBSERVABILITY.md`.
pub fn metric_names() -> &'static [&'static str] {
    &[
        "adapt.adaptations",
        "adapt.advise_micros",
        "adapt.checks",
        "checkpoint.count",
        "checkpoint.micros",
        "checkpoint.pages_freed",
        "epoch.reaps",
        "epoch.reclaimed_pages",
        "epoch.retired_bytes",
        "get_element.count",
        "insert.batches",
        "insert.micros",
        "insert.rows",
        "lsm.absorb.merges",
        "lsm.absorb_micros",
        "lsm.compaction.levels",
        "lsm.merges",
        "lsm.pages_freed",
        "lsm.pages_written",
        "lsm.spill.pages",
        "lsm.spill.rows",
        "lsm.spills",
        "scan.agg_rows_folded",
        "scan.count",
        "scan.frame_copies",
        "scan.frame_hits",
        "scan.micros",
        "scan.pages",
        "scan.rows",
        "wal.commit_micros",
        "wal.fsync_micros",
        "wal.truncated_bytes",
        "wal.truncations",
    ]
}

/// The engine's observability state: one registry, one event ring, one
/// enable flag, and the resolved instrument handles. One per [`Database`],
/// shared by reference with every instrumentation site.
///
/// [`Database`]: crate::Database
#[derive(Debug)]
pub struct EngineObs {
    /// The metrics registry backing [`Database::metrics`].
    ///
    /// [`Database::metrics`]: crate::Database::metrics
    pub registry: Arc<MetricsRegistry>,
    /// The decision-trace ring backing [`Database::events`].
    ///
    /// [`Database::events`]: crate::Database::events
    pub events: Arc<EventRing>,
    enabled: AtomicBool,
    /// The pre-resolved handles.
    pub ins: Instruments,
}

impl EngineObs {
    /// A fresh observability state with every instrument registered and
    /// recording enabled.
    pub fn new() -> EngineObs {
        let registry = Arc::new(MetricsRegistry::new());
        let ins = Instruments::resolve(&registry);
        EngineObs {
            registry,
            events: Arc::new(EventRing::default()),
            enabled: AtomicBool::new(true),
            ins,
        }
    }

    /// Whether instrumentation sites should record (one relaxed load).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording. Disabling does not clear anything —
    /// counters keep their values and the ring keeps its events.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }
}

impl Default for EngineObs {
    fn default() -> EngineObs {
        EngineObs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_registered_instruments() {
        // Resolving the instruments must register exactly the catalog.
        let obs = EngineObs::new();
        let snap = obs.registry.snapshot();
        let registered: Vec<&str> = snap
            .counters()
            .map(|(name, _)| name)
            .chain(snap.histograms().map(|(name, _)| name))
            .collect();
        let mut sorted = registered.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, metric_names(), "catalog out of sync");
    }

    #[test]
    fn enable_flag_round_trips() {
        let obs = EngineObs::new();
        assert!(obs.enabled());
        obs.set_enabled(false);
        assert!(!obs.enabled());
    }
}
