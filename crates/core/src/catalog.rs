//! The catalog: schemas, layout expressions, and canonical data per table.

use crate::monitor::WorkloadProfile;
use crate::reorg::ReorgStrategy;
use crate::{Result, RodentError};
use rodentstore_algebra::expr::LayoutExpr;
use rodentstore_algebra::schema::Schema;
use rodentstore_algebra::value::Record;
use rodentstore_exec::AccessMethods;

/// Counters tracking how a table's physical representation has been
/// maintained — the observability hooks of the adaptivity loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayoutStats {
    /// Full renders of the layout (every canonical row rewritten).
    pub full_renders: u64,
    /// Incremental absorptions of pending rows into the existing
    /// representation (no full rewrite).
    pub incremental_appends: u64,
    /// Layout changes applied by the self-adaptation loop
    /// ([`crate::Database::maybe_adapt`]).
    pub adaptations: u64,
}

/// Catalog entry for one logical table.
pub struct TableEntry {
    /// Logical schema.
    pub schema: Schema,
    /// Canonical row-major contents (the input to layout rendering).
    pub records: Vec<Record>,
    /// The currently declared layout expression, if any.
    pub layout_expr: Option<LayoutExpr>,
    /// The rendered layout (absent until rendered — lazily or eagerly).
    pub access: Option<AccessMethods>,
    /// Reorganization strategy used when the layout changes.
    pub strategy: ReorgStrategy,
    /// Records inserted since the layout was last rendered (used by the
    /// new-data-only strategy and to detect staleness).
    pub pending: Vec<Record>,
    /// Decaying profile of the live query traffic against this table.
    pub profile: WorkloadProfile,
    /// Render/append/adaptation counters.
    pub stats: LayoutStats,
}

impl std::fmt::Debug for TableEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableEntry")
            .field("schema", &self.schema.to_string())
            .field("rows", &self.records.len())
            .field("pending", &self.pending.len())
            .field(
                "layout",
                &self.layout_expr.as_ref().map(|e| e.to_string()),
            )
            .finish()
    }
}

impl TableEntry {
    /// Creates an empty entry for a schema.
    pub fn new(schema: Schema) -> TableEntry {
        TableEntry {
            schema,
            records: Vec::new(),
            layout_expr: None,
            access: None,
            strategy: ReorgStrategy::Eager,
            pending: Vec::new(),
            profile: WorkloadProfile::default(),
            stats: LayoutStats::default(),
        }
    }

    /// Total number of rows (rendered plus pending).
    pub fn row_count(&self) -> usize {
        self.records.len()
    }
}

/// The catalog of all tables in a database.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<(String, TableEntry)>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a new table.
    pub fn create(&mut self, schema: Schema) -> Result<()> {
        let name = schema.name().to_string();
        if self.get(&name).is_ok() {
            return Err(RodentError::TableExists(name));
        }
        self.tables.push((name, TableEntry::new(schema)));
        Ok(())
    }

    /// Removes a table.
    pub fn drop(&mut self, table: &str) -> Result<()> {
        let before = self.tables.len();
        self.tables.retain(|(name, _)| name != table);
        if self.tables.len() == before {
            return Err(RodentError::UnknownTable(table.to_string()));
        }
        Ok(())
    }

    /// Immutable access to a table entry.
    pub fn get(&self, table: &str) -> Result<&TableEntry> {
        self.tables
            .iter()
            .find(|(name, _)| name == table)
            .map(|(_, entry)| entry)
            .ok_or_else(|| RodentError::UnknownTable(table.to_string()))
    }

    /// Mutable access to a table entry.
    pub fn get_mut(&mut self, table: &str) -> Result<&mut TableEntry> {
        self.tables
            .iter_mut()
            .find(|(name, _)| name == table)
            .map(|(_, entry)| entry)
            .ok_or_else(|| RodentError::UnknownTable(table.to_string()))
    }

    /// Names of all tables, in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.iter().map(|(name, _)| name.clone()).collect()
    }

    /// All schemas (used to validate multi-table expressions like `prejoin`).
    pub fn schemas(&self) -> Vec<Schema> {
        self.tables
            .iter()
            .map(|(_, entry)| entry.schema.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::schema::Field;
    use rodentstore_algebra::types::DataType;

    fn schema(name: &str) -> Schema {
        Schema::new(name, vec![Field::new("x", DataType::Int)])
    }

    #[test]
    fn create_get_drop() {
        let mut catalog = Catalog::new();
        catalog.create(schema("A")).unwrap();
        catalog.create(schema("B")).unwrap();
        assert_eq!(catalog.table_names(), vec!["A", "B"]);
        assert!(catalog.get("A").is_ok());
        assert!(matches!(
            catalog.create(schema("A")),
            Err(RodentError::TableExists(_))
        ));
        catalog.drop("A").unwrap();
        assert!(matches!(catalog.get("A"), Err(RodentError::UnknownTable(_))));
        assert!(matches!(catalog.drop("A"), Err(RodentError::UnknownTable(_))));
    }

    #[test]
    fn entries_track_rows_and_layout() {
        let mut catalog = Catalog::new();
        catalog.create(schema("A")).unwrap();
        let entry = catalog.get_mut("A").unwrap();
        entry.records.push(vec![rodentstore_algebra::Value::Int(1)]);
        assert_eq!(entry.row_count(), 1);
        assert!(entry.layout_expr.is_none());
        assert_eq!(catalog.schemas().len(), 1);
    }
}
