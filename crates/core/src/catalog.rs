//! The catalog: schemas, layout expressions, and canonical data per table.
//!
//! Since the lock-free-read refactor the catalog is a *registry of
//! per-table slots*. Each [`TableSlot`] publishes an immutable
//! [`TableState`] through an [`AtomicArc`]; readers pin a consistent view
//! with two atomic operations (an epoch pin plus a pointer load — see
//! `rodentstore_sync`) and **never** take a lock. Writers build a new
//! `TableState` aside, swap it in under the slot's short writer mutex, and
//! retire the superseded state through the database's epoch scheme.
//!
//! The registry's table map is itself published the same way, so a
//! `create`/`drop` of one table never blocks a pin on another, and a
//! re-render of table A cannot delay a reader of table B.
//!
//! Mutable per-table side state that is *not* part of the snapshot — the
//! live [`WorkloadProfile`], the adaptation in-flight flag, and the durable
//! commit queue — lives on the slot, sharded per table.

use crate::monitor::WorkloadProfile;
use crate::reorg::ReorgStrategy;
use crate::{Result, RodentError};
use parking_lot::Mutex;
use rodentstore_algebra::expr::LayoutExpr;
use rodentstore_algebra::schema::Schema;
use rodentstore_algebra::value::Record;
use rodentstore_exec::AccessMethods;
use rodentstore_sync::{AtomicArc, EpochGuard};
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Orders the *resolution* of a table's durable inserts by their apply
/// order.
///
/// An insert applies its rows (and takes a ticket) under the table's writer
/// mutex, then commits to the WAL with the mutex released — so commits can
/// share fsyncs. Resolutions, however, must happen in apply order: a failed
/// commit rolls its rows back *positionally*, and that position is only
/// meaningful if every earlier insert has already resolved (its rows either
/// confirmed in place, or removed — in which case they sat wholly *before*
/// ours, and the `removed` counter tells us how far our start shifted).
/// Out-of-order rollbacks could otherwise delete a neighbor's committed
/// rows or leave doomed rows behind.
pub struct CommitQueue {
    state: StdMutex<CommitQueueState>,
    resolved: Condvar,
}

struct CommitQueueState {
    /// Next ticket to hand out (under the writer mutex, at apply).
    next_ticket: u64,
    /// The ticket whose turn it is to resolve.
    resolve_next: u64,
    /// Total rows removed by rollbacks on this table (monotone).
    removed: u64,
}

impl Default for CommitQueue {
    fn default() -> Self {
        CommitQueue {
            state: StdMutex::new(CommitQueueState {
                next_ticket: 0,
                resolve_next: 0,
                removed: 0,
            }),
            resolved: Condvar::new(),
        }
    }
}

impl CommitQueue {
    /// Takes the next ticket (call while holding the writer mutex, right
    /// after the insert applied). Returns the ticket and the rows removed by
    /// rollbacks so far.
    pub fn take_ticket(&self) -> (u64, u64) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        (ticket, state.removed)
    }

    /// Blocks until it is `ticket`'s turn to resolve. Returns the number of
    /// rows removed by rollbacks since the paired [`CommitQueue::take_ticket`]
    /// — all of them positioned before this insert's rows.
    pub fn await_turn(&self, ticket: u64, removed_at_apply: u64) -> u64 {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.resolve_next != ticket {
            state = self
                .resolved
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        state.removed - removed_at_apply
    }

    /// Completes `ticket`'s resolution (`removed_rows` > 0 when it rolled
    /// back), releasing the next ticket in line.
    pub fn finish(&self, ticket: u64, removed_rows: u64) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(state.resolve_next, ticket);
        state.resolve_next = ticket + 1;
        state.removed += removed_rows;
        self.resolved.notify_all();
    }
}

/// Counters tracking how a table's physical representation has been
/// maintained — the observability hooks of the adaptivity loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayoutStats {
    /// Full renders of the layout (every canonical row rewritten).
    pub full_renders: u64,
    /// Incremental absorptions of pending rows into the existing
    /// representation (no full rewrite).
    pub incremental_appends: u64,
    /// Layout changes applied by the self-adaptation loop
    /// ([`crate::Database::maybe_adapt`]).
    pub adaptations: u64,
}

/// An immutable store of canonical rows, organized as a short list of
/// shared chunks.
///
/// A published [`TableState`] (and every snapshot pinning it) holds the row
/// store by value, so a plain `Vec` would force each insert to deep-copy
/// every row already present — O(n²) across a workload of small durable
/// commits. Chunking makes the clone O(chunks): an insert clones the chunk
/// *list*, pushes its rows as a fresh chunk, and merges trailing chunks
/// only while the newest is at least half its predecessor's size (the
/// binary-counter discipline), so each row is re-copied O(log n) times over
/// the table's lifetime and the chunk count stays O(log n).
#[derive(Clone, Default)]
pub struct Rows {
    chunks: Vec<Arc<Vec<Record>>>,
    len: usize,
}

impl Rows {
    /// An empty row store.
    pub fn new() -> Rows {
        Rows::default()
    }

    /// Wraps an already materialized batch as a single chunk.
    pub fn from_vec(rows: Vec<Record>) -> Rows {
        let len = rows.len();
        let chunks = if rows.is_empty() {
            Vec::new()
        } else {
            vec![Arc::new(rows)]
        };
        Rows { chunks, len }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// The `i`-th row in insertion order.
    pub fn get(&self, mut i: usize) -> Option<&Record> {
        for chunk in &self.chunks {
            if i < chunk.len() {
                return chunk.get(i);
            }
            i -= chunk.len();
        }
        None
    }

    /// Materializes the rows as one contiguous vector (for the renderer and
    /// the layout advisor, whose APIs take slices).
    pub fn to_vec(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len);
        for chunk in &self.chunks {
            out.extend(chunk.iter().cloned());
        }
        out
    }

    /// Appends a batch of rows as a new chunk, then restores the geometric
    /// size invariant by merging trailing chunks.
    pub fn push_rows(&mut self, rows: Vec<Record>) {
        if rows.is_empty() {
            return;
        }
        self.len += rows.len();
        self.chunks.push(Arc::new(rows));
        while self.chunks.len() >= 2 {
            let last = self.chunks[self.chunks.len() - 1].len();
            let prev = self.chunks[self.chunks.len() - 2].len();
            if prev > 2 * last {
                break;
            }
            let last = self.chunks.pop().expect("len checked");
            let prev = self.chunks.pop().expect("len checked");
            let mut merged = Vec::with_capacity(prev.len() + last.len());
            merged.extend(prev.iter().cloned());
            merged.extend(last.iter().cloned());
            self.chunks.push(Arc::new(merged));
        }
    }

    /// Drops all rows.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Removes `range` (rollback path — rare, so a simple rebuild).
    pub fn remove_range(&mut self, range: std::ops::Range<usize>) {
        let mut rows = self.to_vec();
        rows.drain(range);
        *self = Rows::from_vec(rows);
    }
}

impl std::fmt::Debug for Rows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rows")
            .field("len", &self.len)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

impl FromIterator<Record> for Rows {
    fn from_iter<T: IntoIterator<Item = Record>>(iter: T) -> Rows {
        Rows::from_vec(iter.into_iter().collect())
    }
}

/// The published, immutable state of one table. Readers pin it with an
/// atomic load and use it for as long as they like; writers clone it, edit
/// the clone, and publish the result wholesale.
#[derive(Clone)]
pub struct TableState {
    /// Logical schema.
    pub schema: Schema,
    /// Canonical row-major contents (the input to layout rendering).
    pub records: Rows,
    /// The currently declared layout expression, if any.
    pub layout_expr: Option<LayoutExpr>,
    /// The rendered layout (absent until rendered — lazily or eagerly).
    /// Once published here it is logically immutable: appends fork it (see
    /// `PhysicalLayout::fork_for_append`) rather than mutating shared pages.
    pub access: Option<Arc<AccessMethods>>,
    /// Reorganization strategy used when the layout changes.
    pub strategy: ReorgStrategy,
    /// Records inserted since the layout was last rendered (used by the
    /// new-data-only strategy and to detect staleness). Invariant: always a
    /// suffix of `records`.
    pub pending: Rows,
    /// Render/append/adaptation counters.
    pub stats: LayoutStats,
    /// Identity of the chain of incrementally forked renderings this state's
    /// `access` belongs to. Forked successors share the token; a full render
    /// starts a fresh one. Page reclamation of a fully retired rendering
    /// waits until the whole chain is unreachable, because chain members
    /// share sealed pages (see `Database`'s retirement scheme).
    pub(crate) chain: Arc<()>,
}

impl std::fmt::Debug for TableState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableState")
            .field("schema", &self.schema.to_string())
            .field("rows", &self.records.len())
            .field("pending", &self.pending.len())
            .field(
                "layout",
                &self.layout_expr.as_ref().map(|e| e.to_string()),
            )
            .finish()
    }
}

impl TableState {
    /// Creates an empty state for a schema.
    pub fn new(schema: Schema) -> TableState {
        TableState {
            schema,
            records: Rows::new(),
            layout_expr: None,
            access: None,
            strategy: ReorgStrategy::Eager,
            pending: Rows::new(),
            stats: LayoutStats::default(),
            chain: Arc::new(()),
        }
    }

    /// Total number of rows (rendered plus pending).
    pub fn row_count(&self) -> usize {
        self.records.len()
    }
}

/// One table's slot in the registry: the published state plus the mutable
/// side state writers and the monitor need.
pub struct TableSlot {
    /// The published state. Readers load it under an epoch pin; writers
    /// swap it while holding `writer` and retire the superseded `Arc`.
    pub(crate) state: AtomicArc<TableState>,
    /// Serializes state publication for this table (held across build +
    /// swap + WAL record; never taken by readers).
    pub(crate) writer: Mutex<()>,
    /// Decaying profile of the live query traffic against this table,
    /// behind its own mutex so lock-free reads can still record traffic
    /// (mutex-sharded per table; never held across a query).
    pub(crate) profile: Mutex<WorkloadProfile>,
    /// Whether an adaptation check is currently in flight for this table
    /// (auto mode runs at most one at a time; concurrent triggers skip).
    pub(crate) adapting: AtomicBool,
    /// Set when another table this one's layout joins (prejoin reads its
    /// base tables outside their writer mutexes) published rows after this
    /// table's rendering captured them: the rendering is stale and the next
    /// access must rebuild it from fresh captures.
    pub(crate) deps_dirty: AtomicBool,
    /// Apply-order resolution of durable insert commits (see [`CommitQueue`]).
    pub(crate) commit_queue: Arc<CommitQueue>,
    /// Predicted-vs-actual scan-page calibration totals (relaxed; folded
    /// into [`crate::Database::metrics`] as `calibration.<table>.*`). Sum of
    /// `estimate_scan_pages` predictions across instrumented scans.
    pub(crate) predicted_pages_total: AtomicU64,
    /// Sum of the pager I/O deltas those same scans actually incurred.
    pub(crate) actual_pages_total: AtomicU64,
    /// Number of scans folded into the two totals.
    pub(crate) calibration_samples: AtomicU64,
}

impl TableSlot {
    pub(crate) fn new(schema: Schema) -> TableSlot {
        TableSlot::with_state(TableState::new(schema), WorkloadProfile::default())
    }

    pub(crate) fn with_state(state: TableState, profile: WorkloadProfile) -> TableSlot {
        TableSlot {
            state: AtomicArc::new(Arc::new(state)),
            writer: Mutex::new(()),
            profile: Mutex::new(profile),
            adapting: AtomicBool::new(false),
            deps_dirty: AtomicBool::new(false),
            commit_queue: Arc::new(CommitQueue::default()),
            predicted_pages_total: AtomicU64::new(0),
            actual_pages_total: AtomicU64::new(0),
            calibration_samples: AtomicU64::new(0),
        }
    }

    /// Pins the current published state.
    pub(crate) fn load(&self, guard: &EpochGuard<'_>) -> Arc<TableState> {
        self.state.load(guard)
    }
}

impl std::fmt::Debug for TableSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableSlot").finish_non_exhaustive()
    }
}

/// An immutable name → slot map, published wholesale on create/drop.
#[derive(Default)]
pub(crate) struct TableMap {
    /// Entries in creation order (schema listings preserve it).
    pub(crate) entries: Vec<(String, Arc<TableSlot>)>,
}

impl TableMap {
    pub(crate) fn get(&self, table: &str) -> Option<&Arc<TableSlot>> {
        self.entries
            .iter()
            .find(|(name, _)| name == table)
            .map(|(_, slot)| slot)
    }
}

/// The per-table slot registry. The map is published through an
/// [`AtomicArc`] so lookups are lock-free; `structural` serializes
/// create/drop (which also take the affected slot's writer mutex).
pub(crate) struct Registry {
    map: AtomicArc<TableMap>,
    pub(crate) structural: Mutex<()>,
}

impl Registry {
    pub(crate) fn new() -> Registry {
        Registry {
            map: AtomicArc::new(Arc::new(TableMap::default())),
            structural: Mutex::new(()),
        }
    }

    /// Pins the current table map.
    pub(crate) fn load(&self, guard: &EpochGuard<'_>) -> Arc<TableMap> {
        self.map.load(guard)
    }

    /// Publishes a new map, returning the superseded one. Callers hold
    /// `structural` (or are in a single-owner phase such as open) and must
    /// retire the returned map through the epoch scheme if readers exist.
    pub(crate) fn publish(&self, map: TableMap) -> Arc<TableMap> {
        self.map.swap(Arc::new(map))
    }
}

/// A consistent, materialized view of the catalog: every table's name, slot,
/// and the state it published at view time.
///
/// This is what [`crate::Database::catalog`] returns — an owned value, not a
/// lock guard. It is a *snapshot*: state published after the view was taken
/// is not visible through it, and holding it blocks nobody.
pub struct CatalogView {
    entries: Vec<(String, Arc<TableSlot>, Arc<TableState>)>,
}

impl CatalogView {
    /// An empty view (no tables) — for encoding a blank manifest in tests.
    #[cfg(test)]
    pub(crate) fn empty() -> CatalogView {
        CatalogView {
            entries: Vec::new(),
        }
    }

    pub(crate) fn capture(map: &TableMap, guard: &EpochGuard<'_>) -> CatalogView {
        CatalogView {
            entries: map
                .entries
                .iter()
                .map(|(name, slot)| (name.clone(), Arc::clone(slot), slot.load(guard)))
                .collect(),
        }
    }

    /// The state of one table.
    pub fn get(&self, table: &str) -> Result<&TableState> {
        self.entries
            .iter()
            .find(|(name, _, _)| name == table)
            .map(|(_, _, state)| state.as_ref())
            .ok_or_else(|| RodentError::UnknownTable(table.to_string()))
    }

    /// Names of all tables, in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|(name, _, _)| name.clone())
            .collect()
    }

    /// All schemas (used to validate multi-table expressions like `prejoin`).
    pub fn schemas(&self) -> Vec<Schema> {
        self.entries
            .iter()
            .map(|(_, _, state)| state.schema.clone())
            .collect()
    }

    /// The captured `(name, slot, state)` triples, in creation order.
    pub(crate) fn entries(&self) -> &[(String, Arc<TableSlot>, Arc<TableState>)] {
        &self.entries
    }
}

impl std::fmt::Debug for CatalogView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(
                self.entries
                    .iter()
                    .map(|(name, _, state)| (name, state)),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::schema::Field;
    use rodentstore_algebra::types::DataType;
    use rodentstore_algebra::Value;
    use rodentstore_sync::EpochRegistry;

    fn schema(name: &str) -> Schema {
        Schema::new(name, vec![Field::new("x", DataType::Int)])
    }

    fn row(x: i64) -> Record {
        vec![Value::Int(x)]
    }

    #[test]
    fn rows_push_preserves_order_and_len() {
        let mut rows = Rows::new();
        for batch in 0..50 {
            rows.push_rows((0..7).map(|i| row(batch * 7 + i)).collect());
        }
        assert_eq!(rows.len(), 350);
        let flat: Vec<i64> = rows
            .iter()
            .map(|r| match r[0] {
                Value::Int(x) => x,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(flat, (0..350).collect::<Vec<i64>>());
        assert_eq!(rows.get(349), Some(&row(349)));
        assert_eq!(rows.get(350), None);
        assert_eq!(rows.to_vec().len(), 350);
    }

    #[test]
    fn rows_chunk_count_stays_logarithmic() {
        let mut rows = Rows::new();
        for i in 0..4096 {
            rows.push_rows(vec![row(i)]);
        }
        // Binary-counter merging: chunk count is O(log n), not O(n).
        assert!(
            rows.chunks.len() <= 16,
            "expected O(log n) chunks, got {}",
            rows.chunks.len()
        );
        assert_eq!(rows.len(), 4096);
    }

    #[test]
    fn rows_clone_shares_chunks_with_snapshots() {
        let mut rows = Rows::from_vec((0..100).map(row).collect());
        let snapshot = rows.clone();
        rows.push_rows(vec![row(100)]);
        assert_eq!(snapshot.len(), 100, "snapshot is immutable");
        assert_eq!(rows.len(), 101);
        // The 100-row chunk is shared, not deep-copied.
        assert!(Arc::ptr_eq(&snapshot.chunks[0], &rows.chunks[0]));
    }

    #[test]
    fn rows_remove_range_rolls_back_a_middle_batch() {
        let mut rows = Rows::from_vec((0..10).map(row).collect());
        rows.remove_range(3..6);
        assert_eq!(rows.len(), 7);
        let flat: Vec<Record> = rows.iter().cloned().collect();
        assert_eq!(flat[2], row(2));
        assert_eq!(flat[3], row(6));
    }

    #[test]
    fn registry_publishes_and_views_capture_consistently() {
        let epochs = EpochRegistry::new();
        let registry = Registry::new();
        let mut map = TableMap::default();
        map.entries
            .push(("A".into(), Arc::new(TableSlot::new(schema("A")))));
        map.entries
            .push(("B".into(), Arc::new(TableSlot::new(schema("B")))));
        drop(registry.publish(map)); // no readers yet: direct drop is fine

        let g = epochs.pin();
        let map = registry.load(&g);
        let view = CatalogView::capture(&map, &g);
        drop(g);
        assert_eq!(view.table_names(), vec!["A", "B"]);
        assert_eq!(view.schemas().len(), 2);
        assert!(view.get("A").is_ok());
        assert!(matches!(
            view.get("C"),
            Err(RodentError::UnknownTable(_))
        ));

        // A state published after the view was captured is not visible
        // through it.
        let slot = Arc::clone(map.get("A").unwrap());
        let g = epochs.pin();
        let cur = slot.load(&g);
        let mut next = (*cur).clone();
        next.records.push_rows(vec![row(1)]);
        drop(g);
        let old = slot.state.swap(Arc::new(next));
        let _retired = (old, epochs.advance()); // single-threaded test: held, then dropped
        assert_eq!(view.get("A").unwrap().records.len(), 0);
        let g = epochs.pin();
        assert_eq!(slot.load(&g).records.len(), 1);
    }
}
