//! The catalog: schemas, layout expressions, and canonical data per table.
//!
//! Since the concurrency refactor the catalog is designed to sit behind a
//! [`parking_lot::RwLock`] inside [`crate::Database`]: the pieces of a
//! [`TableEntry`] that readers need to *keep using after the lock is
//! released* — the canonical rows, the pending buffer, and the rendered
//! layout — are held in [`Arc`]s, so a reader pins a consistent snapshot by
//! cloning three pointers and a writer swaps state wholesale without
//! invalidating in-flight scans. The live [`WorkloadProfile`] has its own
//! per-table mutex so `&self` reads can record traffic while holding only
//! the catalog *read* lock (a mutex-sharded write path: tables never contend
//! with each other).

use crate::monitor::WorkloadProfile;
use crate::reorg::ReorgStrategy;
use crate::{Result, RodentError};
use parking_lot::Mutex;
use rodentstore_algebra::expr::LayoutExpr;
use rodentstore_algebra::schema::Schema;
use rodentstore_algebra::value::Record;
use rodentstore_exec::AccessMethods;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Orders the *resolution* of a table's durable inserts by their apply
/// order.
///
/// An insert applies its rows (and takes a ticket) under the catalog write
/// lock, then commits to the WAL with the lock released — so commits can
/// share fsyncs. Resolutions, however, must happen in apply order: a failed
/// commit rolls its rows back *positionally*, and that position is only
/// meaningful if every earlier insert has already resolved (its rows either
/// confirmed in place, or removed — in which case they sat wholly *before*
/// ours, and the `removed` counter tells us how far our start shifted).
/// Out-of-order rollbacks could otherwise delete a neighbor's committed
/// rows or leave doomed rows behind.
pub struct CommitQueue {
    state: StdMutex<CommitQueueState>,
    resolved: Condvar,
}

struct CommitQueueState {
    /// Next ticket to hand out (under the catalog write lock, at apply).
    next_ticket: u64,
    /// The ticket whose turn it is to resolve.
    resolve_next: u64,
    /// Total rows removed by rollbacks on this table (monotone).
    removed: u64,
}

impl Default for CommitQueue {
    fn default() -> Self {
        CommitQueue {
            state: StdMutex::new(CommitQueueState {
                next_ticket: 0,
                resolve_next: 0,
                removed: 0,
            }),
            resolved: Condvar::new(),
        }
    }
}

impl CommitQueue {
    /// Takes the next ticket (call while holding the catalog write lock,
    /// right after the insert applied). Returns the ticket and the rows
    /// removed by rollbacks so far.
    pub fn take_ticket(&self) -> (u64, u64) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        (ticket, state.removed)
    }

    /// Blocks until it is `ticket`'s turn to resolve. Returns the number of
    /// rows removed by rollbacks since the paired [`CommitQueue::take_ticket`]
    /// — all of them positioned before this insert's rows.
    pub fn await_turn(&self, ticket: u64, removed_at_apply: u64) -> u64 {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while state.resolve_next != ticket {
            state = self
                .resolved
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
        state.removed - removed_at_apply
    }

    /// Completes `ticket`'s resolution (`removed_rows` > 0 when it rolled
    /// back), releasing the next ticket in line.
    pub fn finish(&self, ticket: u64, removed_rows: u64) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert_eq!(state.resolve_next, ticket);
        state.resolve_next = ticket + 1;
        state.removed += removed_rows;
        self.resolved.notify_all();
    }
}

/// Counters tracking how a table's physical representation has been
/// maintained — the observability hooks of the adaptivity loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LayoutStats {
    /// Full renders of the layout (every canonical row rewritten).
    pub full_renders: u64,
    /// Incremental absorptions of pending rows into the existing
    /// representation (no full rewrite).
    pub incremental_appends: u64,
    /// Layout changes applied by the self-adaptation loop
    /// ([`crate::Database::maybe_adapt`]).
    pub adaptations: u64,
}

/// Catalog entry for one logical table.
pub struct TableEntry {
    /// Logical schema.
    pub schema: Schema,
    /// Canonical row-major contents (the input to layout rendering).
    /// Copy-on-write: readers pin the current rows by cloning the `Arc`;
    /// writers mutate via [`Arc::make_mut`], which clones the vector only
    /// while a reader actually holds a pin.
    pub records: Arc<Vec<Record>>,
    /// The currently declared layout expression, if any.
    pub layout_expr: Option<LayoutExpr>,
    /// The rendered layout (absent until rendered — lazily or eagerly).
    /// Shared with in-flight readers; layout swaps publish a fresh `Arc`
    /// and retire the old one once its last pin drops.
    pub access: Option<Arc<AccessMethods>>,
    /// Reorganization strategy used when the layout changes.
    pub strategy: ReorgStrategy,
    /// Records inserted since the layout was last rendered (used by the
    /// new-data-only strategy and to detect staleness). Invariant: always a
    /// suffix of `records`. Copy-on-write like `records`.
    pub pending: Arc<Vec<Record>>,
    /// Decaying profile of the live query traffic against this table,
    /// behind its own mutex so `&self` reads can record while holding only
    /// the catalog read lock.
    pub profile: Mutex<WorkloadProfile>,
    /// Render/append/adaptation counters.
    pub stats: LayoutStats,
    /// Whether an adaptation check is currently in flight for this table
    /// (auto mode runs at most one at a time; concurrent triggers skip).
    pub adapting: Arc<AtomicBool>,
    /// Apply-order resolution of durable insert commits (see [`CommitQueue`]).
    pub commit_queue: Arc<CommitQueue>,
}

impl std::fmt::Debug for TableEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableEntry")
            .field("schema", &self.schema.to_string())
            .field("rows", &self.records.len())
            .field("pending", &self.pending.len())
            .field(
                "layout",
                &self.layout_expr.as_ref().map(|e| e.to_string()),
            )
            .finish()
    }
}

impl TableEntry {
    /// Creates an empty entry for a schema.
    pub fn new(schema: Schema) -> TableEntry {
        TableEntry {
            schema,
            records: Arc::new(Vec::new()),
            layout_expr: None,
            access: None,
            strategy: ReorgStrategy::Eager,
            pending: Arc::new(Vec::new()),
            profile: Mutex::new(WorkloadProfile::default()),
            stats: LayoutStats::default(),
            adapting: Arc::new(AtomicBool::new(false)),
            commit_queue: Arc::new(CommitQueue::default()),
        }
    }

    /// Total number of rows (rendered plus pending).
    pub fn row_count(&self) -> usize {
        self.records.len()
    }

    /// Mutable access to the canonical rows (copy-on-write: clones the
    /// vector only if a reader currently pins it).
    pub fn records_mut(&mut self) -> &mut Vec<Record> {
        Arc::make_mut(&mut self.records)
    }

    /// Mutable access to the pending buffer (copy-on-write).
    pub fn pending_mut(&mut self) -> &mut Vec<Record> {
        Arc::make_mut(&mut self.pending)
    }
}

/// The catalog of all tables in a database.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<(String, TableEntry)>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a new table.
    pub fn create(&mut self, schema: Schema) -> Result<()> {
        let name = schema.name().to_string();
        if self.get(&name).is_ok() {
            return Err(RodentError::TableExists(name));
        }
        self.tables.push((name, TableEntry::new(schema)));
        Ok(())
    }

    /// Removes a table.
    pub fn drop(&mut self, table: &str) -> Result<()> {
        let before = self.tables.len();
        self.tables.retain(|(name, _)| name != table);
        if self.tables.len() == before {
            return Err(RodentError::UnknownTable(table.to_string()));
        }
        Ok(())
    }

    /// Immutable access to a table entry.
    pub fn get(&self, table: &str) -> Result<&TableEntry> {
        self.tables
            .iter()
            .find(|(name, _)| name == table)
            .map(|(_, entry)| entry)
            .ok_or_else(|| RodentError::UnknownTable(table.to_string()))
    }

    /// Mutable access to a table entry.
    pub fn get_mut(&mut self, table: &str) -> Result<&mut TableEntry> {
        self.tables
            .iter_mut()
            .find(|(name, _)| name == table)
            .map(|(_, entry)| entry)
            .ok_or_else(|| RodentError::UnknownTable(table.to_string()))
    }

    /// Names of all tables, in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.iter().map(|(name, _)| name.clone()).collect()
    }

    /// All schemas (used to validate multi-table expressions like `prejoin`).
    pub fn schemas(&self) -> Vec<Schema> {
        self.tables
            .iter()
            .map(|(_, entry)| entry.schema.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rodentstore_algebra::schema::Field;
    use rodentstore_algebra::types::DataType;

    fn schema(name: &str) -> Schema {
        Schema::new(name, vec![Field::new("x", DataType::Int)])
    }

    #[test]
    fn create_get_drop() {
        let mut catalog = Catalog::new();
        catalog.create(schema("A")).unwrap();
        catalog.create(schema("B")).unwrap();
        assert_eq!(catalog.table_names(), vec!["A", "B"]);
        assert!(catalog.get("A").is_ok());
        assert!(matches!(
            catalog.create(schema("A")),
            Err(RodentError::TableExists(_))
        ));
        catalog.drop("A").unwrap();
        assert!(matches!(catalog.get("A"), Err(RodentError::UnknownTable(_))));
        assert!(matches!(catalog.drop("A"), Err(RodentError::UnknownTable(_))));
    }

    #[test]
    fn entries_track_rows_and_layout() {
        let mut catalog = Catalog::new();
        catalog.create(schema("A")).unwrap();
        let entry = catalog.get_mut("A").unwrap();
        entry.records_mut().push(vec![rodentstore_algebra::Value::Int(1)]);
        assert_eq!(entry.row_count(), 1);
        assert!(entry.layout_expr.is_none());
        assert_eq!(catalog.schemas().len(), 1);
    }

    #[test]
    fn pinned_rows_survive_copy_on_write_mutation() {
        let mut catalog = Catalog::new();
        catalog.create(schema("A")).unwrap();
        let entry = catalog.get_mut("A").unwrap();
        entry.records_mut().push(vec![rodentstore_algebra::Value::Int(1)]);
        // A reader pins the rows; a writer's mutation must not be visible
        // through the pin.
        let pin = Arc::clone(&catalog.get("A").unwrap().records);
        let entry = catalog.get_mut("A").unwrap();
        entry.records_mut().push(vec![rodentstore_algebra::Value::Int(2)]);
        assert_eq!(pin.len(), 1, "pinned snapshot is immutable");
        assert_eq!(catalog.get("A").unwrap().records.len(), 2);
    }
}
