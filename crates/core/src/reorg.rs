//! Reorganization strategies.
//!
//! Section 5 of the paper discusses what to do when a new physical design is
//! declared for data that already exists:
//!
//! * **eager** — rewrite every object immediately;
//! * **new-data-only** — keep old data as it was and store only newly
//!   inserted data in the new representation (cheap, but old data keeps its
//!   old access characteristics and reads must merge both);
//! * **lazy** — rewrite objects in the background or when they are accessed;
//!   RodentStore renders the new representation on first access.

use std::fmt;

/// When the stored representation is rewritten after a layout change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReorgStrategy {
    /// Rewrite everything as soon as the layout is declared.
    #[default]
    Eager,
    /// Keep existing data in its current representation; only new inserts use
    /// the new layout. Scans merge both representations.
    NewDataOnly,
    /// Defer the rewrite until the table is next accessed.
    Lazy,
}

impl fmt::Display for ReorgStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReorgStrategy::Eager => write!(f, "eager"),
            ReorgStrategy::NewDataOnly => write!(f, "new-data-only"),
            ReorgStrategy::Lazy => write!(f, "lazy"),
        }
    }
}

impl ReorgStrategy {
    /// Whether declaring a layout should render it immediately.
    pub fn renders_immediately(&self) -> bool {
        matches!(self, ReorgStrategy::Eager)
    }

    /// Whether pending (newly inserted) rows should be folded into the
    /// rendered representation on access.
    pub fn absorbs_new_data_on_access(&self) -> bool {
        matches!(self, ReorgStrategy::Eager | ReorgStrategy::Lazy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_defaults() {
        assert_eq!(ReorgStrategy::default(), ReorgStrategy::Eager);
        assert_eq!(ReorgStrategy::Lazy.to_string(), "lazy");
        assert_eq!(ReorgStrategy::NewDataOnly.to_string(), "new-data-only");
    }

    #[test]
    fn strategy_semantics() {
        assert!(ReorgStrategy::Eager.renders_immediately());
        assert!(!ReorgStrategy::Lazy.renders_immediately());
        assert!(!ReorgStrategy::NewDataOnly.renders_immediately());
        assert!(ReorgStrategy::Eager.absorbs_new_data_on_access());
        assert!(!ReorgStrategy::NewDataOnly.absorbs_new_data_on_access());
    }
}
