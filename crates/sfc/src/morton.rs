//! Z-order (Morton) curve.
//!
//! The `zorder` transform lays grid cells out along a Z-order space-filling
//! curve so that spatially adjacent cells tend to be adjacent on disk,
//! minimizing seeks when a query touches a contiguous spatial region.

use crate::interleave::{deinterleave, interleave};

/// Encodes a 2-D cell coordinate as its Morton code.
pub fn morton2(x: u32, y: u32) -> u64 {
    interleave(&[x, y])
}

/// Decodes a 2-D Morton code back into `(x, y)`.
pub fn morton2_decode(code: u64) -> (u32, u32) {
    let parts = deinterleave(code, 2);
    (parts[0], parts[1])
}

/// Encodes a 3-D cell coordinate as its Morton code.
pub fn morton3(x: u32, y: u32, z: u32) -> u64 {
    interleave(&[x, y, z])
}

/// Decodes a 3-D Morton code.
pub fn morton3_decode(code: u64) -> (u32, u32, u32) {
    let parts = deinterleave(code, 3);
    (parts[0], parts[1], parts[2])
}

/// Encodes an n-dimensional cell coordinate.
pub fn morton_n(coords: &[u32]) -> u64 {
    interleave(coords)
}

/// Sorts cell coordinates into Z-order and returns the permutation indices.
/// `cells[i]` should be the multidimensional integer coordinate of cell `i`;
/// the result lists cell indices in the order they should be written to disk.
pub fn zorder_permutation(cells: &[Vec<u32>]) -> Vec<usize> {
    let mut indexed: Vec<(u64, usize)> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| (morton_n(c), i))
        .collect();
    indexed.sort_unstable();
    indexed.into_iter().map(|(_, i)| i).collect()
}

/// Returns the (inclusive) range of Morton codes covering a 2-D rectangle.
/// This is a coarse bound — the range may include codes outside the
/// rectangle — but it is sufficient for ordering-based pruning: all cells in
/// the rectangle have codes within `[lo, hi]`.
pub fn morton2_range(min_x: u32, min_y: u32, max_x: u32, max_y: u32) -> (u64, u64) {
    (morton2(min_x, min_y), morton2(max_x, max_y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_first_sixteen_codes() {
        // The Z curve over a 4x4 grid visits cells in this well-known order.
        let expected = [
            (0, 0),
            (1, 0),
            (0, 1),
            (1, 1),
            (2, 0),
            (3, 0),
            (2, 1),
            (3, 1),
            (0, 2),
            (1, 2),
            (0, 3),
            (1, 3),
            (2, 2),
            (3, 2),
            (2, 3),
            (3, 3),
        ];
        for (code, &(x, y)) in expected.iter().enumerate() {
            assert_eq!(morton2(x, y), code as u64, "cell ({x},{y})");
            assert_eq!(morton2_decode(code as u64), (x, y));
        }
    }

    #[test]
    fn three_dimensional_round_trip() {
        for (x, y, z) in [(0, 0, 0), (1, 2, 3), (7, 7, 7), (1000, 2000, 3000)] {
            assert_eq!(morton3_decode(morton3(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn zorder_permutation_sorts_by_code() {
        let cells = vec![
            vec![3u32, 3], // code 15
            vec![0, 0],    // code 0
            vec![1, 1],    // code 3
            vec![0, 1],    // code 2
        ];
        assert_eq!(zorder_permutation(&cells), vec![1, 3, 2, 0]);
    }

    #[test]
    fn locality_of_morton_order() {
        // Cells that are close in space should on average be closer in the
        // Morton order than a row-major order would put far-apart rows.
        let a = morton2(10, 10);
        let b = morton2(11, 10);
        let c = morton2(10, 11);
        let far = morton2(10, 200);
        assert!(a.abs_diff(b) < a.abs_diff(far));
        assert!(a.abs_diff(c) < a.abs_diff(far));
    }

    #[test]
    fn range_bounds_cover_rectangle() {
        let (lo, hi) = morton2_range(2, 2, 3, 3);
        for x in 2..=3u32 {
            for y in 2..=3u32 {
                let code = morton2(x, y);
                assert!(code >= lo && code <= hi);
            }
        }
    }
}
