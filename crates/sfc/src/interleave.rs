//! Bit interleaving.
//!
//! The storage algebra expresses Z-ordering as
//! `interleave(bin(pos(r)), bin(pos(r')))` — interleaving the binary
//! representations of element positions. This module implements the general
//! n-dimensional interleave and its inverse.

/// Interleaves the bits of `parts`, producing a single code in which bit `k`
/// of input `i` occupies position `k * n + i`. With two inputs this is the
/// classic Morton code.
pub fn interleave(parts: &[u32]) -> u64 {
    let n = parts.len();
    if n == 0 {
        return 0;
    }
    let bits_per_part = (64 / n).min(32);
    let mut out = 0u64;
    for bit in 0..bits_per_part {
        for (i, &p) in parts.iter().enumerate() {
            let b = ((p >> bit) & 1) as u64;
            out |= b << (bit * n + i);
        }
    }
    out
}

/// Reverses [`interleave`], recovering `n` coordinates from a code.
pub fn deinterleave(code: u64, n: usize) -> Vec<u32> {
    if n == 0 {
        return Vec::new();
    }
    let bits_per_part = (64 / n).min(32);
    let mut parts = vec![0u32; n];
    for bit in 0..bits_per_part {
        for (i, part) in parts.iter_mut().enumerate() {
            let b = (code >> (bit * n + i)) & 1;
            *part |= (b as u32) << bit;
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dimensional_round_trip() {
        for x in [0u32, 1, 2, 3, 17, 255, 1023, 65535] {
            for y in [0u32, 1, 5, 31, 4096, 99999] {
                let code = interleave(&[x, y]);
                assert_eq!(deinterleave(code, 2), vec![x, y]);
            }
        }
    }

    #[test]
    fn three_dimensional_round_trip() {
        for coords in [[0u32, 0, 0], [1, 2, 3], [100, 200, 300], [1 << 20, 3, 7]] {
            let code = interleave(&coords);
            assert_eq!(deinterleave(code, 3), coords.to_vec());
        }
    }

    #[test]
    fn known_small_codes() {
        // x=0b11, y=0b01: bits of x at even positions, y at odd positions.
        assert_eq!(interleave(&[0b11, 0b01]), 0b0111);
        assert_eq!(interleave(&[0, 0]), 0);
        assert_eq!(interleave(&[1, 0]), 1);
        assert_eq!(interleave(&[0, 1]), 2);
        assert_eq!(interleave(&[1, 1]), 3);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(interleave(&[]), 0);
        assert_eq!(deinterleave(12345, 0), Vec::<u32>::new());
        assert_eq!(interleave(&[42]), 42);
        assert_eq!(deinterleave(42, 1), vec![42]);
    }
}
