//! # Space-filling curves for RodentStore
//!
//! The `zorder` transform of the storage algebra rearranges grid cells along
//! a space-filling curve so that spatially close cells are stored close
//! together on disk, minimizing seeks for spatial range queries. This crate
//! implements:
//!
//! * generalized [bit interleaving](mod@interleave) (the paper's
//!   `interleave(bin(…), bin(…))` helper),
//! * the [Z-order / Morton curve](morton) in 2, 3, and n dimensions, and
//! * the 2-D [Hilbert curve](hilbert) as an alternative ordering used by the
//!   ablation benchmarks.
//!
//! ```
//! use rodentstore_sfc::{Curve, order_cells};
//!
//! // Cells of a 2-D grid identified by integer coordinates.
//! let cells = vec![vec![0, 0], vec![1, 0], vec![0, 1], vec![1, 1], vec![2, 0]];
//! let z = order_cells(&cells, Curve::ZOrder);
//! assert_eq!(z[0], 0); // (0,0) is always first on the Z curve
//! let row = order_cells(&cells, Curve::RowMajor);
//! assert_eq!(row, vec![0, 1, 4, 2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hilbert;
pub mod interleave;
pub mod morton;

pub use hilbert::{hilbert2, hilbert2_decode, hilbert_permutation};
pub use interleave::{deinterleave, interleave};
pub use morton::{morton2, morton2_decode, morton2_range, morton3, morton_n, zorder_permutation};

/// The cell orderings the layout engine can choose from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Curve {
    /// Row-major order (last coordinate varies fastest) — the default
    /// ordering when no space-filling curve is requested.
    RowMajor,
    /// Z-order / Morton curve.
    ZOrder,
    /// Hilbert curve (2-D only; higher dimensions fall back to Z-order).
    Hilbert,
}

/// Orders grid cells along the requested curve. `cells[i]` is the integer
/// coordinate vector of cell `i`; the result lists cell indices in storage
/// order.
pub fn order_cells(cells: &[Vec<u32>], curve: Curve) -> Vec<usize> {
    match curve {
        Curve::ZOrder => zorder_permutation(cells),
        Curve::Hilbert => {
            if cells.iter().all(|c| c.len() == 2) {
                let max = cells
                    .iter()
                    .flat_map(|c| c.iter().copied())
                    .max()
                    .unwrap_or(0);
                let order = (32 - max.leading_zeros()).max(1);
                let pairs: Vec<(u32, u32)> = cells.iter().map(|c| (c[0], c[1])).collect();
                hilbert_permutation(order, &pairs)
            } else {
                zorder_permutation(cells)
            }
        }
        Curve::RowMajor => {
            let mut indexed: Vec<(Vec<u32>, usize)> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    // Row-major: compare coordinates from the last dimension
                    // outwards so the first dimension varies fastest.
                    let mut key = c.clone();
                    key.reverse();
                    (key, i)
                })
                .collect();
            indexed.sort();
            indexed.into_iter().map(|(_, i)| i).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_cells(width: u32, height: u32) -> Vec<Vec<u32>> {
        let mut cells = Vec::new();
        for y in 0..height {
            for x in 0..width {
                cells.push(vec![x, y]);
            }
        }
        cells
    }

    /// Number of contiguous storage-order runs needed to read every cell of a
    /// `q×q` query rectangle, summed over all rectangle positions. This is a
    /// proxy for disk seeks; a good space-filling curve needs fewer runs than
    /// a row-major layout (which needs one run per rectangle row).
    fn total_runs_for_queries(cells: &[Vec<u32>], order: &[usize], side: u32, q: u32) -> u64 {
        let mut position = vec![0usize; cells.len()];
        for (rank, &idx) in order.iter().enumerate() {
            position[idx] = rank;
        }
        let index_of = |x: u32, y: u32| (y * side + x) as usize;
        let mut total_runs = 0u64;
        for qx in 0..=(side - q) {
            for qy in 0..=(side - q) {
                let mut ranks: Vec<usize> = Vec::with_capacity((q * q) as usize);
                for x in qx..qx + q {
                    for y in qy..qy + q {
                        ranks.push(position[index_of(x, y)]);
                    }
                }
                ranks.sort_unstable();
                let mut runs = 1u64;
                for w in ranks.windows(2) {
                    if w[1] != w[0] + 1 {
                        runs += 1;
                    }
                }
                total_runs += runs;
            }
        }
        total_runs
    }

    #[test]
    fn all_orderings_are_permutations() {
        let cells = grid_cells(8, 8);
        for curve in [Curve::RowMajor, Curve::ZOrder, Curve::Hilbert] {
            let order = order_cells(&cells, curve);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..cells.len()).collect::<Vec<_>>(), "{curve:?}");
        }
    }

    #[test]
    fn space_filling_curves_beat_arbitrary_cell_order() {
        // The paper's N3 layout tracks grid cells with a hash table, i.e. an
        // essentially arbitrary cell order; N'3 adds z-ordering "to minimize
        // the disk seek times when retrieving spatially contiguous objects".
        // A deterministic pseudo-random permutation stands in for the hashed
        // order; both curves must need far fewer contiguous runs than it.
        let side = 16u32;
        let cells = grid_cells(side, side);
        let n = cells.len();
        let arbitrary: Vec<usize> = {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by_key(|&i| (i * 2_654_435_761usize) % n);
            order
        };
        let shuffled = total_runs_for_queries(&cells, &arbitrary, side, 4);
        let z = total_runs_for_queries(&cells, &order_cells(&cells, Curve::ZOrder), side, 4);
        let h = total_runs_for_queries(&cells, &order_cells(&cells, Curve::Hilbert), side, 4);
        assert!(z * 2 < shuffled, "z-order ({z}) vs arbitrary ({shuffled})");
        assert!(h * 2 < shuffled, "hilbert ({h}) vs arbitrary ({shuffled})");
    }

    #[test]
    fn hilbert_falls_back_to_zorder_for_3d() {
        let cells = vec![vec![0, 0, 0], vec![1, 1, 1], vec![0, 1, 0]];
        assert_eq!(
            order_cells(&cells, Curve::Hilbert),
            order_cells(&cells, Curve::ZOrder)
        );
    }

    #[test]
    fn row_major_order_is_last_dimension_major() {
        let cells = grid_cells(3, 2);
        // cells: (0,0),(1,0),(2,0),(0,1),(1,1),(2,1) already in row-major order
        assert_eq!(order_cells(&cells, Curve::RowMajor), vec![0, 1, 2, 3, 4, 5]);
    }
}
