//! Hilbert curve (2-D).
//!
//! The Hilbert curve offers strictly better locality than the Z-order curve
//! (no long diagonal jumps), at the cost of a slightly more expensive
//! encoding. RodentStore exposes it as an alternative cell ordering so the
//! ablation benchmarks can compare curve choices — a design-space question
//! the paper leaves to the storage-layout engine.

/// Encodes an `(x, y)` coordinate on a `2^order × 2^order` grid into its
/// Hilbert curve distance.
pub fn hilbert2(order: u32, x: u32, y: u32) -> u64 {
    let n: u64 = 1 << order;
    let (mut x, mut y) = (x as u64, y as u64);
    let mut rx: u64;
    let mut ry: u64;
    let mut d: u64 = 0;
    let mut s = n / 2;
    while s > 0 {
        rx = u64::from((x & s) > 0);
        ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate quadrant (uses the full grid size `n`, per the canonical
        // xy→d formulation).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Decodes a Hilbert distance back into an `(x, y)` coordinate on a
/// `2^order × 2^order` grid.
pub fn hilbert2_decode(order: u32, d: u64) -> (u32, u32) {
    let n: u64 = 1 << order;
    let mut rx: u64;
    let mut ry: u64;
    let mut t = d;
    let (mut x, mut y) = (0u64, 0u64);
    let mut s = 1u64;
    while s < n {
        rx = 1 & (t / 2);
        ry = 1 & (t ^ rx);
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// Sorts 2-D cell coordinates into Hilbert order and returns the permutation
/// indices (analogous to [`crate::morton::zorder_permutation`]).
pub fn hilbert_permutation(order: u32, cells: &[(u32, u32)]) -> Vec<usize> {
    let mut indexed: Vec<(u64, usize)> = cells
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| (hilbert2(order, x, y), i))
        .collect();
    indexed.sort_unstable();
    indexed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let order = 6; // 64x64 grid
        for x in (0..64).step_by(7) {
            for y in (0..64).step_by(5) {
                let d = hilbert2(order, x, y);
                assert_eq!(hilbert2_decode(order, d), (x, y));
            }
        }
    }

    #[test]
    fn every_distance_is_unique_and_covers_grid() {
        let order = 3; // 8x8 grid, 64 cells
        let mut seen = [false; 64];
        for x in 0..8u32 {
            for y in 0..8u32 {
                let d = hilbert2(order, x, y) as usize;
                assert!(d < 64);
                assert!(!seen[d], "distance {d} assigned twice");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_distances_are_spatial_neighbours() {
        // The defining property of the Hilbert curve: successive cells along
        // the curve are always at Manhattan distance 1.
        let order = 4; // 16x16
        let mut prev = hilbert2_decode(order, 0);
        for d in 1..(16 * 16) as u64 {
            let (x, y) = hilbert2_decode(order, d);
            let manhattan =
                (x as i64 - prev.0 as i64).abs() + (y as i64 - prev.1 as i64).abs();
            assert_eq!(manhattan, 1, "jump at distance {d}");
            prev = (x, y);
        }
    }

    #[test]
    fn permutation_orders_cells_along_the_curve() {
        let cells = vec![(3u32, 3u32), (0, 0), (1, 0), (0, 1)];
        let perm = hilbert_permutation(2, &cells);
        // (0,0) comes first on any Hilbert curve.
        assert_eq!(perm[0], 1);
        assert_eq!(perm.len(), 4);
    }
}
