//! Frame-of-reference encoding.
//!
//! Each block stores the minimum value once and every element as a
//! non-negative offset from it, bit-packed to the minimal width. Clustered
//! values — timestamps within a trajectory, coordinates within a grid cell —
//! compress to a few bits per element even when their absolute magnitude is
//! large.

use crate::bitpack::{pack_bits, unpack_bits};
use crate::plain::TAG_INTS;
use crate::varint::{read_signed_varint, read_varint, write_signed_varint, write_varint};
use crate::{ColumnCodec, ColumnData, CompressError, Result};

/// Frame-of-reference + bit-packing codec for integer columns.
#[derive(Debug, Default, Clone, Copy)]
pub struct ForCodec;

impl ColumnCodec for ForCodec {
    fn name(&self) -> &'static str {
        "for"
    }

    fn encode(&self, column: &ColumnData) -> Result<Vec<u8>> {
        let values = match column {
            ColumnData::Ints(v) => v,
            _ => {
                return Err(CompressError::UnsupportedType {
                    codec: self.name(),
                    column: column.type_name(),
                })
            }
        };
        let mut out = Vec::new();
        out.push(TAG_INTS);
        write_varint(&mut out, values.len() as u64);
        if values.is_empty() {
            return Ok(out);
        }
        let min = *values.iter().min().expect("non-empty");
        write_signed_varint(&mut out, min);
        let offsets: Vec<u64> = values.iter().map(|&v| (v as i128 - min as i128) as u64).collect();
        let max_offset = offsets.iter().copied().max().unwrap_or(0);
        let width = (64 - max_offset.leading_zeros()).max(1);
        out.push(width as u8);
        pack_bits(&offsets, width, &mut out);
        Ok(out)
    }

    fn decode(&self, block: &[u8]) -> Result<ColumnData> {
        let tag = *block
            .first()
            .ok_or_else(|| CompressError::Corrupted("empty block".into()))?;
        if tag != TAG_INTS {
            return Err(CompressError::Corrupted(format!("unexpected tag {tag}")));
        }
        let mut pos = 1usize;
        let count = read_varint(block, &mut pos)? as usize;
        if count == 0 {
            return Ok(ColumnData::Ints(Vec::new()));
        }
        let min = read_signed_varint(block, &mut pos)?;
        let width = *block
            .get(pos)
            .ok_or_else(|| CompressError::Corrupted("missing width".into()))? as u32;
        pos += 1;
        if width == 0 || width > 64 {
            return Err(CompressError::Corrupted(format!("invalid width {width}")));
        }
        let offsets = unpack_bits(block, width, count, &mut pos)?;
        Ok(ColumnData::Ints(
            offsets
                .into_iter()
                .map(|o| (min as i128 + o as i128) as i64)
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_timestamps_compress_well() {
        // Timestamps within one hour, microsecond resolution but clustered.
        let base = 1_700_000_000_000_000i64;
        let column = ColumnData::Ints((0..10_000).map(|i| base + i * 250).collect());
        let block = ForCodec.encode(&column).unwrap();
        assert!(block.len() < 10_000 * 4, "got {}", block.len());
        assert_eq!(ForCodec.decode(&block).unwrap(), column);
    }

    #[test]
    fn negative_values_round_trip() {
        let column = ColumnData::Ints(vec![-100, -50, -75, -100, -1]);
        let block = ForCodec.encode(&column).unwrap();
        assert_eq!(ForCodec.decode(&block).unwrap(), column);
    }

    #[test]
    fn constant_column_is_tiny() {
        let column = ColumnData::Ints(vec![42; 1000]);
        let block = ForCodec.encode(&column).unwrap();
        assert!(block.len() < 150);
        assert_eq!(ForCodec.decode(&block).unwrap(), column);
    }

    #[test]
    fn empty_and_single_element() {
        for column in [ColumnData::Ints(vec![]), ColumnData::Ints(vec![7])] {
            let block = ForCodec.encode(&column).unwrap();
            assert_eq!(ForCodec.decode(&block).unwrap(), column);
        }
    }

    #[test]
    fn unsupported_types_rejected() {
        assert!(ForCodec.encode(&ColumnData::Floats(vec![1.0])).is_err());
    }

    #[test]
    fn wide_range_falls_back_to_wide_width() {
        let column = ColumnData::Ints(vec![i64::MIN, i64::MAX]);
        let block = ForCodec.encode(&column).unwrap();
        assert_eq!(ForCodec.decode(&block).unwrap(), column);
    }
}
