//! Variable-length integer encoding (LEB128 + ZigZag).
//!
//! Small magnitudes — the common case after delta or frame-of-reference
//! encoding — occupy one or two bytes instead of eight.

use crate::{CompressError, Result};

/// Maps a signed integer to an unsigned one so that values close to zero
/// (positive or negative) get small codes.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Appends a LEB128 varint to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `input` at `pos`, advancing `pos`.
pub fn read_varint(input: &[u8], pos: &mut usize) -> Result<u64> {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *input
            .get(*pos)
            .ok_or_else(|| CompressError::Corrupted("truncated varint".into()))?;
        *pos += 1;
        result |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(result);
        }
        shift += 7;
        if shift >= 64 {
            return Err(CompressError::Corrupted("varint overflow".into()));
        }
    }
}

/// Appends a zigzag-encoded signed varint.
pub fn write_signed_varint(out: &mut Vec<u8>, value: i64) {
    write_varint(out, zigzag_encode(value));
}

/// Reads a zigzag-encoded signed varint.
pub fn read_signed_varint(input: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(zigzag_decode(read_varint(input, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trip_and_small_codes() {
        for v in [-1000i64, -2, -1, 0, 1, 2, 1000, i64::MIN, i64::MAX] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn signed_varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0i64, -1, 1, -300, 300, i64::MIN, i64::MAX];
        for &v in &values {
            write_signed_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_signed_varint(&buf, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn small_values_use_single_bytes() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 42);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_signed_varint(&mut buf, -3);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let buf = vec![0x80u8, 0x80];
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos).is_err());
    }
}
