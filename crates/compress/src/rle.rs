//! Run-length encoding.
//!
//! Sorted or grouped data (the output of `orderby`/`groupby`/`fold`
//! transforms) often contains long runs of identical values; RLE stores each
//! run once together with its length.

use crate::plain::{TAG_FLOATS, TAG_INTS, TAG_STRINGS};
#[cfg(test)]
use crate::plain::PlainCodec;
use crate::varint::{read_signed_varint, read_varint, write_signed_varint, write_varint};
use crate::{ColumnCodec, ColumnData, CompressError, Result};

/// Run-length codec for all column types.
#[derive(Debug, Default, Clone, Copy)]
pub struct RleCodec;

fn encode_runs<T: PartialEq + Clone>(values: &[T]) -> Vec<(T, u64)> {
    let mut runs: Vec<(T, u64)> = Vec::new();
    for v in values {
        match runs.last_mut() {
            Some((current, count)) if current == v => *count += 1,
            _ => runs.push((v.clone(), 1)),
        }
    }
    runs
}

impl ColumnCodec for RleCodec {
    fn name(&self) -> &'static str {
        "rle"
    }

    fn encode(&self, column: &ColumnData) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        match column {
            ColumnData::Ints(values) => {
                out.push(TAG_INTS);
                let runs = encode_runs(values);
                write_varint(&mut out, runs.len() as u64);
                for (value, count) in runs {
                    write_signed_varint(&mut out, value);
                    write_varint(&mut out, count);
                }
            }
            ColumnData::Floats(values) => {
                out.push(TAG_FLOATS);
                let runs = encode_runs(values);
                write_varint(&mut out, runs.len() as u64);
                for (value, count) in runs {
                    out.extend_from_slice(&value.to_le_bytes());
                    write_varint(&mut out, count);
                }
            }
            ColumnData::Strings(values) => {
                out.push(TAG_STRINGS);
                let runs = encode_runs(values);
                write_varint(&mut out, runs.len() as u64);
                for (value, count) in runs {
                    write_varint(&mut out, value.len() as u64);
                    out.extend_from_slice(value.as_bytes());
                    write_varint(&mut out, count);
                }
            }
        }
        Ok(out)
    }

    fn decode(&self, block: &[u8]) -> Result<ColumnData> {
        let tag = *block
            .first()
            .ok_or_else(|| CompressError::Corrupted("empty block".into()))?;
        let mut pos = 1usize;
        let run_count = read_varint(block, &mut pos)? as usize;
        match tag {
            TAG_INTS => {
                let mut values = Vec::new();
                for _ in 0..run_count {
                    let value = read_signed_varint(block, &mut pos)?;
                    let count = read_varint(block, &mut pos)?;
                    values.extend(std::iter::repeat(value).take(count as usize));
                }
                Ok(ColumnData::Ints(values))
            }
            TAG_FLOATS => {
                let mut values = Vec::new();
                for _ in 0..run_count {
                    let bytes = block
                        .get(pos..pos + 8)
                        .ok_or_else(|| CompressError::Corrupted("truncated float".into()))?;
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(bytes);
                    pos += 8;
                    let value = f64::from_le_bytes(buf);
                    let count = read_varint(block, &mut pos)?;
                    values.extend(std::iter::repeat(value).take(count as usize));
                }
                Ok(ColumnData::Floats(values))
            }
            TAG_STRINGS => {
                let mut values = Vec::new();
                for _ in 0..run_count {
                    let len = read_varint(block, &mut pos)? as usize;
                    let bytes = block
                        .get(pos..pos + len)
                        .ok_or_else(|| CompressError::Corrupted("truncated string".into()))?;
                    let value = String::from_utf8(bytes.to_vec())
                        .map_err(|_| CompressError::Corrupted("invalid utf8".into()))?;
                    pos += len;
                    let count = read_varint(block, &mut pos)?;
                    values.extend(std::iter::repeat(value).take(count as usize));
                }
                Ok(ColumnData::Strings(values))
            }
            other => Err(CompressError::Corrupted(format!("unknown tag {other}"))),
        }
    }
}

/// Convenience: returns the number of runs RLE would produce — used by the
/// design optimizer to decide whether RLE is worthwhile for a column.
pub fn run_count(column: &ColumnData) -> usize {
    match column {
        ColumnData::Ints(v) => encode_runs(v).len(),
        ColumnData::Floats(v) => encode_runs(v).len(),
        ColumnData::Strings(v) => encode_runs(v).len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression_ratio;

    #[test]
    fn long_runs_compress_dramatically() {
        let column = ColumnData::Ints(
            std::iter::repeat(617)
                .take(5000)
                .chain(std::iter::repeat(212).take(5000))
                .collect(),
        );
        let ratio = compression_ratio(&RleCodec, &column).unwrap();
        assert!(ratio > 1000.0, "ratio {ratio}");
        let block = RleCodec.encode(&column).unwrap();
        assert_eq!(RleCodec.decode(&block).unwrap(), column);
    }

    #[test]
    fn unique_values_round_trip_without_loss() {
        let column = ColumnData::Strings((0..100).map(|i| format!("s{i}")).collect());
        let block = RleCodec.encode(&column).unwrap();
        assert_eq!(RleCodec.decode(&block).unwrap(), column);
        // Worse than plain is fine, correctness is what matters here.
        let plain = PlainCodec.encode(&column).unwrap();
        assert!(block.len() >= plain.len() - 100);
    }

    #[test]
    fn float_runs() {
        let column = ColumnData::Floats(vec![1.5; 100]);
        let block = RleCodec.encode(&column).unwrap();
        assert!(block.len() < 20);
        assert_eq!(RleCodec.decode(&block).unwrap(), column);
    }

    #[test]
    fn run_count_reports_distinct_runs() {
        assert_eq!(run_count(&ColumnData::Ints(vec![1, 1, 2, 2, 2, 1])), 3);
        assert_eq!(run_count(&ColumnData::Ints(vec![])), 0);
        assert_eq!(
            run_count(&ColumnData::Strings(vec!["a".into(), "a".into(), "b".into()])),
            2
        );
    }
}
