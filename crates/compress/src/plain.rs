//! Plain (uncompressed) column serialization.
//!
//! Used as the baseline codec and as the fallback when no compression is
//! requested by the storage algebra. The block format is shared with the
//! other codecs: a type tag, a varint element count, and the raw payload.

use crate::varint::{read_varint, write_varint};
use crate::{ColumnCodec, ColumnData, CompressError, Result};

pub(crate) const TAG_INTS: u8 = 0;
pub(crate) const TAG_FLOATS: u8 = 1;
pub(crate) const TAG_STRINGS: u8 = 2;

/// No-op codec: values are stored with fixed-width / length-prefixed
/// serialization.
#[derive(Debug, Default, Clone, Copy)]
pub struct PlainCodec;

impl ColumnCodec for PlainCodec {
    fn name(&self) -> &'static str {
        "plain"
    }

    fn encode(&self, column: &ColumnData) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(column.uncompressed_size() + 8);
        match column {
            ColumnData::Ints(values) => {
                out.push(TAG_INTS);
                write_varint(&mut out, values.len() as u64);
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            ColumnData::Floats(values) => {
                out.push(TAG_FLOATS);
                write_varint(&mut out, values.len() as u64);
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            ColumnData::Strings(values) => {
                out.push(TAG_STRINGS);
                write_varint(&mut out, values.len() as u64);
                for s in values {
                    write_varint(&mut out, s.len() as u64);
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
        Ok(out)
    }

    fn decode(&self, block: &[u8]) -> Result<ColumnData> {
        let tag = *block
            .first()
            .ok_or_else(|| CompressError::Corrupted("empty block".into()))?;
        let mut pos = 1usize;
        let count = read_varint(block, &mut pos)? as usize;
        match tag {
            TAG_INTS => {
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let bytes = block
                        .get(pos..pos + 8)
                        .ok_or_else(|| CompressError::Corrupted("truncated int".into()))?;
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(bytes);
                    values.push(i64::from_le_bytes(buf));
                    pos += 8;
                }
                Ok(ColumnData::Ints(values))
            }
            TAG_FLOATS => {
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let bytes = block
                        .get(pos..pos + 8)
                        .ok_or_else(|| CompressError::Corrupted("truncated float".into()))?;
                    let mut buf = [0u8; 8];
                    buf.copy_from_slice(bytes);
                    values.push(f64::from_le_bytes(buf));
                    pos += 8;
                }
                Ok(ColumnData::Floats(values))
            }
            TAG_STRINGS => {
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = read_varint(block, &mut pos)? as usize;
                    let bytes = block
                        .get(pos..pos + len)
                        .ok_or_else(|| CompressError::Corrupted("truncated string".into()))?;
                    values.push(
                        String::from_utf8(bytes.to_vec())
                            .map_err(|_| CompressError::Corrupted("invalid utf8".into()))?,
                    );
                    pos += len;
                }
                Ok(ColumnData::Strings(values))
            }
            other => Err(CompressError::Corrupted(format!("unknown tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_types() {
        let codec = PlainCodec;
        for column in [
            ColumnData::Ints(vec![1, -5, i64::MAX]),
            ColumnData::Floats(vec![1.5, -2.25, f64::MAX]),
            ColumnData::Strings(vec!["a".into(), String::new(), "long string".into()]),
        ] {
            let block = codec.encode(&column).unwrap();
            assert_eq!(codec.decode(&block).unwrap(), column);
        }
    }

    #[test]
    fn corrupted_blocks_are_rejected() {
        let codec = PlainCodec;
        assert!(codec.decode(&[]).is_err());
        assert!(codec.decode(&[9, 0]).is_err());
        // Claim 2 ints but only provide bytes for one.
        let mut block = codec.encode(&ColumnData::Ints(vec![1])).unwrap();
        block[1] = 2;
        assert!(codec.decode(&block).is_err());
    }

    #[test]
    fn plain_size_matches_estimate() {
        let codec = PlainCodec;
        let column = ColumnData::Ints(vec![0; 100]);
        let block = codec.encode(&column).unwrap();
        // 1 tag + 1 varint + 800 payload
        assert_eq!(block.len(), 802);
    }
}
