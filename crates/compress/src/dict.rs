//! Dictionary encoding.
//!
//! Low-cardinality columns (vehicle identifiers, zip codes, product codes)
//! are stored as a dictionary of distinct values plus a vector of small
//! integer codes referencing it.

use crate::plain::{TAG_INTS, TAG_STRINGS};
#[cfg(test)]
use crate::plain::PlainCodec;
use crate::varint::{read_signed_varint, read_varint, write_signed_varint, write_varint};
use crate::{ColumnCodec, ColumnData, CompressError, Result};
use std::collections::HashMap;

/// Dictionary codec for string and integer columns.
#[derive(Debug, Default, Clone, Copy)]
pub struct DictionaryCodec;

impl ColumnCodec for DictionaryCodec {
    fn name(&self) -> &'static str {
        "dict"
    }

    fn encode(&self, column: &ColumnData) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        match column {
            ColumnData::Strings(values) => {
                out.push(TAG_STRINGS);
                let mut dictionary: Vec<&String> = Vec::new();
                let mut index: HashMap<&String, u64> = HashMap::new();
                let mut codes = Vec::with_capacity(values.len());
                for v in values {
                    let code = *index.entry(v).or_insert_with(|| {
                        dictionary.push(v);
                        (dictionary.len() - 1) as u64
                    });
                    codes.push(code);
                }
                write_varint(&mut out, dictionary.len() as u64);
                for entry in &dictionary {
                    write_varint(&mut out, entry.len() as u64);
                    out.extend_from_slice(entry.as_bytes());
                }
                write_varint(&mut out, codes.len() as u64);
                for code in codes {
                    write_varint(&mut out, code);
                }
                Ok(out)
            }
            ColumnData::Ints(values) => {
                out.push(TAG_INTS);
                let mut dictionary: Vec<i64> = Vec::new();
                let mut index: HashMap<i64, u64> = HashMap::new();
                let mut codes = Vec::with_capacity(values.len());
                for &v in values {
                    let code = *index.entry(v).or_insert_with(|| {
                        dictionary.push(v);
                        (dictionary.len() - 1) as u64
                    });
                    codes.push(code);
                }
                write_varint(&mut out, dictionary.len() as u64);
                for entry in &dictionary {
                    write_signed_varint(&mut out, *entry);
                }
                write_varint(&mut out, codes.len() as u64);
                for code in codes {
                    write_varint(&mut out, code);
                }
                Ok(out)
            }
            ColumnData::Floats(_) => Err(CompressError::UnsupportedType {
                codec: self.name(),
                column: column.type_name(),
            }),
        }
    }

    fn decode(&self, block: &[u8]) -> Result<ColumnData> {
        let tag = *block
            .first()
            .ok_or_else(|| CompressError::Corrupted("empty block".into()))?;
        let mut pos = 1usize;
        match tag {
            TAG_STRINGS => {
                let dict_len = read_varint(block, &mut pos)? as usize;
                let mut dictionary = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    let len = read_varint(block, &mut pos)? as usize;
                    let bytes = block
                        .get(pos..pos + len)
                        .ok_or_else(|| CompressError::Corrupted("truncated dict entry".into()))?;
                    dictionary.push(
                        String::from_utf8(bytes.to_vec())
                            .map_err(|_| CompressError::Corrupted("invalid utf8".into()))?,
                    );
                    pos += len;
                }
                let count = read_varint(block, &mut pos)? as usize;
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let code = read_varint(block, &mut pos)? as usize;
                    let value = dictionary
                        .get(code)
                        .ok_or_else(|| CompressError::Corrupted("dict code out of range".into()))?;
                    values.push(value.clone());
                }
                Ok(ColumnData::Strings(values))
            }
            TAG_INTS => {
                let dict_len = read_varint(block, &mut pos)? as usize;
                let mut dictionary = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dictionary.push(read_signed_varint(block, &mut pos)?);
                }
                let count = read_varint(block, &mut pos)? as usize;
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    let code = read_varint(block, &mut pos)? as usize;
                    let value = dictionary
                        .get(code)
                        .ok_or_else(|| CompressError::Corrupted("dict code out of range".into()))?;
                    values.push(*value);
                }
                Ok(ColumnData::Ints(values))
            }
            other => Err(CompressError::Corrupted(format!("unknown tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_cardinality_strings_compress_well() {
        let values: Vec<String> = (0..10_000).map(|i| format!("taxi-{}", i % 12)).collect();
        let column = ColumnData::Strings(values);
        let dict_block = DictionaryCodec.encode(&column).unwrap();
        let plain_block = PlainCodec.encode(&column).unwrap();
        assert!(dict_block.len() * 4 < plain_block.len());
        assert_eq!(DictionaryCodec.decode(&dict_block).unwrap(), column);
    }

    #[test]
    fn integer_dictionary_round_trip() {
        let column = ColumnData::Ints(vec![617, 617, 212, 617, 415, 212]);
        let block = DictionaryCodec.encode(&column).unwrap();
        assert_eq!(DictionaryCodec.decode(&block).unwrap(), column);
    }

    #[test]
    fn floats_unsupported() {
        assert!(matches!(
            DictionaryCodec.encode(&ColumnData::Floats(vec![1.0])),
            Err(CompressError::UnsupportedType { .. })
        ));
    }

    #[test]
    fn preserves_first_occurrence_order_and_empty_input() {
        let column = ColumnData::Strings(vec![]);
        let block = DictionaryCodec.encode(&column).unwrap();
        assert_eq!(DictionaryCodec.decode(&block).unwrap(), column);

        let column = ColumnData::Strings(vec!["b".into(), "a".into(), "b".into()]);
        let block = DictionaryCodec.encode(&column).unwrap();
        assert_eq!(DictionaryCodec.decode(&block).unwrap(), column);
    }

    #[test]
    fn corrupted_code_detected() {
        let column = ColumnData::Strings(vec!["a".into(), "b".into()]);
        let mut block = DictionaryCodec.encode(&column).unwrap();
        // Overwrite the last code with an out-of-range value.
        let last = block.len() - 1;
        block[last] = 99;
        assert!(DictionaryCodec.decode(&block).is_err());
    }
}
