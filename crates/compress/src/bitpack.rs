//! Bit-packing of integer columns.
//!
//! Every value in the block is stored with the minimal fixed number of bits
//! needed for the largest magnitude present. Negative values are zigzag
//! mapped first. Efficient for small-domain columns such as grid cell
//! indices, months, or quantized sensor readings.

use crate::plain::TAG_INTS;
use crate::varint::{read_varint, write_varint, zigzag_decode, zigzag_encode};
use crate::{ColumnCodec, ColumnData, CompressError, Result};

/// Fixed-width bit-packing codec for integer columns.
#[derive(Debug, Default, Clone, Copy)]
pub struct BitPackCodec;

/// Packs `values` (already non-negative) using `width` bits each. A 128-bit
/// accumulator is used so widths up to 64 bits never overflow.
pub(crate) fn pack_bits(values: &[u64], width: u32, out: &mut Vec<u8>) {
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    for &v in values {
        acc |= u128::from(v) << acc_bits;
        acc_bits += width;
        while acc_bits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

/// Unpacks `count` values of `width` bits each.
pub(crate) fn unpack_bits(
    bytes: &[u8],
    width: u32,
    count: usize,
    pos: &mut usize,
) -> Result<Vec<u64>> {
    let mut values = Vec::with_capacity(count);
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    let mask: u128 = (1u128 << width) - 1;
    for _ in 0..count {
        while acc_bits < width {
            let byte = *bytes
                .get(*pos)
                .ok_or_else(|| CompressError::Corrupted("truncated bitpack block".into()))?;
            *pos += 1;
            acc |= u128::from(byte) << acc_bits;
            acc_bits += 8;
        }
        values.push((acc & mask) as u64);
        acc >>= width;
        acc_bits -= width;
    }
    Ok(values)
}

impl ColumnCodec for BitPackCodec {
    fn name(&self) -> &'static str {
        "bitpack"
    }

    fn encode(&self, column: &ColumnData) -> Result<Vec<u8>> {
        let values = match column {
            ColumnData::Ints(v) => v,
            _ => {
                return Err(CompressError::UnsupportedType {
                    codec: self.name(),
                    column: column.type_name(),
                })
            }
        };
        let zigzagged: Vec<u64> = values.iter().map(|&v| zigzag_encode(v)).collect();
        let max = zigzagged.iter().copied().max().unwrap_or(0);
        let width = (64 - max.leading_zeros()).max(1);
        let mut out = Vec::new();
        out.push(TAG_INTS);
        write_varint(&mut out, values.len() as u64);
        out.push(width as u8);
        pack_bits(&zigzagged, width, &mut out);
        Ok(out)
    }

    fn decode(&self, block: &[u8]) -> Result<ColumnData> {
        let tag = *block
            .first()
            .ok_or_else(|| CompressError::Corrupted("empty block".into()))?;
        if tag != TAG_INTS {
            return Err(CompressError::Corrupted(format!("unexpected tag {tag}")));
        }
        let mut pos = 1usize;
        let count = read_varint(block, &mut pos)? as usize;
        let width = *block
            .get(pos)
            .ok_or_else(|| CompressError::Corrupted("missing width".into()))?
            as u32;
        pos += 1;
        if width == 0 || width > 64 {
            return Err(CompressError::Corrupted(format!("invalid width {width}")));
        }
        let packed = unpack_bits(block, width, count, &mut pos)?;
        Ok(ColumnData::Ints(
            packed.into_iter().map(zigzag_decode).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_domain_uses_few_bits() {
        // Months 0..12 need 5 bits zigzagged (values up to 22).
        let column = ColumnData::Ints((0..12_000).map(|i| i % 12).collect());
        let block = BitPackCodec.encode(&column).unwrap();
        // ~5 bits/value ≈ 7.5 KB versus 96 KB plain.
        assert!(block.len() < 9_000, "got {}", block.len());
        assert_eq!(BitPackCodec.decode(&block).unwrap(), column);
    }

    #[test]
    fn negative_values_and_extremes() {
        let column = ColumnData::Ints(vec![i64::MIN, -1, 0, 1, i64::MAX]);
        let block = BitPackCodec.encode(&column).unwrap();
        assert_eq!(BitPackCodec.decode(&block).unwrap(), column);
    }

    #[test]
    fn all_zeros_still_round_trips() {
        let column = ColumnData::Ints(vec![0; 100]);
        let block = BitPackCodec.encode(&column).unwrap();
        assert!(block.len() < 30);
        assert_eq!(BitPackCodec.decode(&block).unwrap(), column);
    }

    #[test]
    fn pack_unpack_primitives() {
        let values = vec![1u64, 2, 3, 7, 0, 5];
        let mut buf = Vec::new();
        pack_bits(&values, 3, &mut buf);
        let mut pos = 0;
        assert_eq!(unpack_bits(&buf, 3, values.len(), &mut pos).unwrap(), values);
    }

    #[test]
    fn unsupported_types_rejected() {
        assert!(BitPackCodec.encode(&ColumnData::Floats(vec![1.0])).is_err());
        assert!(BitPackCodec
            .encode(&ColumnData::Strings(vec!["a".into()]))
            .is_err());
    }

    #[test]
    fn truncated_block_detected() {
        let column = ColumnData::Ints(vec![1000; 50]);
        let block = BitPackCodec.encode(&column).unwrap();
        assert!(BitPackCodec.decode(&block[..block.len() - 5]).is_err());
    }
}
