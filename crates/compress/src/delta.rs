//! Delta compression — the paper's `∆(N)` transform.
//!
//! Stores the first value verbatim and every subsequent value as the
//! difference from its predecessor. Time series and slowly varying
//! coordinates (such as consecutive GPS fixes of a moving car) produce tiny
//! deltas that the varint layer encodes in one or two bytes.
//!
//! Floats are quantized to a configurable scale (default 10⁻⁶, i.e.
//! micro-degrees for latitude/longitude) before delta encoding; decoding
//! reverses the quantization, so values round-trip to within `1/scale`.

use crate::plain::{TAG_FLOATS, TAG_INTS};
use crate::varint::{read_signed_varint, read_varint, write_signed_varint, write_varint};
use crate::{ColumnCodec, ColumnData, CompressError, Result};

/// Delta + varint codec for numeric columns.
#[derive(Debug, Clone, Copy)]
pub struct DeltaCodec {
    /// Quantization scale applied to floats before delta encoding: a value
    /// `v` is stored as `round(v * scale)`.
    pub float_scale: f64,
}

impl Default for DeltaCodec {
    fn default() -> Self {
        DeltaCodec {
            float_scale: 1_000_000.0,
        }
    }
}

impl DeltaCodec {
    /// Creates a delta codec with an explicit float quantization scale.
    pub fn with_scale(float_scale: f64) -> DeltaCodec {
        DeltaCodec { float_scale }
    }

    fn encode_ints(values: &[i64], out: &mut Vec<u8>) {
        let mut prev = 0i64;
        for (i, &v) in values.iter().enumerate() {
            if i == 0 {
                write_signed_varint(out, v);
            } else {
                write_signed_varint(out, v.wrapping_sub(prev));
            }
            prev = v;
        }
    }

    fn decode_ints(block: &[u8], pos: &mut usize, count: usize) -> Result<Vec<i64>> {
        let mut values = Vec::with_capacity(count);
        let mut prev = 0i64;
        for i in 0..count {
            let d = read_signed_varint(block, pos)?;
            let v = if i == 0 { d } else { prev.wrapping_add(d) };
            values.push(v);
            prev = v;
        }
        Ok(values)
    }
}

impl ColumnCodec for DeltaCodec {
    fn name(&self) -> &'static str {
        "delta"
    }

    fn encode(&self, column: &ColumnData) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        match column {
            ColumnData::Ints(values) => {
                out.push(TAG_INTS);
                write_varint(&mut out, values.len() as u64);
                Self::encode_ints(values, &mut out);
                Ok(out)
            }
            ColumnData::Floats(values) => {
                out.push(TAG_FLOATS);
                write_varint(&mut out, values.len() as u64);
                // Store the scale so decoding is self-contained.
                out.extend_from_slice(&self.float_scale.to_le_bytes());
                let quantized: Vec<i64> = values
                    .iter()
                    .map(|v| (v * self.float_scale).round() as i64)
                    .collect();
                Self::encode_ints(&quantized, &mut out);
                Ok(out)
            }
            ColumnData::Strings(_) => Err(CompressError::UnsupportedType {
                codec: self.name(),
                column: column.type_name(),
            }),
        }
    }

    fn decode(&self, block: &[u8]) -> Result<ColumnData> {
        let tag = *block
            .first()
            .ok_or_else(|| CompressError::Corrupted("empty block".into()))?;
        let mut pos = 1usize;
        let count = read_varint(block, &mut pos)? as usize;
        match tag {
            TAG_INTS => Ok(ColumnData::Ints(Self::decode_ints(block, &mut pos, count)?)),
            TAG_FLOATS => {
                let scale_bytes = block
                    .get(pos..pos + 8)
                    .ok_or_else(|| CompressError::Corrupted("missing scale".into()))?;
                let mut buf = [0u8; 8];
                buf.copy_from_slice(scale_bytes);
                let scale = f64::from_le_bytes(buf);
                pos += 8;
                let quantized = Self::decode_ints(block, &mut pos, count)?;
                Ok(ColumnData::Floats(
                    quantized.into_iter().map(|q| q as f64 / scale).collect(),
                ))
            }
            other => Err(CompressError::Corrupted(format!("unknown tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ints_compress_well() {
        let codec = DeltaCodec::default();
        let column = ColumnData::Ints((0..10_000i64).map(|i| 5_000_000 + i).collect());
        let block = codec.encode(&column).unwrap();
        assert!(block.len() < 3 * 10_000, "got {} bytes", block.len());
        assert_eq!(codec.decode(&block).unwrap(), column);
    }

    #[test]
    fn gps_like_floats_round_trip_within_quantization() {
        let codec = DeltaCodec::default();
        // Simulate a car moving in tiny lat increments around Boston.
        let values: Vec<f64> = (0..5000).map(|i| 42.3601 + i as f64 * 1e-5).collect();
        let column = ColumnData::Floats(values.clone());
        let block = codec.encode(&column).unwrap();
        assert!(
            block.len() < values.len() * 2 + 32,
            "expected ~1-2 bytes/value, got {}",
            block.len()
        );
        match codec.decode(&block).unwrap() {
            ColumnData::Floats(decoded) => {
                for (a, b) in decoded.iter().zip(&values) {
                    assert!((a - b).abs() < 1e-6);
                }
            }
            _ => panic!("expected floats"),
        }
    }

    #[test]
    fn negative_and_alternating_values() {
        let codec = DeltaCodec::default();
        let column = ColumnData::Ints(vec![5, -5, 5, -5, 0, i64::MAX / 2, i64::MIN / 2]);
        let block = codec.encode(&column).unwrap();
        assert_eq!(codec.decode(&block).unwrap(), column);
    }

    #[test]
    fn strings_are_unsupported() {
        let codec = DeltaCodec::default();
        let err = codec
            .encode(&ColumnData::Strings(vec!["x".into()]))
            .unwrap_err();
        assert!(matches!(err, CompressError::UnsupportedType { .. }));
    }

    #[test]
    fn custom_scale_controls_precision() {
        let coarse = DeltaCodec::with_scale(100.0);
        let column = ColumnData::Floats(vec![1.234_567, 1.239_999]);
        let block = coarse.encode(&column).unwrap();
        match coarse.decode(&block).unwrap() {
            ColumnData::Floats(vals) => {
                assert!((vals[0] - 1.23).abs() < 0.01);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn empty_column() {
        let codec = DeltaCodec::default();
        let block = codec.encode(&ColumnData::Ints(vec![])).unwrap();
        assert_eq!(codec.decode(&block).unwrap(), ColumnData::Ints(vec![]));
    }
}
