//! # Compression codecs for RodentStore
//!
//! The storage algebra's *data reduction* dimension lets an administrator
//! request compression on individual fields (`∆(N)` for delta compression,
//! plus RLE, dictionary, bit-packing and frame-of-reference). This crate
//! implements the codecs; the layout interpreter maps an algebraic
//! `CodecSpec` onto one of the [`ColumnCodec`] implementations here and
//! stores the encoded blocks in heap-file objects.
//!
//! All codecs operate on [`ColumnData`] — a typed column vector — and encode
//! to a self-describing byte block (type tag + element count + payload), so
//! a block can always be decoded without external metadata.
//!
//! ```
//! use rodentstore_compress::{ColumnData, CodecKind};
//!
//! let column = ColumnData::Ints((0..1000).map(|i| 1_000_000 + i).collect());
//! let codec = CodecKind::Delta.build();
//! let block = codec.encode(&column).unwrap();
//! assert!(block.len() < 1000 * 8 / 2, "delta+varint beats raw 8-byte ints");
//! assert_eq!(codec.decode(&block).unwrap(), column);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitpack;
pub mod delta;
pub mod dict;
pub mod forpack;
pub mod plain;
pub mod rle;
pub mod varint;

pub use bitpack::BitPackCodec;
pub use delta::DeltaCodec;
pub use dict::DictionaryCodec;
pub use forpack::ForCodec;
pub use plain::PlainCodec;
pub use rle::RleCodec;

use std::fmt;

/// Errors produced while encoding or decoding column blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// The codec does not support the given column type.
    UnsupportedType {
        /// Codec name.
        codec: &'static str,
        /// Column type name.
        column: &'static str,
    },
    /// The encoded block is truncated or malformed.
    Corrupted(String),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::UnsupportedType { codec, column } => {
                write!(f, "codec `{codec}` does not support {column} columns")
            }
            CompressError::Corrupted(msg) => write!(f, "corrupted block: {msg}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, CompressError>;

/// A typed column of values, the unit codecs operate on.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers (also used for timestamps).
    Ints(Vec<i64>),
    /// 64-bit floats.
    Floats(Vec<f64>),
    /// UTF-8 strings.
    Strings(Vec<String>),
}

impl ColumnData {
    /// Number of values in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Ints(v) => v.len(),
            ColumnData::Floats(v) => v.len(),
            ColumnData::Strings(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Name of the column type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            ColumnData::Ints(_) => "int",
            ColumnData::Floats(_) => "float",
            ColumnData::Strings(_) => "string",
        }
    }

    /// Uncompressed size of the column under a plain 8-byte / length-prefixed
    /// encoding; the baseline compression ratios are computed against.
    pub fn uncompressed_size(&self) -> usize {
        match self {
            ColumnData::Ints(v) => v.len() * 8,
            ColumnData::Floats(v) => v.len() * 8,
            ColumnData::Strings(v) => v.iter().map(|s| 4 + s.len()).sum(),
        }
    }
}

/// A column compression codec.
pub trait ColumnCodec: Send + Sync {
    /// Short name of the codec (used in catalogs and diagnostics).
    fn name(&self) -> &'static str;
    /// Encodes a column into a self-describing block.
    fn encode(&self, column: &ColumnData) -> Result<Vec<u8>>;
    /// Decodes a block produced by [`ColumnCodec::encode`].
    fn decode(&self, block: &[u8]) -> Result<ColumnData>;
}

/// The codecs RodentStore ships, mirroring the algebra's `CodecSpec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    /// No compression, plain serialization.
    Plain,
    /// Delta encoding (differences between successive values) + varint.
    Delta,
    /// Run-length encoding.
    Rle,
    /// Dictionary encoding.
    Dictionary,
    /// Bit-packing to the minimal fixed width.
    BitPack,
    /// Frame-of-reference (offsets from the block minimum) + bit-packing.
    FrameOfReference,
}

impl CodecKind {
    /// Instantiates the codec.
    pub fn build(self) -> Box<dyn ColumnCodec> {
        match self {
            CodecKind::Plain => Box::new(PlainCodec),
            CodecKind::Delta => Box::new(DeltaCodec::default()),
            CodecKind::Rle => Box::new(RleCodec),
            CodecKind::Dictionary => Box::new(DictionaryCodec),
            CodecKind::BitPack => Box::new(BitPackCodec),
            CodecKind::FrameOfReference => Box::new(ForCodec),
        }
    }

    /// All codec kinds (useful for exhaustive tests and benches).
    pub fn all() -> [CodecKind; 6] {
        [
            CodecKind::Plain,
            CodecKind::Delta,
            CodecKind::Rle,
            CodecKind::Dictionary,
            CodecKind::BitPack,
            CodecKind::FrameOfReference,
        ]
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CodecKind::Plain => "plain",
            CodecKind::Delta => "delta",
            CodecKind::Rle => "rle",
            CodecKind::Dictionary => "dict",
            CodecKind::BitPack => "bitpack",
            CodecKind::FrameOfReference => "for",
        };
        write!(f, "{name}")
    }
}

/// Compression ratio achieved by a codec on a column
/// (`uncompressed / compressed`, higher is better).
pub fn compression_ratio(codec: &dyn ColumnCodec, column: &ColumnData) -> Result<f64> {
    let encoded = codec.encode(column)?;
    if encoded.is_empty() {
        return Ok(1.0);
    }
    Ok(column.uncompressed_size() as f64 / encoded.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_columns() -> Vec<ColumnData> {
        vec![
            ColumnData::Ints((0..500).map(|i| i * 3 + 7).collect()),
            ColumnData::Floats((0..500).map(|i| 42.0 + i as f64 * 0.001).collect()),
            ColumnData::Strings(
                (0..200)
                    .map(|i| format!("vehicle-{}", i % 8))
                    .collect(),
            ),
        ]
    }

    #[test]
    fn every_codec_round_trips_supported_columns() {
        for kind in CodecKind::all() {
            let codec = kind.build();
            for column in sample_columns() {
                match codec.encode(&column) {
                    Ok(block) => {
                        let decoded = codec.decode(&block).unwrap();
                        match (&decoded, &column) {
                            (ColumnData::Floats(a), ColumnData::Floats(b)) => {
                                assert_eq!(a.len(), b.len());
                                for (x, y) in a.iter().zip(b) {
                                    assert!(
                                        (x - y).abs() < 1e-6,
                                        "{kind}: {x} vs {y}"
                                    );
                                }
                            }
                            _ => assert_eq!(&decoded, &column, "{kind}"),
                        }
                    }
                    Err(CompressError::UnsupportedType { .. }) => {
                        // Acceptable: not every codec supports every type.
                    }
                    Err(other) => panic!("{kind}: unexpected error {other}"),
                }
            }
        }
    }

    #[test]
    fn empty_columns_round_trip() {
        for kind in CodecKind::all() {
            let codec = kind.build();
            let column = ColumnData::Ints(Vec::new());
            if let Ok(block) = codec.encode(&column) {
                assert_eq!(codec.decode(&block).unwrap().len(), 0, "{kind}");
            }
        }
    }

    #[test]
    fn compression_ratio_favours_delta_on_sequential_ints() {
        let column = ColumnData::Ints((0..10_000).collect());
        let plain = compression_ratio(&PlainCodec, &column).unwrap();
        let delta = compression_ratio(&DeltaCodec::default(), &column).unwrap();
        assert!(plain <= 1.1);
        assert!(delta > 3.0, "delta ratio was {delta}");
    }

    #[test]
    fn column_metadata() {
        let c = ColumnData::Strings(vec!["ab".into(), "cde".into()]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.type_name(), "string");
        assert_eq!(c.uncompressed_size(), 4 + 2 + 4 + 3);
    }
}
